//! The paper's headline scenario: 400 heterogeneous servers, 6,000
//! trace-driven VMs, two consecutive days, ecoCloud assignment and
//! migration.
//!
//! ```sh
//! cargo run --release --example datacenter_48h
//! ```
//!
//! Pass a number to change the seed: `... --example datacenter_48h 7`.

use ecocloud::metrics::sparkline;
use ecocloud::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let scenario = Scenario::paper_48h(seed);
    eprintln!(
        "running: {} servers ({:.1} GHz), {} VMs, {:.0} h ...",
        scenario.fleet.len(),
        scenario.fleet.total_capacity_mhz() / 1000.0,
        scenario.workload.spawns.len(),
        scenario.config.duration_secs / 3600.0
    );
    let mut result = scenario.run(EcoCloudPolicy::paper(seed));

    println!("\n== 48-hour ecoCloud run (seed {seed}) ==\n");
    println!(
        "overall load   {}",
        sparkline(result.stats.overall_load.values(), 64)
    );
    println!(
        "active servers {}",
        sparkline(result.stats.active_servers.values(), 64)
    );
    println!(
        "power draw     {}",
        sparkline(result.stats.power_w.values(), 64)
    );

    let s = &result.summary;
    println!("\nenergy                  {:>10.1} kWh", s.energy_kwh);
    println!(
        "active servers          {:>10.1} mean ({:.0}–{:.0})",
        s.mean_active_servers,
        result.stats.active_servers.min(),
        result.stats.active_servers.max()
    );
    println!(
        "migrations              {:>10} ({} low / {} high)",
        s.total_low_migrations + s.total_high_migrations,
        s.total_low_migrations,
        s.total_high_migrations
    );
    println!(
        "server switches         {:>10} ({} on / {} off)",
        s.total_activations + s.total_hibernations,
        s.total_activations,
        s.total_hibernations
    );
    println!("overload episodes       {:>10}", s.n_violations);
    println!(
        "violations < 30 s       {:>9.1} %",
        100.0 * result.stats.violations_shorter_than(30.0)
    );
    println!(
        "worst 30-min over-demand{:>9.4} % of VM-time",
        s.max_overdemand_pct
    );

    // What would an always-on data center have consumed?
    let always_on: f64 = scenario
        .fleet
        .specs
        .iter()
        .map(|sp| sp.power.idle_w)
        .sum::<f64>()
        * scenario.config.duration_secs
        / 3.6e6;
    println!(
        "\nidle-only floor of an always-on fleet: {always_on:.1} kWh → ecoCloud saves ≥ {:.0} %",
        100.0 * (1.0 - s.energy_kwh / always_on)
    );
}
