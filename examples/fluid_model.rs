//! The fluid ODE model on its own: watch the assignment procedure
//! consolidate a spread initial state, exact vs simplified shares.
//!
//! ```sh
//! cargo run --release --example fluid_model
//! ```

use ecocloud::analytic::{FluidConfig, FluidModel, ShareModel};
use ecocloud::metrics::sparkline;

fn main() {
    // 60 servers at 15–30 % utilization; churn balanced for a total
    // load of ≈12 server-equivalents (mean VM lifetime two hours).
    let n = 60;
    let u0: Vec<f64> = (0..n)
        .map(|i| 0.15 + 0.15 * (i as f64 / n as f64))
        .collect();
    let dep = 1.0 / (2.0 * 3600.0);
    let total_load: f64 = u0.iter().sum();
    let w_bar = 0.02;
    let lambda = total_load * dep / w_bar;

    println!("== fluid model of the assignment procedure ==\n");
    println!(
        "{n} servers starting spread at 15–30 %, total load {total_load:.1} server-equivalents\n"
    );

    for model in [ShareModel::Simplified, ShareModel::Exact] {
        let fm = FluidModel::new(
            FluidConfig::paper(model, w_bar),
            move |_| lambda,
            move |_| dep,
        );
        let sol = fm.solve(&u0, 12.0 * 3600.0);
        let label = match model {
            ShareModel::Simplified => "simplified (Eq. 11)",
            ShareModel::Exact => "exact (Eqs. 6-9)   ",
        };
        println!(
            "{label} active servers {}  final: {:>2}",
            sparkline(
                &sol.active_count
                    .iter()
                    .map(|&c| c as f64)
                    .collect::<Vec<_>>(),
                48
            ),
            sol.final_active()
        );
        let final_us: Vec<f64> = sol
            .u
            .last()
            .expect("samples")
            .iter()
            .map(|&x| x as f64)
            .filter(|&x| x > 0.0)
            .collect();
        let mean_u = final_us.iter().sum::<f64>() / final_us.len().max(1) as f64;
        println!("{label} mean active-server utilization at end: {mean_u:.2} (T_a = 0.9)\n");
    }
    println!("Both share models consolidate the same spread state onto a handful of");
    println!("servers running near the threshold — the paper's §IV observation that");
    println!("the cheap proportional share (Eq. 11) closely tracks the exact");
    println!("combinatorial one (Eqs. 6-9).");
}
