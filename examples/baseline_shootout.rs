//! Compare ecoCloud against the centralized baselines on the same
//! workload: Best Fit (+ double-threshold migration), First Fit and
//! uniform Random placement.
//!
//! ```sh
//! cargo run --release --example baseline_shootout
//! ```

use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // A mid-size scenario so the example finishes in seconds.
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 1500,
        duration_secs: 24 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 24.0 * 3600.0;
    let scenario = Scenario {
        fleet: Fleet::thirds(100),
        workload: Workload::all_vms_from_start(traces),
        config,
    };

    let mut table = Table::new([
        "policy",
        "mean servers",
        "energy kWh",
        "migrations",
        "switches",
        "worst overdemand %",
    ]);
    let mut row = |result: ecocloud::dcsim::SimResult| {
        let s = result.summary;
        table.push_row([
            result.policy_name.clone(),
            fmt_num(s.mean_active_servers, 1),
            fmt_num(s.energy_kwh, 1),
            format!("{}", s.total_low_migrations + s.total_high_migrations),
            format!("{}", s.total_activations + s.total_hibernations),
            fmt_num(s.max_overdemand_pct, 3),
        ]);
    };

    eprintln!("running four policies on the identical workload ...");
    row(scenario.run(EcoCloudPolicy::paper(seed)));
    row(scenario.run(BestFitPolicy::paper()));
    row(scenario.run(FirstFitPolicy::paper()));
    row(scenario.run(RandomPolicy::new(0.9, seed)));

    println!("\n== policy shoot-out, identical 24 h workload (seed {seed}) ==\n");
    println!("{}", table.render());
    println!("ecoCloud consolidates like Best Fit while issuing an order of magnitude");
    println!("fewer migrations — the paper's §V argument against deterministic");
    println!("threshold controllers. First Fit and Random carry no migration");
    println!("controller at all: their placement is frozen at midnight demand, so the");
    println!("daytime ramp drives them into permanent over-demand — relocation, not");
    println!("just clever initial placement, is what survives a diurnal cycle.");
}
