//! The real-data path end-to-end: write a demo directory in the public
//! PlanetLab trace layout (one file per VM, one CPU percentage per
//! line), import it, characterize it, and drive a simulation with it.
//!
//! With the actual `planetlab-workload-traces` dataset on disk, point
//! `import_dir` at one of its day directories instead of the demo
//! directory and everything downstream is identical.
//!
//! ```sh
//! cargo run --release --example real_traces
//! ```

use ecocloud::prelude::*;
use ecocloud::traces::planetlab;
use ecocloud::traces::stats::{avg_utilization_histogram, fraction_within_deviation};
use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    // 1. Fabricate a day directory in the PlanetLab format from the
    //    synthetic generator (a stand-in for the real dataset).
    let dir = PathBuf::from("out/planetlab_demo_day");
    fs::create_dir_all(&dir)?;
    let synthetic = TraceSet::generate(TraceConfig {
        n_vms: 300,
        duration_secs: 24 * 3600,
        ..TraceConfig::paper_48h(7)
    });
    for (i, vm) in synthetic.vms.iter().enumerate() {
        let content: String = vm
            .samples
            .iter()
            .map(|&s| format!("{}\n", ((s as f64) * 100.0).round() as u32))
            .collect();
        fs::write(dir.join(format!("vm_{i:04}")), content)?;
    }
    println!("wrote {} trace files to {}", synthetic.len(), dir.display());

    // 2. Import the directory exactly as one would import real data.
    let imported = planetlab::import_dir(&dir, 300)?;
    println!(
        "imported {} VMs x {} samples",
        imported.len(),
        imported.config.steps()
    );

    // 3. Characterize (the paper's Figs. 4–5 statistics).
    let h = avg_utilization_histogram(&imported, 40);
    println!(
        "avg utilization: median {:.1} %, below 20 %: {:.1} % of VMs",
        h.quantile(0.5),
        100.0 * h.fraction_below(20.0)
    );
    println!(
        "deviations within ±10 points: {:.1} % of samples",
        100.0 * fraction_within_deviation(&imported, 10.0)
    );

    // 4. Drive a simulation with the imported traces.
    let mut config = SimConfig::paper_48h(7);
    config.duration_secs = 24.0 * 3600.0;
    let scenario = Scenario {
        fleet: Fleet::thirds(20),
        workload: Workload::all_vms_from_start(imported),
        config,
    };
    let result = scenario.run(EcoCloudPolicy::paper(7));
    println!(
        "\nsimulation on imported traces: {:.1} mean active servers, {:.2} kWh, {} migrations",
        result.summary.mean_active_servers,
        result.summary.energy_kwh,
        result.summary.total_low_migrations + result.summary.total_high_migrations
    );
    Ok(())
}
