//! Implementing your own placement policy against the `dcsim` policy
//! interface — here, a "power-aware worst fit" that spreads VMs over
//! the most efficient servers, compared against ecoCloud on the same
//! workload.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use ecocloud::dcsim::{ClusterView, ServerId};
use ecocloud::prelude::*;

/// Worst Fit over watts-per-MHz: place each VM on the feasible server
/// with the most remaining usable capacity, preferring servers with
/// the best peak-power efficiency. Never migrates.
struct EfficientWorstFit {
    ta: f64,
}

impl Policy for EfficientWorstFit {
    fn name(&self) -> &'static str {
        "efficient-worst-fit"
    }

    fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
        let mut best: Option<(ServerId, f64)> = None;
        for (sid, s) in view.powered() {
            if Some(sid) == req.exclude {
                continue;
            }
            let cap = s.capacity_mhz();
            let after = s.used_mhz() + s.reserved_mhz() + req.demand_mhz;
            if after > self.ta * cap {
                continue;
            }
            // Rank by residual capacity scaled by efficiency (MHz per
            // peak watt): big residual on an efficient machine wins.
            let residual = self.ta * cap - after;
            let efficiency = cap / s.spec.power.max_w;
            let key = residual * efficiency;
            if best.is_none_or(|(_, k)| key > k) {
                best = Some((sid, key));
            }
        }
        if let Some((sid, _)) = best {
            return PlaceOutcome::Place(sid);
        }
        if req.kind == PlacementKind::MigrationLow {
            return PlaceOutcome::Reject;
        }
        // Wake the most efficient hibernated server that fits.
        view.hibernated()
            .filter(|(_, s)| req.demand_mhz <= self.ta * s.capacity_mhz())
            .max_by(|a, b| {
                let ea = a.1.capacity_mhz() / a.1.spec.power.max_w;
                let eb = b.1.capacity_mhz() / b.1.spec.power.max_w;
                ea.total_cmp(&eb)
            })
            .map(|(sid, _)| PlaceOutcome::WakeThenPlace(sid))
            .unwrap_or(PlaceOutcome::Reject)
    }
}

fn main() {
    let seed = 42;
    // A full day so the day/night cycle exposes the difference between
    // a policy that can re-consolidate and one that cannot.
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 600,
        duration_secs: 24 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 24.0 * 3600.0;
    let scenario = Scenario {
        fleet: Fleet::thirds(40),
        workload: Workload::all_vms_from_start(traces),
        config,
    };

    let eco = scenario.run(EcoCloudPolicy::paper(seed));
    let custom = scenario.run(EfficientWorstFit { ta: 0.9 });

    println!("== custom policy vs ecoCloud, identical workload ==\n");
    for r in [&eco, &custom] {
        println!(
            "{:<22} mean servers {:>5.1}   energy {:>7.2} kWh   migrations {:>5}   worst overdemand {:>6.3} %",
            r.policy_name,
            r.summary.mean_active_servers,
            r.summary.energy_kwh,
            r.summary.total_low_migrations + r.summary.total_high_migrations,
            r.summary.max_overdemand_pct,
        );
    }
    println!("\nThe custom policy looks cheaper on paper — but with no migrations it has");
    println!("no way to add capacity when the daytime ramp hits (in this workload all");
    println!("VMs exist from midnight, so wake-ups can only be triggered by migration");
    println!("requests): its placement is frozen and the over-demand column shows the");
    println!("QoS price. Implement `Policy` (place / monitor / on_server_woken) to try");
    println!("your own rules against the same harness.");
}
