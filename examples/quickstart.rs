//! Quickstart: run ecoCloud on a small synthetic data center and print
//! the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ecocloud::prelude::*;

fn main() {
    let seed = 42;

    // 40 heterogeneous servers, 600 trace-driven VMs, 6 hours.
    let scenario = Scenario::small(seed);
    println!(
        "fleet: {} servers, {:.1} GHz total; workload: {} VMs, mean load {:.2}",
        scenario.fleet.len(),
        scenario.fleet.total_capacity_mhz() / 1000.0,
        scenario.workload.spawns.len(),
        scenario.mean_overall_load(),
    );

    // Consolidate with the paper's parameters (Ta=0.9, p=3, Tl=0.5,
    // Th=0.95, alpha=beta=0.25).
    let result = scenario.run(EcoCloudPolicy::paper(seed));
    let s = &result.summary;

    println!(
        "\n=== ecoCloud after {} h ===",
        scenario.config.duration_secs / 3600.0
    );
    println!("powered servers at end : {}", result.final_powered);
    println!("mean powered servers   : {:.1}", s.mean_active_servers);
    println!("energy consumed        : {:.2} kWh", s.energy_kwh);
    println!(
        "migrations             : {} low + {} high",
        s.total_low_migrations, s.total_high_migrations
    );
    println!(
        "server switches        : {} on / {} off",
        s.total_activations, s.total_hibernations
    );
    println!("overload episodes      : {}", s.n_violations);
    println!(
        "violations < 30 s      : {:.1} %",
        100.0 * s.violations_under_30s
    );
    println!(
        "worst 30-min over-demand: {:.4} % of VM-time",
        s.max_overdemand_pct
    );

    // Compare against a centralized Best Fit baseline on the *same*
    // traces.
    let bfd = scenario.run(BestFitPolicy::paper());
    println!("\n=== Best Fit baseline ===");
    println!(
        "mean powered servers   : {:.1}",
        bfd.summary.mean_active_servers
    );
    println!("energy consumed        : {:.2} kWh", bfd.summary.energy_kwh);
    println!(
        "migrations             : {} low + {} high",
        bfd.summary.total_low_migrations, bfd.summary.total_high_migrations
    );

    let ratio = bfd.summary.energy_kwh / result.summary.energy_kwh;
    println!(
        "\necoCloud consumes {:.0} % of the Best Fit baseline's energy",
        100.0 / ratio.max(f64::MIN_POSITIVE)
    );
}
