#!/usr/bin/env bash
# Offline build harness for the ecocloud workspace.
#
# The container has no network and no cargo registry, so `cargo build`
# cannot resolve the external dependencies. This script compiles the
# workspace with raw rustc against the stub crates in tools/hx/stubs/
# (see tools/hx/README.md for what the stubs do and do not provide).
#
# Layout (under $OUT, default target/hx):
#   stub/     stub rlibs + the serde_derive proc-macro
#   lib/      workspace rlibs, release profile (-O, debug-assertions off)
#   libda/    workspace rlibs, -O with debug-assertions ON
#   testbin/  #[test] binaries (built against libda)
#   bin/      ecocloud-cli (release) and ecocloud-cli-da
#
# Usage: bash tools/hx/build.sh [stubs|libs|tests|cli|bins|all]

set -euo pipefail

REPO=$(cd "$(dirname "$0")/../.." && pwd)
OUT=${HX_OUT:-$REPO/target/hx}
STUBS=$REPO/tools/hx/stubs
RUSTC=${RUSTC:-rustc}
ED="--edition 2021"

mkdir -p "$OUT/stub" "$OUT/lib" "$OUT/libda" "$OUT/testbin" "$OUT/bin"

# ---------------------------------------------------------------- stubs
build_stubs() {
    echo "[hx] stubs"
    $RUSTC $ED --crate-type proc-macro --crate-name serde_derive \
        "$STUBS/serde_derive.rs" --out-dir "$OUT/stub" -A warnings
    $RUSTC $ED --crate-type rlib --crate-name serde "$STUBS/serde.rs" \
        --extern serde_derive="$OUT/stub/libserde_derive.so" \
        --out-dir "$OUT/stub" -A warnings
    for s in rand serde_json bytes proptest rayon crossbeam parking_lot; do
        $RUSTC $ED --crate-type rlib --crate-name "$s" -O "$STUBS/$s.rs" \
            --out-dir "$OUT/stub" -A warnings
    done
}

# ------------------------------------------------------------ externs
# Direct dependencies per workspace crate (stub names resolve into
# $OUT/stub, workspace names into the profile's lib dir).
deps_of() {
    case "$1" in
        ecocloud_metrics)     echo "serde serde_json" ;;
        ecocloud_traces)      echo "rand serde serde_json bytes ecocloud_metrics" ;;
        dcsim)                echo "rand serde serde_json ecocloud_metrics ecocloud_traces" ;;
        ecocloud_core)        echo "rand serde dcsim ecocloud_traces ecocloud_metrics" ;;
        ecocloud_baselines)   echo "rand serde dcsim ecocloud_traces" ;;
        ecocloud_analytic)    echo "serde rayon ecocloud_core ecocloud_traces" ;;
        detlint)              echo "" ;;
        ecocloud)             echo "ecocloud_metrics ecocloud_traces dcsim ecocloud_core ecocloud_baselines ecocloud_analytic crossbeam parking_lot rand serde serde_json" ;;
        ecocloud_bench)       echo "ecocloud rand" ;;
        ecocloud_experiments) echo "ecocloud rand serde serde_json rayon" ;;
        *) echo "unknown crate $1" >&2; exit 1 ;;
    esac
}

src_of() {
    case "$1" in
        ecocloud_metrics)     echo "crates/metrics/src/lib.rs" ;;
        ecocloud_traces)      echo "crates/traces/src/lib.rs" ;;
        dcsim)                echo "crates/dcsim/src/lib.rs" ;;
        ecocloud_core)        echo "crates/ecocloud-core/src/lib.rs" ;;
        ecocloud_baselines)   echo "crates/baselines/src/lib.rs" ;;
        ecocloud_analytic)    echo "crates/analytic/src/lib.rs" ;;
        detlint)              echo "crates/detlint/src/lib.rs" ;;
        ecocloud)             echo "src/lib.rs" ;;
        ecocloud_bench)       echo "crates/bench/src/lib.rs" ;;
        ecocloud_experiments) echo "crates/experiments/src/lib.rs" ;;
        *) echo "unknown crate $1" >&2; exit 1 ;;
    esac
}

CRATES="ecocloud_metrics ecocloud_traces dcsim ecocloud_core ecocloud_baselines ecocloud_analytic detlint ecocloud ecocloud_bench ecocloud_experiments"

extern_args() { # <libdir> <dep...>
    local libdir=$1; shift
    local args=""
    for d in "$@"; do
        if [ -f "$OUT/stub/lib$d.rlib" ]; then
            args="$args --extern $d=$OUT/stub/lib$d.rlib"
        else
            args="$args --extern $d=$libdir/lib$d.rlib"
        fi
    done
    echo "$args"
}

# ------------------------------------------------------------- libs
build_libs() {
    local profile=$1 libdir flags
    if [ "$profile" = release ]; then
        libdir=$OUT/lib;   flags="-O -C debug-assertions=no"
    else
        libdir=$OUT/libda; flags="-O -C debug-assertions=yes"
    fi
    for c in $CRATES; do
        echo "[hx] lib($profile) $c"
        # shellcheck disable=SC2046
        $RUSTC $ED --crate-type rlib --crate-name "$c" $flags \
            "$REPO/$(src_of "$c")" \
            $(extern_args "$libdir" $(deps_of "$c")) \
            -L "$OUT/stub" -L "$libdir" \
            --out-dir "$libdir" -A warnings
    done
}

# ------------------------------------------------------------ tests
build_test() { # <binname> <src> <externs...>
    local bin=$1 src=$2; shift 2
    echo "[hx] test $bin"
    # shellcheck disable=SC2046
    $RUSTC $ED --test --crate-name "$bin" -O -C debug-assertions=yes \
        "$REPO/$src" \
        $(extern_args "$OUT/libda" "$@") \
        -L "$OUT/stub" -L "$OUT/libda" \
        -o "$OUT/testbin/$bin" -A warnings
}

build_tests() {
    for c in $CRATES; do
        build_test "unit_$c" "$(src_of "$c")" $(deps_of "$c") proptest
    done
    build_test it_incremental_aggregates crates/dcsim/tests/incremental_aggregates.rs dcsim proptest
    build_test it_detlint crates/detlint/tests/detlint.rs detlint
    build_test it_taint crates/detlint/tests/taint.rs detlint
    for t in checkpoint control_plane end_to_end faults invariants open_system scheduler_audit sharding; do
        build_test "it_$t" "tests/$t.rs" ecocloud proptest
    done
}

# -------------------------------------------------------------- cli
build_cli() {
    echo "[hx] cli"
    $RUSTC $ED -O -C debug-assertions=no -L "$OUT/stub" -L "$OUT/lib" \
        --extern ecocloud="$OUT/lib/libecocloud.rlib" \
        -o "$OUT/bin/ecocloud-cli" "$REPO/src/bin/ecocloud-cli.rs" -A warnings
    $RUSTC $ED -O -C debug-assertions=yes -L "$OUT/stub" -L "$OUT/libda" \
        --extern ecocloud="$OUT/libda/libecocloud.rlib" \
        -o "$OUT/bin/ecocloud-cli-da" "$REPO/src/bin/ecocloud-cli.rs" -A warnings
}

# ----------------------------------------------- experiment/example bins
build_bins() {
    for b in "$REPO"/crates/bench/src/bin/*.rs; do
        [ -e "$b" ] || continue
        local name; name=$(basename "$b" .rs)
        echo "[hx] bench bin $name"
        # shellcheck disable=SC2046
        $RUSTC $ED -O -C debug-assertions=no "$b" \
            $(extern_args "$OUT/lib" ecocloud ecocloud_bench rand) \
            -L "$OUT/stub" -L "$OUT/lib" \
            -o "$OUT/bin/$name" -A warnings
    done
    for b in "$REPO"/crates/experiments/src/bin/*.rs; do
        local name; name=$(basename "$b" .rs)
        echo "[hx] bin $name"
        # shellcheck disable=SC2046
        $RUSTC $ED -O -C debug-assertions=no "$b" \
            $(extern_args "$OUT/lib" ecocloud ecocloud_experiments rand serde serde_json rayon) \
            -L "$OUT/stub" -L "$OUT/lib" \
            -o "$OUT/bin/$name" -A warnings
    done
    for e in "$REPO"/examples/*.rs; do
        local name; name=$(basename "$e" .rs)
        echo "[hx] example $name"
        $RUSTC $ED -O -C debug-assertions=no "$e" \
            --extern ecocloud="$OUT/lib/libecocloud.rlib" \
            -L "$OUT/stub" -L "$OUT/lib" \
            -o "$OUT/bin/example_$name" -A warnings
    done
}

# -------------------------------------------------------------- docs
# Offline rustdoc over the documented public surfaces. Broken
# intra-doc links are denied crate-side (`#![deny(rustdoc::
# broken_intra_doc_links)]`); this mode surfaces them without cargo.
build_docs() {
    local RD=${RUSTDOC:-rustdoc}
    mkdir -p "$OUT/doc"
    for c in $CRATES; do
        echo "[hx] doc $c"
        # shellcheck disable=SC2046
        $RD $ED --crate-name "$c" "$REPO/$(src_of "$c")" \
            $(extern_args "$OUT/lib" $(deps_of "$c")) \
            -L "$OUT/stub" -L "$OUT/lib" \
            --out-dir "$OUT/doc"
    done
}

case "${1:-all}" in
    stubs) build_stubs ;;
    libs)  build_libs release; build_libs da ;;
    tests) build_tests ;;
    cli)   build_cli ;;
    bins)  build_bins ;;
    docs)  build_docs ;;
    all)   build_stubs; build_libs release; build_libs da; build_tests; build_cli ;;
    *) echo "usage: build.sh [stubs|libs|tests|cli|bins|docs|all]" >&2; exit 1 ;;
esac
echo "[hx] done"
