//! Offline stub for the `rand` crate (API subset used by this repo).
//!
//! The container that builds this repo has no cargo registry, so the
//! workspace is compiled against hand-rolled stand-ins for its external
//! dependencies (see `tools/hx/README.md`). This stub implements the
//! `StdRng`/`SeedableRng`/`Rng` surface the simulator uses with a
//! SplitMix64 generator. It is deterministic and seedable — the
//! properties the simulator actually relies on — but its stream differs
//! from real `rand 0.8`, so absolute golden numbers differ between a
//! stub build and a registry build. All in-repo tests assert
//! qualitative properties or compare runs built against the *same*
//! RNG, so they hold under either.

#![allow(dead_code)]

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Derives a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() & ((1u64 << 53) - 1)) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Raw generator state, for checkpoint/restore. The real `rand`
        /// crate has no such accessor; the simulator gates its use
        /// behind the checkpoint codec, which is stub-only anyway
        /// (golden numbers already differ between stub and registry
        /// builds, so snapshot portability across RNG engines is a
        /// non-goal).
        pub fn state_u64(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator from a raw state captured with
        /// [`state_u64`](Self::state_u64). Unlike `seed_from_u64` this
        /// performs no scrambling: the restored stream continues
        /// exactly where the captured one left off.
        pub fn from_state_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Scramble the raw seed once so nearby seeds diverge fast.
            let mut rng = StdRng {
                state: state.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x5851_F42D_4C95_7F2D,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine as `StdRng`).
    pub type SmallRng = StdRng;
}
