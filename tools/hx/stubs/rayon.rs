//! Offline stub for `rayon`: `par_iter`/`into_par_iter` fall back to
//! their sequential `std` counterparts. The repo only uses rayon for
//! embarrassingly parallel map/collect over independent replicas, so a
//! sequential fallback is observationally identical (and deterministic
//! by construction).

#![allow(dead_code)]

/// Mirrors `rayon::prelude`.
pub mod prelude {
    /// Sequential stand-in for `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// "Parallel" (here: sequential) iteration by value.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (a reference).
        type Item: 'data;
        /// "Parallel" (here: sequential) iteration by reference.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Iter = <&'data I as IntoIterator>::IntoIter;
        type Item = <&'data I as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (a mutable reference).
        type Item: 'data;
        /// "Parallel" (here: sequential) mutable iteration.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        type Item = <&'data mut I as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}
