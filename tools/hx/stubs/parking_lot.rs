//! Offline stub for `parking_lot` (the `Mutex` subset): wraps
//! `std::sync::Mutex` and strips poisoning, matching parking_lot's
//! panic-transparent `lock()` signature.

#![allow(dead_code)]

/// Mirrors `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value (ignoring poison).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Locks, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Mirrors `parking_lot::RwLock` (poison-stripped std wrapper).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared lock, ignoring poison.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive lock, ignoring poison.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
