//! Offline stub for `serde`: re-exports the no-op derive macros. The
//! workspace only ever names `Serialize`/`Deserialize` in derive
//! position, so no trait definitions are required.

pub use serde_derive::{Deserialize, Serialize};
