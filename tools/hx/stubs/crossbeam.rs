//! Offline stub for `crossbeam` (the `thread::scope` subset): scoped
//! threads built on `std::thread::scope`, with crossbeam's
//! `Result`-returning signature (a worker panic surfaces as `Err`
//! instead of resuming the unwind).

#![allow(dead_code)]

/// Mirrors `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Scope handle passed to [`scope`]'s closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Argument passed to each spawned closure (crossbeam passes the
    /// scope so workers can spawn more workers; this repo never does,
    /// so the stub passes an opaque token).
    pub struct SpawnToken {
        _private: (),
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnToken) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&SpawnToken { _private: () }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning. Returns `Err` if any
    /// worker (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}
