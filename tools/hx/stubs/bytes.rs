//! Offline stub for `bytes` (the subset `crates/traces` uses): an
//! owned byte buffer with a read cursor (`Bytes`), a growable writer
//! (`BytesMut`), and the `Buf`/`BufMut` accessor traits.

#![allow(dead_code)]

use std::ops::Deref;

/// Immutable byte view with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Bytes left in the view.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when nothing is left.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies `range` (relative to the current view) into a new `Bytes`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos + range.start..self.pos + range.end].to_vec(),
            pos: 0,
        }
    }

    /// Copies the remaining view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Sequential reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Fills `dst`, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads the next `n` bytes into a new `Bytes`.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let mut v = vec![0u8; n];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Bytes underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Growable byte writer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential writer into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}
