//! Offline stub for `proptest`: a miniature deterministic
//! property-testing harness covering the API surface this repo uses —
//! `proptest!` (with optional `#![proptest_config(..)]`), numeric
//! range strategies, string strategies (charset only, the regex is not
//! interpreted), tuples, `collection::vec`, `any::<T>()`,
//! `prop_assert*!` and `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test derives a fixed seed from its module path and name,
//! so failures reproduce exactly across runs and machines.

#![allow(dead_code)]

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// String strategy from a regex-looking pattern. The stub does not
/// interpret the regex: it draws 0–16 characters from the literal
/// characters that appear in the pattern, which is enough for
/// "arbitrary token soup" tests.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pool: Vec<char> = self
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || "=./-_ ".contains(*c))
            .collect();
        let pool = if pool.is_empty() {
            vec!['a', 'b', '0', '1']
        } else {
            pool
        };
        let len = rng.below(17);
        (0..len).map(|_| pool[rng.below(pool.len())]).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bound for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing vectors of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration (subset: `cases`).
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 48 }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Stub `proptest!`: expands each property into a plain `#[test]` that
/// replays `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config = $cfg;
            // Fixed per-test seed: FNV-1a over the test's full path.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                __seed ^= __b as u64;
                __seed = __seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Stub `prop_assert!`: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Stub `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Stub `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Stub `prop_assume!`: skips the current case when the assumption
/// fails (the expansion site is directly inside the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
