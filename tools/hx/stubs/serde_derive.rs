//! Offline stub for `serde_derive`: registers the `Serialize` /
//! `Deserialize` derive macros (with `#[serde(...)]` helper attributes)
//! and expands them to nothing. The workspace never bounds generics on
//! the serde traits, so empty expansions are enough to compile; actual
//! (de)serialization goes through the `serde_json` stub, whose
//! `from_*` functions report "unsupported" at runtime.

extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
