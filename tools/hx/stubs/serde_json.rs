//! Offline stub for `serde_json`.
//!
//! Serialization returns a fixed placeholder document (callers only
//! ever write it to disk); deserialization always fails with a
//! recognizable error. The handful of round-trip tests that need real
//! JSON are `#[ignore]`d with this stub named as the reason.

use std::fmt;

/// Error type mirroring `serde_json::Error`'s public face.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: &str) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

const PLACEHOLDER: &str =
    "{\"stub\":\"offline serde_json placeholder; rebuild with the real registry for JSON output\"}";

/// Serializes any value to the placeholder document.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String> {
    Ok(PLACEHOLDER.to_string())
}

/// Serializes any value to the placeholder document (bytes).
pub fn to_vec<T: ?Sized>(_value: &T) -> Result<Vec<u8>> {
    Ok(PLACEHOLDER.as_bytes().to_vec())
}

/// Deserialization is unsupported offline.
pub fn from_str<T>(_s: &str) -> Result<T> {
    Err(Error::new("stub serde_json: deserialization unsupported"))
}

/// Deserialization is unsupported offline.
pub fn from_slice<T>(_bytes: &[u8]) -> Result<T> {
    Err(Error::new("stub serde_json: deserialization unsupported"))
}
