#!/usr/bin/env bash
# Zero-dependency markdown link checker.
#
# Finds every inline link/image `[text](target)` in the repo's tracked
# markdown files and fails if a *relative* target does not resolve on
# disk (after stripping any `#anchor`). External schemes (http/https/
# mailto) and pure in-page anchors are skipped — this guards the links
# CI can actually verify: the cross-references between README.md,
# ARCHITECTURE.md, DESIGN.md, EXPERIMENTS.md and the crate docs.
#
# Usage: bash tools/check_md_links.sh   (from anywhere; repo-rooted)

set -euo pipefail

REPO=$(cd "$(dirname "$0")/.." && pwd)
cd "$REPO"

fail=0
checked=0

# Tracked markdown only, so stray scratch files never gate CI.
for md in $(git ls-files '*.md'); do
    dir=$(dirname "$md")
    # `](target)` with no spaces or nested parens inside — the shape
    # every cross-reference in this repo uses.
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}          # strip in-file anchor
        [ -n "$path" ] || continue
        case "$path" in
            /*) resolved=${path#/} ;;   # repo-absolute
            *)  resolved=$dir/$path ;;
        esac
        checked=$((checked + 1))
        if [ ! -e "$resolved" ]; then
            echo "$md: broken link -> $target" >&2
            fail=1
        fi
    done < <(grep -o '\][(][^()[:space:]]*[)]' "$md" 2>/dev/null \
             | sed 's/^](//; s/)$//' || true)
done

if [ "$fail" -ne 0 ]; then
    echo "check_md_links: broken relative links found" >&2
    exit 1
fi
echo "check_md_links: $checked relative links OK"
