//! Property-based integration tests: random fleets, workloads and
//! policies through the full simulation pipeline, checking the
//! invariants no run may violate. (Debug test builds additionally
//! audit cluster-state consistency at every metrics sample inside the
//! engine.)

use ecocloud::prelude::*;
use ecocloud::traces::arrivals::ArrivalProcess;
use proptest::prelude::*;

/// Builds a scenario from fuzzed dimensions.
fn scenario(n_servers: usize, n_vms: usize, hours: u64, seed: u64, migrations: bool) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::small(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.migrations_enabled = migrations;
    config.record_server_utilization = false;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

fn check_universal_invariants(scenario: &Scenario, res: &ecocloud::dcsim::SimResult) {
    // VM conservation: everything spawned is either alive or dropped
    // (this workload has no departures).
    assert_eq!(
        res.final_alive_vms as u64 + res.summary.dropped_vms,
        scenario.workload.spawns.len() as u64,
        "VM conservation violated"
    );
    // Energy is bounded by the whole fleet at peak power for the whole
    // run, and is non-negative.
    let upper = scenario.fleet.total_peak_power_w() * scenario.config.duration_secs / 3.6e6;
    assert!(res.summary.energy_kwh >= 0.0);
    assert!(
        res.summary.energy_kwh <= upper + 1e-9,
        "energy {} exceeds physical bound {upper}",
        res.summary.energy_kwh
    );
    // Migration conservation: every started migration completed, was
    // aborted (departure mid-flight or fault rollback), or was still
    // in flight when the run ended.
    assert_eq!(
        res.summary.migrations_started,
        res.summary.migrations_completed
            + res.summary.migrations_aborted
            + res.final_inflight_migrations as u64,
        "migration conservation violated"
    );
    // Powered servers stay within the fleet.
    assert!(res.final_powered <= scenario.fleet.len());
    // Violation statistics are probabilities.
    assert!((0.0..=1.0).contains(&res.summary.violations_under_30s));
    assert!((0.0..=1.0 + 1e-9).contains(&res.summary.mean_granted_during_violation));
    // Sampled series all share the metrics clock.
    let n = res.stats.overall_load.len();
    assert_eq!(res.stats.active_servers.len(), n);
    assert_eq!(res.stats.power_w.len(), n);
    assert_eq!(res.stats.overdemand_pct.len(), n);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full simulation
        ..ProptestConfig::default()
    })]

    #[test]
    fn prop_ecocloud_runs_preserve_invariants(
        n_servers in 3usize..25,
        n_vms in 10usize..250,
        hours in 1u64..5,
        seed in 0u64..1000,
        migrations in any::<bool>(),
    ) {
        let s = scenario(n_servers, n_vms, hours, seed, migrations);
        let res = s.run(EcoCloudPolicy::paper(seed));
        check_universal_invariants(&s, &res);
        if !migrations {
            prop_assert_eq!(res.summary.migrations_started, 0);
        }
    }

    #[test]
    fn prop_churn_with_migrations_preserves_invariants(
        n_servers in 3usize..20,
        initial in 5usize..80,
        lifetime_mins in 10u64..120,
        seed in 0u64..1000,
    ) {
        // Arrivals, departures and migrations interleave freely here —
        // including VMs departing mid-flight, the hairiest path in the
        // engine's reservation accounting (audited by the debug-build
        // cluster invariant checks at every metrics sample).
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 150,
            duration_secs: 3 * 3600,
            ..TraceConfig::small(seed)
        });
        let lifetime = (lifetime_mins * 60) as f64;
        let process = ArrivalProcess {
            base_rate_per_sec: initial as f64 / lifetime,
            envelope: DiurnalEnvelope::flat(),
            mean_lifetime_secs: lifetime,
        };
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 3.0 * 3600.0;
        config.record_server_utilization = false;
        config.record_events = true;
        let workload = Workload::churn(traces, initial, &process, config.duration_secs, seed);
        let total_spawned = workload.spawns.len() as u64;
        let scenario = Scenario {
            fleet: Fleet::thirds(n_servers),
            workload,
            config,
        };
        let res = scenario.run(EcoCloudPolicy::paper(seed));
        // Conservation with departures: alive + departed + dropped = spawned.
        use ecocloud::dcsim::SimEvent as E;
        let departed = res
            .events
            .count_matching(|e| matches!(e, E::VmDeparted { .. })) as u64;
        prop_assert_eq!(
            res.final_alive_vms as u64 + departed + res.summary.dropped_vms,
            total_spawned
        );
        // Migrations cancelled by departures are aborts; together with
        // flights still open at the end they account exactly for the
        // start/complete gap.
        prop_assert_eq!(
            res.summary.migrations_started,
            res.summary.migrations_completed
                + res.summary.migrations_aborted
                + res.final_inflight_migrations as u64
        );
        let aborted_in_log = res
            .events
            .count_matching(|e| matches!(e, E::MigrationAborted { .. })) as u64;
        prop_assert_eq!(aborted_in_log, res.summary.migrations_aborted);
        prop_assert!(res.summary.energy_kwh >= 0.0);
    }

    #[test]
    fn prop_baseline_runs_preserve_invariants(
        n_servers in 3usize..20,
        n_vms in 10usize..150,
        seed in 0u64..1000,
        which in 0u8..3,
    ) {
        let s = scenario(n_servers, n_vms, 2, seed, true);
        let res = match which {
            0 => s.run(BestFitPolicy::paper()),
            1 => s.run(FirstFitPolicy::paper()),
            _ => s.run(RandomPolicy::new(0.9, seed)),
        };
        check_universal_invariants(&s, &res);
    }

    #[test]
    fn prop_control_plane_preserves_conservation_laws(
        n_servers in 3usize..20,
        n_vms in 10usize..150,
        seed in 0u64..1000,
        loss_pct in 0u32..30,
        latency_ms in 0u64..400,
        timeout_ms in 100u64..1500,
    ) {
        // Random message models — including latency distributions
        // whose round trips routinely exceed the collection window —
        // may degrade placement but never break accounting.
        let mut s = scenario(n_servers, n_vms, 2, seed, true);
        s.config.control_plane = ControlPlaneConfig {
            enabled: true,
            latency_min_secs: 0.0,
            latency_max_secs: latency_ms as f64 / 1000.0,
            loss_prob: loss_pct as f64 / 100.0,
            accept_timeout_secs: timeout_ms as f64 / 1000.0,
            broadcast_limit: 2,
            rebroadcast_backoff_secs: 1.0,
            rebroadcast_backoff_cap_secs: 8.0,
            seed,
        };
        s.config.control_plane.validate().expect("valid model");
        let res = s.run(EcoCloudPolicy::paper(seed));
        check_universal_invariants(&s, &res);
        let sum = &res.summary;
        // Message conservation: every invitation sent is accounted
        // for as accepted, declined, lost, or timed out.
        prop_assert_eq!(
            sum.invitations_sent,
            sum.invite_accepts + sum.invite_declines + sum.invite_losses + sum.invite_timeouts
        );
        // Exchange conservation: every exchange started was resolved
        // (committed, abandoned, or crash/departure-aborted) by the
        // end of the run — nothing leaks.
        prop_assert_eq!(
            sum.exchanges_started,
            sum.exchanges_committed + sum.exchanges_abandoned + sum.exchanges_aborted
        );
        prop_assert!(sum.exchanges_started > 0);
    }

    #[test]
    fn prop_same_seed_same_outcome(
        n_servers in 3usize..15,
        n_vms in 10usize..120,
        seed in 0u64..1000,
    ) {
        let run = || {
            let s = scenario(n_servers, n_vms, 2, seed, true);
            s.run(EcoCloudPolicy::paper(seed))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.summary.energy_kwh, b.summary.energy_kwh);
        prop_assert_eq!(a.final_powered, b.final_powered);
        prop_assert_eq!(a.summary.migrations_started, b.summary.migrations_started);
    }
}
