//! Concurrency audit of the replica pool: a hand-rolled scripted
//! scheduler exhaustively interleaves every claim/write step order of
//! a 3-job × 2-worker batch through [`ecocloud::parallel`]'s `Gate`
//! seam and asserts the submission-order merge is byte-identical under
//! all of them.
//!
//! The pool's shared state is touched at exactly two points per job —
//! the work-stealing claim and the sink write — plus one failing claim
//! per worker on exit, so a 3×2 batch has exactly eight scheduling
//! steps. The scripted gate blocks each worker at every step until a
//! controller grants it the turn, which serializes the run into one
//! chosen global step order. Driving all 2^8 decision strings (with
//! infeasible decisions normalized to the surviving worker) realizes
//! every feasible interleaving; an abstract model of the pool
//! enumerates the feasible set independently, and the test asserts the
//! realized set equals it — the coverage claim is checked, not assumed.

use std::collections::BTreeSet;
use std::sync::{Condvar, Mutex};

use ecocloud::parallel::{run_replicas, run_replicas_gated, Gate};

/// Jobs in the batch.
const N: usize = 3;
/// Workers in the pool.
const WORKERS: usize = 2;
/// Total scheduling steps: one claim + one write per job, plus one
/// failing claim per worker on its exit path.
const STEPS: usize = 2 * N + WORKERS;

/// One scheduling step: which worker moved, and whether it was a
/// claim (`'c'`) or a sink write (`'w'`).
type Step = (usize, char);

// ------------------------------------------------------- scripted gate

struct SchedState {
    /// Worker currently granted the turn, if any.
    token: Option<usize>,
    /// What step each worker is blocked at (`None` = running or done).
    waiting: [Option<char>; WORKERS],
    /// Workers that have exited their dispatch loop (or are committed
    /// to exiting: a claim granted after the batch is exhausted).
    done: [bool; WORKERS],
    /// Claims granted so far; the first `N` succeed, the rest fail.
    claims: usize,
}

/// A [`Gate`] that blocks every worker at every step until the
/// controller thread ([`Scripted::drive`]) grants it the turn.
struct Scripted {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scripted {
    fn new() -> Self {
        Scripted {
            state: Mutex::new(SchedState {
                token: None,
                waiting: [None; WORKERS],
                done: [false; WORKERS],
                claims: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks `worker` at a step of the given kind until granted.
    fn pass(&self, worker: usize, kind: char) {
        let mut st = self.state.lock().expect("scheduler lock");
        st.waiting[worker] = Some(kind);
        self.cv.notify_all();
        while st.token != Some(worker) {
            st = self.cv.wait(st).expect("scheduler wait");
        }
        st.token = None;
        st.waiting[worker] = None;
        self.cv.notify_all();
    }

    /// Runs the controller: grants one step per script entry (an
    /// infeasible entry — naming a finished worker — is redirected to
    /// the surviving one) until every worker is done. Returns the
    /// realized step sequence.
    fn drive(&self, script: &[usize]) -> Vec<Step> {
        let mut realized = Vec::with_capacity(STEPS);
        for &want in script {
            let mut st = self.state.lock().expect("scheduler lock");
            // Wait until the previous grant is consumed and every
            // worker is settled: blocked at a gate or done.
            while st.token.is_some()
                || (0..WORKERS).any(|w| st.waiting[w].is_none() && !st.done[w])
            {
                st = self.cv.wait(st).expect("scheduler wait");
            }
            if st.done.iter().all(|&d| d) {
                break;
            }
            let w = if st.done[want] {
                (0..WORKERS).find(|&w| !st.done[w]).expect("a live worker")
            } else {
                want
            };
            let kind = st.waiting[w].expect("settled worker is waiting");
            if kind == 'c' {
                st.claims += 1;
                // A claim past the batch size fails inside the pool
                // and the worker exits without reaching another gate.
                if st.claims > N {
                    st.done[w] = true;
                }
            }
            realized.push((w, kind));
            st.token = Some(w);
            self.cv.notify_all();
        }
        realized
    }
}

impl Gate for Scripted {
    fn before_claim(&self, worker: usize) {
        self.pass(worker, 'c');
    }
    fn before_write(&self, worker: usize, _index: usize) {
        self.pass(worker, 'w');
    }
}

// ---------------------------------------------------- abstract model

/// Enumerates every feasible step sequence of the pool's abstract
/// model: each worker loops claim → (on success) write, and exits on a
/// failed claim; the first `N` claims globally succeed. This is the
/// ground truth the scripted executions are checked against.
fn feasible_schedules() -> BTreeSet<Vec<Step>> {
    #[derive(Clone, Copy, PartialEq)]
    enum W {
        Claiming,
        Writing,
        Done,
    }
    fn rec(workers: [W; WORKERS], claims: usize, prefix: &mut Vec<Step>, out: &mut BTreeSet<Vec<Step>>) {
        if workers.iter().all(|&w| matches!(w, W::Done)) {
            out.insert(prefix.clone());
            return;
        }
        for (i, &st) in workers.iter().enumerate() {
            let mut next = workers;
            let (step, claims) = match st {
                W::Done => continue,
                W::Claiming if claims < N => {
                    next[i] = W::Writing;
                    ((i, 'c'), claims + 1)
                }
                W::Claiming => {
                    next[i] = W::Done;
                    ((i, 'c'), claims)
                }
                W::Writing => {
                    next[i] = W::Claiming;
                    ((i, 'w'), claims)
                }
            };
            prefix.push(step);
            rec(next, claims, prefix, out);
            prefix.pop();
        }
    }
    let mut out = BTreeSet::new();
    rec([W::Claiming; WORKERS], 0, &mut Vec::new(), &mut out);
    out
}

// ------------------------------------------------------------ the audit

/// A cheap, index-deterministic payload (splitmix64) standing in for a
/// simulation artifact: any reordering or double-execution changes the
/// merged bytes.
fn job(i: usize) -> Vec<u8> {
    let mut z = (i as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    format!("replica {i}: {:016x}\n", z ^ (z >> 31)).into_bytes()
}

fn merged(outs: &[Vec<u8>]) -> Vec<u8> {
    outs.iter().flat_map(|o| o.iter().copied()).collect()
}

#[test]
fn every_interleaving_merges_byte_identically() {
    let reference = merged(&run_replicas(N, 1, job));
    let expected = feasible_schedules();
    assert!(
        expected.len() > 10,
        "the feasible set is non-trivial: {}",
        expected.len()
    );

    let mut realized_set = BTreeSet::new();
    let mut splits = BTreeSet::new();
    for mask in 0u32..(1 << STEPS) {
        let script: Vec<usize> = (0..STEPS).map(|b| ((mask >> b) & 1) as usize).collect();
        let gate = Scripted::new();
        let (out, realized) = std::thread::scope(|s| {
            let driver = s.spawn(|| gate.drive(&script));
            let out = run_replicas_gated(N, WORKERS, &gate, job);
            (out, driver.join().expect("controller thread"))
        });

        assert_eq!(out.len(), N, "schedule {realized:?} lost a result");
        assert_eq!(
            merged(&out),
            reference,
            "submission-order merge must be byte-identical under schedule {realized:?}"
        );
        assert_eq!(realized.len(), STEPS, "schedule {realized:?} has a step miscount");

        // Which worker won each successful claim (the first N claim
        // steps) — the work distribution this schedule forced.
        let mut split = [0usize; WORKERS];
        for &(w, _) in realized.iter().filter(|&&(_, k)| k == 'c').take(N) {
            split[w] += 1;
        }
        splits.insert(split);
        realized_set.insert(realized);
    }

    // The coverage claim, checked: the scripted runs realized exactly
    // the abstractly-feasible interleavings — no more, no fewer.
    assert_eq!(
        realized_set, expected,
        "scripted execution must realize the feasible set exactly"
    );
    // Every work split occurred, including one worker taking the
    // whole batch while the other only observes exhaustion.
    for k in 0..=N {
        assert!(
            splits.contains(&[k, N - k]),
            "work split {k}/{} never realized",
            N - k
        );
    }
}

#[test]
fn free_run_gate_is_the_production_path() {
    // The gated entry with the production gate is `run_replicas`.
    let gated = run_replicas_gated(8, 3, &ecocloud::parallel::FreeRun, job);
    assert_eq!(gated, run_replicas(8, 3, job));
}

// ------------------------------------- shard-barrier interleavings

/// The same audit for the shard engine's fork-join barrier: between
/// two barriers the K shard bodies may execute in any order (that is
/// exactly the freedom a thread scheduler has), so
/// [`dcsim::shard::run_shards_order`] — the scripted seam the
/// production `run_shards` shares its result-indexing with — is driven
/// through *every* K! execution order, and the mailbox drain is
/// asserted byte-identical under all of them.
mod shard_barrier {
    use ecocloud::dcsim::shard::{drain_in_order, run_shards_order, Mailbox};

    const K: usize = 4;

    /// Heap's algorithm: all permutations of `0..K`.
    fn permutations(k: usize) -> Vec<Vec<usize>> {
        fn rec(n: usize, arr: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if n <= 1 {
                out.push(arr.clone());
                return;
            }
            for i in 0..n {
                rec(n - 1, arr, out);
                let j = if n % 2 == 0 { i } else { 0 };
                arr.swap(j, n - 1);
            }
        }
        let mut arr: Vec<usize> = (0..k).collect();
        let mut out = Vec::new();
        rec(k, &mut arr, &mut out);
        out
    }

    /// One barrier epoch: each shard computes a splitmix64 payload for
    /// its slice of a 23-element fleet and mails it keyed by element
    /// index. Any double-application, drop, or order leak changes the
    /// drained byte string.
    fn epoch(order: &[usize]) -> Vec<u8> {
        let boxes = run_shards_order(K, order, |s| {
            let mut mb = Mailbox::new(s);
            let (lo, hi) = (s * 23 / K, (s + 1) * 23 / K);
            for i in lo..hi {
                mb.push(i as u64, super::job(i));
            }
            mb
        });
        let mut drained = Vec::new();
        drain_in_order(boxes, |key, payload: Vec<u8>| {
            drained.extend_from_slice(&key.to_be_bytes());
            drained.extend_from_slice(&payload);
        });
        drained
    }

    #[test]
    fn every_shard_execution_order_drains_byte_identically() {
        let all = permutations(K);
        assert_eq!(all.len(), 24, "4! orders");
        let reference = epoch(&(0..K).collect::<Vec<_>>());
        assert!(!reference.is_empty());
        for order in &all {
            assert_eq!(
                epoch(order),
                reference,
                "mailbox drain diverged under shard order {order:?}"
            );
        }
    }
}
