//! Shard-boundary tests for the deterministic parallel engine.
//!
//! The contract under test (see `dcsim::shard`): the shard count `K`
//! and the worker-thread count are pure *performance* knobs — every
//! `(K, threads)` pair produces output byte-identical to the
//! sequential `K = 1` engine, and a checkpoint taken under one `K`
//! resumes under any other. The equality oracle is the `Debug`
//! formatting of the full result (every counter, series sample and
//! histogram bucket, floats at round-trip precision), the same oracle
//! the checkpoint suite uses.

use ecocloud::dcsim::{Checkpoint, Policy, ShardConfig, SimResult, Simulation};
use ecocloud::prelude::*;
use ecocloud::scenarios::ChurnKind;
use proptest::prelude::*;

/// Runs `scenario` under the given shard/thread configuration.
fn run_sharded<P: Policy>(scenario: &Scenario, policy: P, shards: usize, threads: usize) -> SimResult {
    let mut config = scenario.config.clone();
    config.shard = ShardConfig { shards, threads };
    Simulation::new(
        scenario.fleet.clone(),
        scenario.workload.clone(),
        config,
        policy,
    )
    .run()
}

/// The byte-equality oracle shared with the checkpoint suite.
fn assert_same_result(label: &str, a: &SimResult, b: &SimResult) {
    assert_eq!(
        format!("{:?}", a.summary),
        format!("{:?}", b.summary),
        "{label}: summaries diverge"
    );
    assert_eq!(
        format!("{:?}", a.stats),
        format!("{:?}", b.stats),
        "{label}: statistics diverge"
    );
    assert_eq!(a.final_powered, b.final_powered, "{label}: final_powered");
}

/// A closed-system scenario sized so a two-shard split cuts the fleet
/// mid-rack: odd server count, VMs dense enough that consolidation
/// migrates across the boundary.
fn closed(seed: u64) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 120,
        duration_secs: 6 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 6.0 * 3600.0;
    Scenario {
        fleet: Fleet::thirds(15),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

/// The hostile scenario: open-system churn (arrivals, departures,
/// spot preemptions), chaos faults (crashes, recoveries, wake
/// failures) and consolidation migrations all active at once, on a
/// fleet small enough that every one of them crosses a shard boundary.
fn hostile(seed: u64) -> Scenario {
    let mut s = Scenario::open_system(Fleet::thirds(18), 90, 6, seed, ChurnKind::Spot, 0.5);
    s.config.faults = FaultConfig::chaos(seed);
    s
}

// ------------------------------------------------- K-invariance

#[test]
fn shard_count_is_invisible_closed_system() {
    let s = closed(11);
    let reference = run_sharded(&s, EcoCloudPolicy::paper(11), 1, 1);
    for k in [2, 4, 7] {
        let res = run_sharded(&s, EcoCloudPolicy::paper(11), k, 1);
        assert_same_result(&format!("closed K={k}"), &reference, &res);
    }
}

#[test]
fn thread_count_is_invisible() {
    let s = closed(12);
    let reference = run_sharded(&s, EcoCloudPolicy::paper(12), 1, 1);
    for threads in [1, 2, 3, 0] {
        let res = run_sharded(&s, EcoCloudPolicy::paper(12), 4, threads);
        assert_same_result(&format!("K=4 threads={threads}"), &reference, &res);
    }
}

#[test]
fn more_shards_than_servers_degrades_gracefully() {
    // K is clamped to the fleet size; asking for 64 shards of 15
    // servers must still be byte-identical, not a panic.
    let s = closed(13);
    let reference = run_sharded(&s, EcoCloudPolicy::paper(13), 1, 1);
    let res = run_sharded(&s, EcoCloudPolicy::paper(13), 64, 2);
    assert_same_result("K=64 on 15 servers", &reference, &res);
}

// ------------------------------------------- the two-shard race test

/// The scripted race: with `K = 2` every class of cross-server
/// interaction — consolidation migrations, churn departures (a VM
/// leaving mid-epoch), spot preemptions and fault-recovery
/// re-placements — fires repeatedly across the one shard boundary,
/// inside the same 5-minute barrier epochs that the parallel demand
/// sweep spans. "Applied exactly once" is enforced three ways: the
/// engine's debug-build conservation asserts (active in this binary),
/// the arrival law checked below, and byte-equality against the
/// sequential engine.
#[test]
fn two_shard_race_applies_each_boundary_event_exactly_once() {
    let s = hostile(21);
    let reference = run_sharded(&s, EcoCloudPolicy::paper(21), 1, 1);
    let raced = run_sharded(&s, EcoCloudPolicy::paper(21), 2, 2);

    // The scenario actually exercises every racing event class.
    let sum = &raced.summary;
    assert!(sum.migrations_completed > 0, "no migrations raced");
    assert!(sum.vms_departed > 0, "no departures raced");
    assert!(sum.server_crashes > 0, "no faults raced");
    assert!(
        sum.vms_displaced > 0,
        "no fault-recovery re-placements raced"
    );

    // Exactly-once accounting: every arrival is departed, lost or
    // still resident — a double-applied departure or a lost
    // re-placement breaks this law.
    let resident = sum.vms_arrived - sum.vms_departed - sum.vms_lost;
    assert_eq!(
        reference.summary.vms_arrived - reference.summary.vms_departed
            - reference.summary.vms_lost,
        resident,
        "arrival conservation diverged between K=1 and K=2"
    );

    // And the whole run is byte-identical to the sequential engine.
    assert_same_result("two-shard race", &reference, &raced);
}

// --------------------------------------- checkpoint / resume across K

/// Steps `sim` to `at_secs`, snapshots through the on-disk byte
/// format, and restores onto a fresh policy under `resume_shards`.
fn checkpoint_and_resume<P: Policy>(
    scenario: &Scenario,
    policy: P,
    fresh_policy: P,
    run_shards: usize,
    resume_shards: usize,
    at_secs: f64,
) -> SimResult {
    let mut config = scenario.config.clone();
    config.shard = ShardConfig::with_shards(run_shards);
    let mut sim = Simulation::new(
        scenario.fleet.clone(),
        scenario.workload.clone(),
        config,
        policy,
    );
    while sim.now() < at_secs {
        if sim.step().is_none() {
            break;
        }
    }
    let bytes = sim.checkpoint("test/shard", 0).to_bytes();
    let ckpt = Checkpoint::from_bytes(&bytes, "in-memory").expect("snapshot bytes round-trip");
    let mut config = scenario.config.clone();
    config.shard = ShardConfig::with_shards(resume_shards);
    Simulation::restore_from(
        scenario.fleet.clone(),
        scenario.workload.clone(),
        config,
        fresh_policy,
        &ckpt,
        "test/shard",
    )
    .expect("snapshot restores under a different shard count")
    .run()
}

#[test]
fn checkpoints_resume_across_shard_counts() {
    // Shard state is derived, never serialized, so a snapshot is
    // K-invariant in both directions: take under K=1 resume under
    // K=4, and take under K=4 resume under K=1.
    let s = hostile(22);
    let straight = run_sharded(&s, EcoCloudPolicy::paper(22), 1, 1);
    let half = s.config.duration_secs / 2.0;
    for (run_k, resume_k) in [(1, 4), (4, 1), (2, 7)] {
        let resumed = checkpoint_and_resume(
            &s,
            EcoCloudPolicy::paper(22),
            EcoCloudPolicy::paper(22),
            run_k,
            resume_k,
            half,
        );
        assert_same_result(
            &format!("checkpoint K={run_k} -> resume K={resume_k}"),
            &straight,
            &resumed,
        );
    }
}

#[test]
fn checkpoint_bytes_are_shard_invariant() {
    // Stronger than result equality: the snapshot *bytes* taken at the
    // same simulation time must be identical for every K, because the
    // shard plan is config-derived scratch, not state.
    let s = closed(23);
    let at = s.config.duration_secs / 2.0;
    let mut snapshots = Vec::new();
    for k in [1usize, 2, 5] {
        let mut config = s.config.clone();
        config.shard = ShardConfig::with_shards(k);
        let mut sim = Simulation::new(
            s.fleet.clone(),
            s.workload.clone(),
            config,
            EcoCloudPolicy::paper(23),
        );
        while sim.now() < at {
            if sim.step().is_none() {
                break;
            }
        }
        snapshots.push(sim.checkpoint("test/bytes", 0).to_bytes());
    }
    assert_eq!(snapshots[0], snapshots[1], "K=1 vs K=2 snapshot bytes");
    assert_eq!(snapshots[0], snapshots[2], "K=1 vs K=5 snapshot bytes");
}

// ----------------------------------------------------------- proptest

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case is three full simulations
        ..ProptestConfig::default()
    })]

    /// The pinned contract, fuzzed: for random scenario shapes, random
    /// shard counts and random thread counts, the summary `Debug`
    /// bytes equal the sequential engine's.
    #[test]
    fn prop_summaries_are_byte_identical_across_shards(
        n_servers in 4usize..20,
        n_vms in 20usize..150,
        seed in 0u64..1000,
        k_pick in 0usize..3,
        threads in 0usize..4,
    ) {
        let k = [2usize, 4, 7][k_pick];
        let traces = TraceSet::generate(TraceConfig {
            n_vms,
            duration_secs: 2 * 3600,
            ..TraceConfig::small(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 2.0 * 3600.0;
        config.record_server_utilization = false;
        let s = Scenario {
            fleet: Fleet::thirds(n_servers),
            workload: Workload::all_vms_from_start(traces),
            config,
        };
        let reference = run_sharded(&s, EcoCloudPolicy::paper(seed), 1, 1);
        let sharded = run_sharded(&s, EcoCloudPolicy::paper(seed), k, threads);
        prop_assert_eq!(
            format!("{:?}", reference.summary),
            format!("{:?}", sharded.summary),
            "K={} threads={} diverged", k, threads
        );
        prop_assert_eq!(
            format!("{:?}", reference.stats),
            format!("{:?}", sharded.stats),
            "K={} threads={} stats diverged", k, threads
        );
    }
}
