//! Control-plane integration tests: the message-level placement
//! protocol (invitation broadcast → acceptance collection → commit
//! with admission re-check → bounded re-broadcast) against its atomic
//! oracle, under loss, and under combined loss + server faults.

use ecocloud::dcsim::{ClusterView, ServerId, SimEvent, Simulation};
use ecocloud::prelude::*;

/// A scenario with one VM arriving every `spacing_secs`, so placement
/// exchanges never overlap in simulated time (the regime where the
/// phased protocol with an ideal network must reproduce the atomic
/// decisions draw for draw).
fn staggered_scenario(n_servers: usize, n_vms: usize, spacing_secs: f64, seed: u64) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: 2 * 3600,
        ..TraceConfig::small(seed)
    });
    let spawns = (0..n_vms)
        .map(|i| ecocloud::dcsim::VmSpawn {
            trace_idx: i,
            arrive_secs: (i as f64 + 1.0) * spacing_secs,
            lifetime_secs: None,
            priority: Default::default(),
            evictable: false,
            ram_mb: 0.0,
        })
        .collect();
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 2.0 * 3600.0;
    config.migrations_enabled = false;
    config.record_events = true;
    config.record_server_utilization = false;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload: Workload {
            traces,
            spawns,
            initial_placement: InitialPlacement::ViaPolicy,
            wrap_traces: false,
        },
        config,
    }
}

/// Extracts the placement decision sequence from an event log:
/// `(vm, Some(server))` for placements, `(vm, None)` for drops.
fn decisions(res: &ecocloud::dcsim::SimResult) -> Vec<(u32, Option<u32>)> {
    res.events
        .events()
        .iter()
        .filter_map(|e| match *e {
            SimEvent::VmPlaced { vm, server, .. } => Some((vm.0, Some(server.0))),
            SimEvent::VmDropped { vm, .. } => Some((vm.0, None)),
            _ => None,
        })
        .collect()
}

fn assert_conservation(sum: &ecocloud::dcsim::stats::SimSummary) {
    assert_eq!(
        sum.invitations_sent,
        sum.invite_accepts + sum.invite_declines + sum.invite_losses + sum.invite_timeouts,
        "message conservation violated"
    );
    assert_eq!(
        sum.exchanges_started,
        sum.exchanges_committed + sum.exchanges_abandoned + sum.exchanges_aborted,
        "exchange conservation violated"
    );
}

#[test]
fn ideal_network_is_decision_equivalent_to_atomic_oracle() {
    for seed in [1u64, 7, 42] {
        let mut atomic = staggered_scenario(12, 60, 30.0, seed);
        let mut phased = atomic.clone();
        atomic.config.control_plane = ControlPlaneConfig::off();
        phased.config.control_plane = ControlPlaneConfig::ideal(seed);

        let res_a = atomic.run(EcoCloudPolicy::paper(seed));
        let res_p = phased.run(EcoCloudPolicy::paper(seed));

        // Zero latency + zero loss + broadcast_limit == the atomic
        // path's assignment_rounds: same servers for the same seed.
        assert_eq!(
            decisions(&res_a),
            decisions(&res_p),
            "ideal control plane diverged from the atomic oracle (seed {seed})"
        );
        assert_eq!(res_a.summary.energy_kwh, res_p.summary.energy_kwh);
        assert_eq!(res_a.final_powered, res_p.final_powered);
        // And the protocol actually ran.
        assert!(res_p.summary.exchanges_started >= 60);
        assert_eq!(res_p.summary.commit_nacks, 0, "NACK without contention");
        assert_conservation(&res_p.summary);
        // The atomic run never touches the exchange machinery.
        assert_eq!(res_a.summary.exchanges_started, 0);
        assert_eq!(res_a.summary.invitations_sent, 0);
    }
}

#[test]
fn off_profile_keeps_every_counter_zero() {
    let s = staggered_scenario(8, 40, 30.0, 5);
    let res = s.run(EcoCloudPolicy::paper(5));
    let sum = &res.summary;
    assert_eq!(sum.exchanges_started, 0);
    assert_eq!(sum.invitations_sent, 0);
    assert_eq!(sum.commits_sent, 0);
    assert_eq!(sum.exchange_rebroadcasts, 0);
    assert_eq!(sum.placement_p99_secs, 0.0);
}

#[test]
fn heavy_loss_degrades_gracefully_under_chaos_faults() {
    // 20 % per-leg loss on top of the chaos fault schedule: the run
    // must finish without panicking, resolve every exchange, and keep
    // both conservation laws (plus VM conservation, checked by the
    // engine's own debug asserts in `finish`).
    for seed in [3u64, 11] {
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 120,
            duration_secs: 3 * 3600,
            ..TraceConfig::small(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 3.0 * 3600.0;
        config.record_server_utilization = false;
        config.faults = FaultConfig::chaos(seed);
        config.control_plane = ControlPlaneConfig::with_loss(0.2, seed);
        let s = Scenario {
            fleet: Fleet::thirds(10),
            workload: Workload::all_vms_from_start(traces),
            config,
        };
        let res = s.run(EcoCloudPolicy::paper(seed));
        assert_conservation(&res.summary);
        assert!(res.summary.exchanges_started > 0);
        // At 20 % loss some messages must actually have been lost.
        assert!(
            res.summary.invite_losses > 0,
            "lossy run lost no invitations (seed {seed})"
        );
    }
}

#[test]
fn lossy_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut s = staggered_scenario(10, 50, 20.0, seed);
        s.config.control_plane = ControlPlaneConfig::lossy(seed);
        s.run(EcoCloudPolicy::paper(seed))
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a.summary.energy_kwh, b.summary.energy_kwh);
    assert_eq!(a.summary.exchanges_committed, b.summary.exchanges_committed);
    assert_eq!(a.summary.invite_losses, b.summary.invite_losses);
    assert_eq!(a.summary.placement_p99_secs, b.summary.placement_p99_secs);
    assert_eq!(decisions(&a), decisions(&b));
    let c = run(10);
    assert_ne!(
        (a.summary.energy_kwh, a.summary.invite_losses),
        (c.summary.energy_kwh, c.summary.invite_losses),
        "different seeds produced identical lossy runs"
    );
}

/// A scripted phased policy: every powered server accepts the
/// invitation, but the commit-time re-check only admits onto an empty
/// server. With two VMs racing for one server, the second commit must
/// NACK, retry its (empty) acceptor list, re-broadcast, NACK again,
/// and finally drop.
struct OnlyWhenEmpty;

impl Policy for OnlyWhenEmpty {
    fn name(&self) -> &'static str {
        "only-when-empty"
    }

    fn place(&mut self, _view: &ClusterView<'_>, _req: &PlacementRequest) -> PlaceOutcome {
        unreachable!("phased policy must not fall back to atomic placement")
    }

    fn invite(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> Option<Vec<ServerId>> {
        Some(
            view.powered()
                .map(|(sid, _)| sid)
                .filter(|&sid| Some(sid) != req.exclude)
                .collect(),
        )
    }

    fn admission_recheck(
        &mut self,
        view: &ClusterView<'_>,
        server: ServerId,
        _req: &PlacementRequest,
    ) -> bool {
        // Room for two VMs total: the first racing commit is admitted,
        // the second finds the server full and is NACKed.
        view.server(server).vms.len() < 2
    }
}

#[test]
fn stale_commit_is_nacked_and_retried_to_exhaustion() {
    let seed = 1u64;
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 3,
        duration_secs: 3600,
        ..TraceConfig::small(seed)
    });
    // VM 0 is pre-spread onto the lone server at t = 0 (keeping it
    // active); VMs 1 and 2 arrive together and race for the last slot.
    let spawns = (0..3)
        .map(|i| ecocloud::dcsim::VmSpawn {
            trace_idx: i,
            arrive_secs: if i == 0 { 0.0 } else { 60.0 },
            lifetime_secs: None,
            priority: Default::default(),
            evictable: false,
            ram_mb: 0.0,
        })
        .collect();
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 3600.0;
    config.migrations_enabled = false;
    config.record_events = true;
    config.control_plane = ControlPlaneConfig {
        enabled: true,
        latency_min_secs: 0.05,
        latency_max_secs: 0.05, // fixed latency: fully scripted timing
        loss_prob: 0.0,
        accept_timeout_secs: 0.5,
        broadcast_limit: 2,
        rebroadcast_backoff_secs: 0.0,
        rebroadcast_backoff_cap_secs: 0.0,
        seed,
    };
    config.control_plane.validate().expect("valid model");
    let workload = Workload {
        traces,
        spawns,
        initial_placement: InitialPlacement::Spread,
        wrap_traces: false,
    };
    // Both racing VMs broadcast at t = 60, both collect the lone
    // server's acceptance, and both commit: the first commit wins,
    // the second finds the server full.
    let res = Simulation::new(Fleet::uniform(1, 6), workload, config, OnlyWhenEmpty).run();
    let sum = &res.summary;
    assert_eq!(sum.exchanges_started, 2);
    assert_eq!(sum.exchanges_committed, 1);
    assert_eq!(sum.exchanges_abandoned, 1);
    assert_eq!(sum.exchanges_aborted, 0);
    // First commit admitted; the loser NACKs once per round.
    assert_eq!(sum.commit_nacks, 2);
    assert_eq!(sum.exchange_rebroadcasts, 1);
    assert_eq!(sum.dropped_vms, 1);
    assert_conservation(sum);
    // The log tells the same story.
    let nacks = res
        .events
        .count_matching(|e| matches!(e, SimEvent::ExchangeNacked { .. }));
    assert_eq!(nacks, 2);
    let placed = res
        .events
        .count_matching(|e| matches!(e, SimEvent::VmPlaced { .. }));
    assert_eq!(placed, 2, "pre-spread VM 0 plus the winning racer");
}

/// Scripted phased policy for the departure-mid-exchange race: S0's
/// first monitor tick requests one high migration of VM 0, whose
/// placement then runs through the invitation protocol.
struct MigrateViaExchange {
    done: bool,
}

impl Policy for MigrateViaExchange {
    fn name(&self) -> &'static str {
        "migrate-via-exchange"
    }

    fn place(&mut self, _view: &ClusterView<'_>, _req: &PlacementRequest) -> PlaceOutcome {
        unreachable!("phased policy must not fall back to atomic placement")
    }

    fn invite(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> Option<Vec<ServerId>> {
        Some(
            view.powered()
                .map(|(sid, _)| sid)
                .filter(|&sid| Some(sid) != req.exclude)
                .collect(),
        )
    }

    fn monitor(
        &mut self,
        _view: &ClusterView<'_>,
        server: ServerId,
        _now_secs: f64,
    ) -> Option<ecocloud::dcsim::MigrationRequest> {
        if server != ServerId(0) || self.done {
            return None;
        }
        self.done = true;
        Some(ecocloud::dcsim::MigrationRequest {
            vm: ecocloud::dcsim::VmId(0),
            kind: ecocloud::dcsim::MigrationKind::High,
        })
    }
}

/// A VM departing while its migration *exchange* is still collecting
/// acceptances aborts the exchange (no commit, no flight) and releases
/// its host capacity exactly once through the ordinary departure path.
#[test]
fn departure_mid_exchange_aborts_without_migrating() {
    let seed = 1u64;
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 1,
        duration_secs: 3600,
        ..TraceConfig::small(seed)
    });
    // VM 0 is pre-spread on S0 at t = 0 and lives 1.3 s. S0's first
    // monitor tick (t = 1, interval 2 s over two servers) starts the
    // migration exchange; its collection window closes at t = 1.5, so
    // the departure at t = 1.3 lands mid-exchange.
    let spawns = vec![ecocloud::dcsim::VmSpawn {
        trace_idx: 0,
        arrive_secs: 0.0,
        lifetime_secs: Some(1.3),
        priority: Default::default(),
        evictable: false,
        ram_mb: 0.0,
    }];
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 3600.0;
    config.monitor_interval_secs = 2.0;
    config.idle_timeout_secs = 1e9;
    config.record_events = true;
    config.control_plane = ControlPlaneConfig {
        enabled: true,
        latency_min_secs: 0.05,
        latency_max_secs: 0.05,
        loss_prob: 0.0,
        accept_timeout_secs: 0.5,
        broadcast_limit: 2,
        rebroadcast_backoff_secs: 0.0,
        rebroadcast_backoff_cap_secs: 0.0,
        seed,
    };
    config.control_plane.validate().expect("valid model");
    let workload = Workload {
        traces,
        spawns,
        initial_placement: InitialPlacement::Spread,
        wrap_traces: false,
    };
    let res = Simulation::new(
        Fleet::uniform(2, 6),
        workload,
        config,
        MigrateViaExchange { done: false },
    )
    .run();
    let sum = &res.summary;
    // The exchange started and was aborted by the departure — never
    // committed, never abandoned, and no migration flight began.
    assert_eq!(sum.exchanges_started, 1);
    assert_eq!(sum.exchanges_aborted, 1);
    assert_eq!(sum.exchanges_committed, 0);
    assert_eq!(sum.migrations_started, 0);
    assert_eq!(sum.vms_departed, 1);
    assert_conservation(sum);
    // Capacity was released exactly once: nothing is left alive, in
    // flight, or reserved anywhere in the cluster.
    assert_eq!(res.final_alive_vms, 0);
    assert_eq!(res.final_inflight_migrations, 0);
    let aborted_at = res
        .events
        .events()
        .iter()
        .find_map(|e| match e {
            SimEvent::ExchangeAborted { t, .. } => Some(*t),
            _ => None,
        })
        .expect("no exchange abort logged");
    assert_eq!(aborted_at, 1.3);
}
