//! Crash-safe checkpoint/restore through the full pipeline.
//!
//! Two layers of evidence that a resumed run is byte-identical to an
//! uninterrupted one:
//!
//! 1. **In-process resume equivalence** over every subsystem that
//!    carries deterministic state (fault schedules, control-plane
//!    exchanges, open-system churn, the reference event queue, policy
//!    RNGs): run a scenario straight through, run it again with a
//!    snapshot + restore at the halfway point, and require the results
//!    to match down to the `Debug` formatting of every float.
//! 2. **A kill–resume chaos harness**: SIGKILL the real CLI binary at
//!    seeded random wall-clock points in a loop, resume from the last
//!    good snapshot, and require the final stdout to equal the
//!    straight-through run's stdout byte for byte.

use ecocloud::dcsim::{Checkpoint, Policy, SimResult, Simulation};
use ecocloud::prelude::*;
use ecocloud::scenarios::ChurnKind;

/// Runs `scenario` straight through.
fn run_straight<P: Policy>(scenario: &Scenario, policy: P) -> SimResult {
    Simulation::new(
        scenario.fleet.clone(),
        scenario.workload.clone(),
        scenario.config.clone(),
        policy,
    )
    .run()
}

/// Runs `scenario` with a checkpoint at `at_secs`, serializes the
/// snapshot to bytes and back (the exact on-disk round trip), restores
/// it onto a *fresh* policy, and finishes both the original and the
/// restored simulation. Returns `(continued, resumed)` results.
fn run_interrupted<P: Policy>(
    scenario: &Scenario,
    policy: P,
    fresh_policy: P,
    at_secs: f64,
    spec: &str,
) -> (SimResult, SimResult) {
    let mut sim = Simulation::new(
        scenario.fleet.clone(),
        scenario.workload.clone(),
        scenario.config.clone(),
        policy,
    );
    while sim.now() < at_secs {
        if sim.step().is_none() {
            break;
        }
    }
    let ckpt = sim.checkpoint(spec, 0);
    let bytes = ckpt.to_bytes();
    let ckpt = Checkpoint::from_bytes(&bytes, "in-memory").expect("snapshot bytes round-trip");
    assert_eq!(ckpt.spec, spec);
    let resumed = Simulation::restore_from(
        scenario.fleet.clone(),
        scenario.workload.clone(),
        scenario.config.clone(),
        fresh_policy,
        &ckpt,
        spec,
    )
    .expect("snapshot restores");
    // Taking the snapshot must not have perturbed the original run.
    while sim.step().is_some() {}
    (sim.finish(), resumed.run())
}

/// The equality oracle: `Debug` formatting covers every counter,
/// series sample and histogram bucket, and formats floats exactly
/// (shortest representation that round-trips), so two results agree
/// here iff they agree bit for bit on everything the reports use.
fn assert_same_result(label: &str, a: &SimResult, b: &SimResult) {
    assert_eq!(
        format!("{:?}", a.summary),
        format!("{:?}", b.summary),
        "{label}: summaries diverge"
    );
    assert_eq!(
        format!("{:?}", a.stats),
        format!("{:?}", b.stats),
        "{label}: statistics diverge"
    );
    assert_eq!(a.final_powered, b.final_powered, "{label}: final_powered");
}

/// Straight vs interrupted-and-resumed, for one scenario + policy.
fn assert_resume_equivalent<P: Policy, F: Fn() -> P>(label: &str, scenario: &Scenario, mk: F) {
    let spec = format!("test/{label}");
    let straight = run_straight(scenario, mk());
    let half = scenario.config.duration_secs / 2.0;
    let (continued, resumed) = run_interrupted(scenario, mk(), mk(), half, &spec);
    assert_same_result(&format!("{label} (checkpoint perturbs)"), &straight, &continued);
    assert_same_result(&format!("{label} (resume diverges)"), &straight, &resumed);
}

/// A small closed-system scenario (12 servers, 60 VMs, 4 h).
fn closed(seed: u64) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 60,
        duration_secs: 4 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 4.0 * 3600.0;
    Scenario {
        fleet: Fleet::thirds(12),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

#[test]
fn resume_is_byte_identical_closed_system() {
    let s = closed(7);
    assert_resume_equivalent("closed", &s, || EcoCloudPolicy::paper(7));
}

#[test]
fn resume_is_byte_identical_under_chaos_faults() {
    let mut s = closed(8);
    s.config.faults = FaultConfig::chaos(8);
    assert_resume_equivalent("faults", &s, || EcoCloudPolicy::paper(8));
}

#[test]
fn resume_is_byte_identical_with_lossy_control_plane() {
    let mut s = closed(9);
    s.config.control_plane = ControlPlaneConfig::lossy(9);
    s.config.validate().expect("valid");
    assert_resume_equivalent("control", &s, || EcoCloudPolicy::paper(9));
}

#[test]
fn resume_is_byte_identical_with_open_system_churn() {
    let mut s = Scenario::open_system(Fleet::thirds(12), 60, 4, 10, ChurnKind::Spot, 0.5);
    s.config.record_events = true;
    assert_resume_equivalent("churn", &s, || EcoCloudPolicy::paper(10));
}

#[test]
fn resume_is_byte_identical_with_reference_event_queue() {
    let mut s = closed(11);
    s.config.reference_event_queue = true;
    assert_resume_equivalent("refqueue", &s, || EcoCloudPolicy::paper(11));
}

#[test]
fn resume_is_byte_identical_for_random_policy_rng() {
    let s = closed(12);
    assert_resume_equivalent("random", &s, || RandomPolicy::new(0.9, 12));
}

#[test]
fn resume_is_byte_identical_with_everything_on() {
    // The union of all checkpointed subsystems in one run: faults,
    // phased placement with message loss, churn, event log.
    let mut s = Scenario::open_system(Fleet::thirds(14), 70, 4, 13, ChurnKind::Flash, 0.5);
    s.config.faults = FaultConfig::moderate(13);
    s.config.control_plane = ControlPlaneConfig::lan(13);
    s.config.record_events = true;
    s.config.validate().expect("valid");
    assert_resume_equivalent("union", &s, || EcoCloudPolicy::paper(13));
}

#[test]
fn restore_rejects_wrong_spec_and_version() {
    let s = closed(14);
    let mut sim = Simulation::new(
        s.fleet.clone(),
        s.workload.clone(),
        s.config.clone(),
        EcoCloudPolicy::paper(14),
    );
    for _ in 0..50 {
        sim.step();
    }
    let ckpt = sim.checkpoint("test/a", 0);
    let msg = match Simulation::restore_from(
        s.fleet.clone(),
        s.workload.clone(),
        s.config.clone(),
        EcoCloudPolicy::paper(14),
        &ckpt,
        "test/b",
    ) {
        Ok(_) => panic!("spec gate must reject a different spec"),
        Err(e) => e.to_string(),
    };
    assert!(
        msg.contains("test/a") && msg.contains("test/b"),
        "spec mismatch must show both specs: {msg}"
    );
}

// --- Kill–resume chaos harness over the real binary ----------------

mod chaos {
    use std::path::{Path, PathBuf};
    use std::process::{Command, Stdio};

    /// Wall-clock kill-point generator: SplitMix64, the same generator
    /// the simulator's RNG stub uses. Seeded, so a failing kill
    /// schedule is reproducible.
    struct KillRng(u64);

    impl KillRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// The CLI binary under chaos. `build.sh all` puts it here;
    /// `ECOCLOUD_CLI_BIN` overrides (CI, cargo layouts).
    fn cli_bin() -> Option<PathBuf> {
        let path = std::env::var_os("ECOCLOUD_CLI_BIN")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/hx/bin/ecocloud-cli"));
        path.exists().then_some(path)
    }

    fn scenario_args() -> [&'static str; 10] {
        [
            "run", "--servers", "30", "--vms", "180", "--hours", "6", "--seed", "77",
            "--faults", // profile value appended by caller
        ]
    }

    fn base_cmd(bin: &Path) -> Command {
        let mut c = Command::new(bin);
        let mut args: Vec<&str> = scenario_args().to_vec();
        args.push("light");
        c.args(args);
        c
    }

    fn remove_snapshot_family(ckpt: &Path) {
        for suffix in ["", ".prev", ".tmp"] {
            let _ = std::fs::remove_file(PathBuf::from(format!(
                "{}{suffix}",
                ckpt.display()
            )));
        }
    }

    #[test]
    fn killed_and_resumed_run_matches_straight_run_byte_for_byte() {
        let Some(bin) = cli_bin() else {
            eprintln!(
                "chaos harness skipped: CLI binary not built \
                 (run `bash tools/hx/build.sh cli` or set ECOCLOUD_CLI_BIN)"
            );
            return;
        };
        let dir = std::env::temp_dir().join(format!("ecocloud_chaos_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("chaos.ckpt");

        // The golden surface: stdout of an uninterrupted run. All
        // checkpoint progress goes to stderr, so any checkpointed /
        // killed / resumed execution of the same spec must reproduce
        // these bytes exactly.
        let straight = base_cmd(&bin)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .output()
            .expect("straight run spawns");
        assert!(straight.status.success(), "straight run failed");
        assert!(!straight.stdout.is_empty(), "straight run printed nothing");

        let mut rng = KillRng(0xC0FFEE);
        let mut kills = 0u32;
        let mut completions = 0u32;
        let mut attempts = 0u32;
        let mut final_stdout: Option<Vec<u8>> = None;
        // Keep killing until ten SIGKILLs landed mid-run and at least
        // one post-kill execution ran to completion. On a machine fast
        // enough to finish before a kill lands, the snapshot family is
        // reset and the hunt continues from scratch — every completed
        // execution must still match the golden stdout.
        while (kills < 10 || final_stdout.is_none()) && attempts < 300 {
            attempts += 1;
            let mut cmd = base_cmd(&bin);
            cmd.arg("--checkpoint")
                .arg(&ckpt)
                .args(["--checkpoint-every", "0.25"]);
            let prev = PathBuf::from(format!("{}.prev", ckpt.display()));
            if ckpt.exists() || prev.exists() {
                cmd.arg("--resume").arg(&ckpt);
            }
            let mut child = cmd
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("chaos child spawns");
            let delay_ms = 3 + rng.next() % 120;
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    let out = child.wait_with_output().expect("collect output");
                    assert!(status.success(), "chaos child exited with {status}");
                    assert_eq!(
                        out.stdout, straight.stdout,
                        "completed execution diverged from the straight run \
                         (after {kills} kills, attempt {attempts})"
                    );
                    completions += 1;
                    if kills >= 10 {
                        final_stdout = Some(out.stdout);
                    } else {
                        // Too early — rewind the crash site and keep
                        // killing.
                        remove_snapshot_family(&ckpt);
                    }
                }
                None => {
                    child.kill().expect("SIGKILL");
                    let _ = child.wait();
                    kills += 1;
                }
            }
        }
        assert!(
            kills >= 10,
            "chaos loop landed only {kills} kills in {attempts} attempts"
        );
        let last = final_stdout.expect("no execution completed after the kills");
        assert_eq!(
            last, straight.stdout,
            "final resumed run diverged from the straight run"
        );
        eprintln!(
            "chaos harness: {kills} kills, {completions} completions, {attempts} attempts"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_missing_snapshot_exits_one_naming_the_file() {
        let Some(bin) = cli_bin() else {
            eprintln!("chaos harness skipped: CLI binary not built");
            return;
        };
        let missing = std::env::temp_dir().join("ecocloud_definitely_missing.ckpt");
        let _ = std::fs::remove_file(&missing);
        let out = base_cmd(&bin)
            .arg("--resume")
            .arg(&missing)
            .output()
            .expect("spawns");
        assert_eq!(out.status.code(), Some(1), "must exit 1, not panic");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("ecocloud_definitely_missing.ckpt"),
            "stderr must name the snapshot: {stderr}"
        );
    }

    #[test]
    fn resume_from_truncated_snapshot_exits_one_with_reason() {
        let Some(bin) = cli_bin() else {
            eprintln!("chaos harness skipped: CLI binary not built");
            return;
        };
        let dir = std::env::temp_dir().join(format!("ecocloud_trunc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ckpt = dir.join("t.ckpt");
        // Write a real snapshot, then truncate it with no .prev to
        // fall back to: the CLI must exit 1 and explain.
        let status = base_cmd(&bin)
            .arg("--checkpoint")
            .arg(&ckpt)
            .args(["--checkpoint-every", "1"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("checkpointed run");
        assert!(status.success());
        let bytes = std::fs::read(&ckpt).expect("snapshot exists");
        std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).expect("truncate");
        let _ = std::fs::remove_file(PathBuf::from(format!("{}.prev", ckpt.display())));
        let out = base_cmd(&bin)
            .arg("--resume")
            .arg(&ckpt)
            .output()
            .expect("spawns");
        assert_eq!(out.status.code(), Some(1), "must exit 1, not panic");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("t.ckpt") && stderr.contains("truncated"),
            "stderr must name the file and the reason: {stderr}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
