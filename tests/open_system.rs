//! Open-system (churn) integration tests: the Note-1 acceptance
//! measurement on the full §III scenario, VM conservation under chaos
//! faults, and determinism of churn sweeps across seeds and worker
//! counts.

use ecocloud::dcsim::SimResult;
use ecocloud::prelude::*;
use ecocloud::scenarios::{ChurnKind, DEFAULT_CHURN_SHARE};
use ecocloud::sweep::{run_grid, ArtifactCache, PolicySpec, RunSpec, ScenarioSpec};
use proptest::prelude::*;

/// Busiest migration hour of a run (low + high), the Note-1 metric.
fn busiest_hour_migrations(res: &SimResult) -> u64 {
    let hours = res
        .stats
        .low_migrations
        .per_hour(0)
        .len()
        .max(res.stats.high_migrations.per_hour(0).len());
    (0..hours)
        .map(|h| {
            res.stats.low_migrations.count_in_hour(h) + res.stats.high_migrations.count_in_hour(h)
        })
        .max()
        .unwrap_or(0)
}

/// The population conservation law every open-system run must satisfy
/// (the engine also debug-asserts this in `finish`; asserting it here
/// keeps the check alive in release test builds too).
fn assert_population_conserved(res: &SimResult) {
    let sum = &res.summary;
    assert_eq!(
        sum.vms_arrived,
        sum.vms_departed + sum.vms_lost + res.final_alive_vms as u64,
        "population conservation violated"
    );
    assert!(
        sum.vms_preempted <= sum.vms_departed,
        "preemptions exceed departures"
    );
}

/// The Note-1 acceptance measurement (EXPERIMENTS.md): under the
/// calibrated open-system workload the busiest migration hour of the
/// full §III scenario drops from the closed-system ≈630/h to at most
/// 2× the paper's <200/h bound. Fixed seed, so the measured count is
/// exact and stable.
#[test]
fn paper_open_system_meets_note1_migration_bound() {
    let s = Scenario::paper_48h_open(42, ChurnKind::Steady, DEFAULT_CHURN_SHARE);
    let res = s.run(EcoCloudPolicy::paper(42));
    assert_population_conserved(&res);
    assert_eq!(res.summary.dropped_vms, 0, "paper fleet dropped arrivals");

    let busiest = busiest_hour_migrations(&res);
    assert!(
        busiest <= 400,
        "busiest migration hour {busiest} exceeds the Note-1 bound of 400/h"
    );
    // The mechanism, not just the number: ramp-hour growth now arrives
    // as placements, so high migrations fall well below the
    // closed-system count (≈9,300 for this seed) …
    assert!(
        res.summary.total_high_migrations < 6_000,
        "high migrations {} did not drop below the closed-system level",
        res.summary.total_high_migrations
    );
    // … while the diurnal shape survives: Figs. 9–11 still show real
    // consolidation work and small, mostly-short violations.
    assert!(res.summary.total_low_migrations > 0);
    assert!(res.summary.energy_kwh > 0.0);
    assert!(
        res.summary.max_overdemand_pct < 1.0,
        "worst over-demand {} % of VM-time left the paper regime",
        res.summary.max_overdemand_pct
    );
}

/// Chaos faults (crashes, wake failures, migration failures) on top of
/// an open-system workload with spot preemption: the conservation law
/// must hold with every term active (lost > 0 from crashes, departures
/// from lifetimes and preemptions).
#[test]
fn open_system_conserves_population_under_chaos_faults() {
    for seed in [3u64, 11] {
        let mut s = Scenario::open_system(Fleet::thirds(12), 150, 8, seed, ChurnKind::Spot, 0.6);
        s.config.faults = FaultConfig::chaos(seed);
        s.config.record_server_utilization = false;
        let res = s.run(EcoCloudPolicy::paper(seed));
        assert_population_conserved(&res);
        assert!(res.summary.vms_arrived > 0);
        assert!(res.summary.vms_departed > 0);
        assert!(
            res.summary.server_crashes > 0,
            "chaos schedule injected no crashes (seed {seed})"
        );
    }
}

/// One churn spec per (kind, seed) through the sweep layer: the same
/// grid on 1 worker and on 4 workers must produce byte-identical
/// artifacts in the same order (the seed lives in the spec, not the
/// worker).
#[test]
fn churn_sweep_is_thread_count_invariant() {
    let mut specs = Vec::new();
    for kind in [ChurnKind::Steady, ChurnKind::Flash] {
        for seed in [1u64, 2] {
            specs.push(RunSpec::new(
                ScenarioSpec::Custom {
                    servers: 10,
                    cores: None,
                    vms: 80,
                    hours: 4,
                    migrations: true,
                    server_utilization: false,
                    churn: Some((kind, 60)),
                },
                PolicySpec::EcoCloud,
                seed,
            ));
        }
    }
    let serial = run_grid(&specs, 1, &ArtifactCache::disabled()).expect("serial sweep");
    let threaded = run_grid(&specs, 4, &ArtifactCache::disabled()).expect("threaded sweep");
    assert_eq!(serial.artifacts.len(), threaded.artifacts.len());
    for (a, b) in serial.artifacts.iter().zip(&threaded.artifacts) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.key, b.key);
        assert_eq!(a.summary.energy_kwh, b.summary.energy_kwh);
        assert_eq!(a.summary.vms_arrived, b.summary.vms_arrived);
        assert_eq!(a.summary.vms_departed, b.summary.vms_departed);
        assert_eq!(a.summary.total_low_migrations, b.summary.total_low_migrations);
        assert_eq!(a.summary.total_high_migrations, b.summary.total_high_migrations);
        assert_eq!(a.hourly, b.hourly);
    }
    // All four specs are distinct cache keys.
    let mut keys: Vec<u64> = serial.artifacts.iter().map(|a| a.key).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), specs.len());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4, // each case is two full simulations
        ..ProptestConfig::default()
    })]

    /// Seed stability: re-running the identical open-system spec gives
    /// a bit-identical artifact, and a different seed gives a
    /// different trajectory (no cross-run state leaks through the
    /// churn machinery).
    #[test]
    fn open_system_runs_are_seed_stable(
        seed in 1u64..500,
        share in 0u8..=100,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            ChurnKind::Steady,
            ChurnKind::Flash,
            ChurnKind::Batch,
            ChurnKind::Spot,
        ][kind_idx];
        let spec = RunSpec::new(
            ScenarioSpec::Custom {
                servers: 8,
                cores: None,
                vms: 60,
                hours: 3,
                migrations: true,
                server_utilization: false,
                churn: Some((kind, share)),
            },
            PolicySpec::EcoCloud,
            seed,
        );
        let a = spec.execute().expect("run");
        let b = spec.execute().expect("rerun");
        prop_assert_eq!(a.summary.energy_kwh, b.summary.energy_kwh);
        prop_assert_eq!(a.summary.vms_arrived, b.summary.vms_arrived);
        prop_assert_eq!(a.summary.vms_departed, b.summary.vms_departed);
        prop_assert_eq!(&a.hourly, &b.hourly);
    }
}
