//! End-to-end integration tests: miniature versions of the paper's
//! experiment pipelines, with fixed seeds and asserted qualitative
//! shapes.

use ecocloud::analytic::{FluidConfig, FluidModel, ShareModel};
use ecocloud::prelude::*;
use ecocloud::traces::arrivals::{ArrivalProcess, RateEstimate};

/// A 30-server / 450-VM / 12-hour scenario — small enough for CI,
/// large enough to show consolidation and the diurnal response.
fn mini_48h(seed: u64) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 450,
        duration_secs: 12 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 12.0 * 3600.0;
    Scenario {
        fleet: Fleet::thirds(30),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

#[test]
fn ecocloud_consolidates_and_saves_energy() {
    let scenario = mini_48h(1);
    let res = scenario.run(EcoCloudPolicy::paper(1));
    assert_eq!(res.summary.dropped_vms, 0);
    assert!(
        res.final_powered < scenario.fleet.len(),
        "no hibernation at all"
    );
    // Energy must beat the idle floor of an always-on fleet.
    let always_on_kwh: f64 = scenario
        .fleet
        .specs
        .iter()
        .map(|s| s.power.idle_w)
        .sum::<f64>()
        * scenario.config.duration_secs
        / 3.6e6;
    assert!(
        res.summary.energy_kwh < always_on_kwh,
        "ecoCloud ({:.1} kWh) worse than an always-on fleet ({always_on_kwh:.1} kWh)",
        res.summary.energy_kwh
    );
}

#[test]
fn active_servers_track_overall_load() {
    let res = mini_48h(2).run(EcoCloudPolicy::paper(2));
    // Fig. 7's claim: the number of active servers is nearly
    // proportional to the overall load. Check the correlation over the
    // sampled series.
    let load = res.stats.overall_load.values();
    let active = res.stats.active_servers.values();
    let n = load.len() as f64;
    let (ml, ma) = (load.iter().sum::<f64>() / n, active.iter().sum::<f64>() / n);
    let cov: f64 = load
        .iter()
        .zip(active)
        .map(|(l, a)| (l - ml) * (a - ma))
        .sum::<f64>();
    let vl: f64 = load.iter().map(|l| (l - ml).powi(2)).sum::<f64>();
    let va: f64 = active.iter().map(|a| (a - ma).powi(2)).sum::<f64>();
    let corr = cov / (vl.sqrt() * va.sqrt());
    assert!(
        corr > 0.8,
        "active servers decorrelated from load (r = {corr:.2})"
    );
}

#[test]
fn overload_is_rare_and_short() {
    let mut res = mini_48h(3).run(EcoCloudPolicy::paper(3));
    // The shape of the paper's Fig. 11 / §III claims, with slack for
    // the synthetic traces: over-demand stays well under 1 % of
    // VM-time and most violations clear quickly.
    assert!(
        res.summary.max_overdemand_pct < 1.0,
        "over-demand {} %",
        res.summary.max_overdemand_pct
    );
    if res.summary.n_violations > 20 {
        let short = res.stats.violations_shorter_than(60.0);
        assert!(short > 0.8, "only {short} of violations under a minute");
        assert!(res.summary.mean_granted_during_violation > 0.85);
    }
}

#[test]
fn ecocloud_migrates_an_order_less_than_best_fit() {
    let scenario = mini_48h(4);
    let eco = scenario.run(EcoCloudPolicy::paper(4));
    let bfd = scenario.run(BestFitPolicy::paper());
    let eco_migs = eco.summary.total_low_migrations + eco.summary.total_high_migrations;
    let bfd_migs = bfd.summary.total_low_migrations + bfd.summary.total_high_migrations;
    assert!(
        (eco_migs as f64) < 0.5 * bfd_migs as f64,
        "ecoCloud {eco_migs} migrations vs deterministic best-fit {bfd_migs}"
    );
    // And consolidation is comparable (within 35 % of BFD's server
    // count in either direction).
    let ratio = eco.summary.mean_active_servers / bfd.summary.mean_active_servers;
    assert!(
        (0.65..=1.35).contains(&ratio),
        "consolidation ratio {ratio:.2} vs best-fit"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = mini_48h(5).run(EcoCloudPolicy::paper(5));
    let b = mini_48h(5).run(EcoCloudPolicy::paper(5));
    assert_eq!(a.summary.energy_kwh, b.summary.energy_kwh);
    assert_eq!(
        a.summary.total_low_migrations,
        b.summary.total_low_migrations
    );
    assert_eq!(
        a.stats.active_servers.values(),
        b.stats.active_servers.values()
    );
    assert_eq!(a.final_powered, b.final_powered);
}

#[test]
fn assignment_only_consolidates_through_churn() {
    // Miniature Fig. 12: spread start, migrations inhibited, churn
    // drains the under-used servers.
    let seed = 6;
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 1000,
        duration_secs: 10 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let process = ArrivalProcess {
        base_rate_per_sec: 300.0 / (3600.0 * 1.5),
        envelope: DiurnalEnvelope::flat(),
        mean_lifetime_secs: 1.5 * 3600.0,
    };
    let mut config = SimConfig::paper_fig12(seed);
    config.duration_secs = 10.0 * 3600.0;
    let workload = Workload::churn(traces, 300, &process, config.duration_secs, seed);
    let scenario = Scenario {
        fleet: Fleet::uniform(25, 6),
        workload,
        config,
    };
    let res = scenario.run(EcoCloudPolicy::paper(seed));
    assert_eq!(
        res.summary.total_low_migrations, 0,
        "migrations were inhibited"
    );
    assert_eq!(res.summary.total_high_migrations, 0);
    let start = res.stats.active_servers.values()[0];
    let min = res.stats.active_servers.min();
    assert_eq!(start, 25.0, "spread start must power everything");
    assert!(
        min < 0.75 * start,
        "assignment-only churn failed to consolidate ({min} of {start})"
    );
}

#[test]
fn fluid_model_tracks_simulation_scale() {
    // Sim and ODE on the same miniature assignment-only system: final
    // active counts within a factor of two (the paper's gap is ~5 %;
    // the miniature is noisier).
    let seed = 7;
    let n_servers = 25;
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 800,
        duration_secs: 8 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let process = ArrivalProcess {
        base_rate_per_sec: 300.0 / (2.0 * 3600.0),
        envelope: DiurnalEnvelope::flat(),
        mean_lifetime_secs: 2.0 * 3600.0,
    };
    let mut config = SimConfig::paper_fig12(seed);
    config.duration_secs = 8.0 * 3600.0;
    let duration = config.duration_secs;
    let workload = Workload::churn(traces, 300, &process, duration, seed);
    let scenario = Scenario {
        fleet: Fleet::uniform(n_servers, 6),
        workload,
        config,
    };

    // ODE fed from the same workload.
    let events = scenario.workload.arrival_departure_events();
    let est = RateEstimate::from_events(&events, 300, duration, 1800.0);
    let w_bar = scenario.workload.mean_vm_load_frac();
    let mut u0 = vec![0.0f64; n_servers];
    for (i, s) in scenario
        .workload
        .spawns
        .iter()
        .enumerate()
        .filter(|(_, s)| s.arrive_secs == 0.0)
    {
        u0[i % n_servers] += scenario.workload.traces.vms[s.trace_idx].demand_frac_at(0.0, 300);
    }
    let envelope = scenario.workload.traces.config.envelope.clone();
    let est2 = est.clone();
    let fm = FluidModel::new(
        FluidConfig::paper(ShareModel::Simplified, w_bar),
        move |t| est.lambda_at(t),
        move |t| est2.mu_at(t),
    )
    .with_demand_envelope(move |t| envelope.at(t));
    let sol = fm.solve(&u0, duration);

    let sim = scenario.run(EcoCloudPolicy::paper(seed));
    let sim_final = *sim.stats.active_servers.values().last().expect("samples");
    let ode_final = sol.final_active() as f64;
    assert!(
        ode_final <= 2.0 * sim_final && sim_final <= 2.0 * ode_final.max(1.0),
        "sim {sim_final} vs ODE {ode_final} diverge beyond 2x"
    );
}

#[test]
fn ram_constraint_caps_memory_commitment() {
    use ecocloud::core::{EcoCloudConfig, EcoCloudPolicy};
    let seed = 9;
    let build = |ram_aware: bool| {
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 400,
            duration_secs: 6 * 3600,
            ..TraceConfig::paper_48h(seed)
        });
        let mut workload = Workload::all_vms_from_start(traces);
        workload.assign_ram_demands(1024.0, 0.8, 8192.0, seed);
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 6.0 * 3600.0;
        config.record_server_utilization = false;
        let scenario = Scenario {
            fleet: Fleet::thirds(60),
            workload,
            config,
        };
        let mut cfg = EcoCloudConfig::paper(seed);
        cfg.ram_aware = ram_aware;
        scenario.run(EcoCloudPolicy::new(cfg))
    };
    let aware = build(true);
    let blind = build(false);
    assert!(
        aware.summary.max_ram_utilization <= 0.9 + 1e-9,
        "RAM-aware run overcommitted: {}",
        aware.summary.max_ram_utilization
    );
    assert!(
        blind.summary.max_ram_utilization > 1.0,
        "RAM-heavy workload failed to overcommit the blind run ({})",
        blind.summary.max_ram_utilization
    );
    // Memory feasibility costs servers.
    assert!(aware.summary.mean_active_servers > blind.summary.mean_active_servers);
}

#[test]
fn rejects_when_whole_fleet_is_saturated() {
    // A fleet far too small for the workload: drops must be reported,
    // not silently discarded, and nothing may crash.
    let seed = 8;
    let traces = TraceSet::generate(TraceConfig {
        n_vms: 2000,
        duration_secs: 2 * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 2.0 * 3600.0;
    let scenario = Scenario {
        fleet: Fleet::uniform(3, 4),
        workload: Workload::all_vms_from_start(traces),
        config,
    };
    let res = scenario.run(EcoCloudPolicy::paper(seed));
    assert!(
        res.summary.dropped_vms > 0,
        "saturation must surface as dropped VMs"
    );
    assert_eq!(res.final_powered, 3, "everything available must be on");
}

#[test]
fn calendar_queue_matches_reference_heap_engine() {
    // The bucketed calendar queue promises pop-for-pop equivalence
    // with the reference BinaryHeap (same (time, seq) order). The
    // queue-level proptests check that directly; this test checks it
    // end to end: a fixed-seed 800-server run must produce
    // bit-identical results under both queues.
    let build = |reference: bool| {
        let seed = 42;
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 1600,
            duration_secs: 3 * 3600,
            ..TraceConfig::paper_48h(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 3.0 * 3600.0;
        config.metrics_interval_secs = 300.0;
        config.reference_event_queue = reference;
        Scenario {
            fleet: Fleet::thirds(800),
            workload: Workload::all_vms_from_start(traces),
            config,
        }
    };
    let cal = build(false).run(EcoCloudPolicy::paper(42));
    let heap = build(true).run(EcoCloudPolicy::paper(42));
    // Guard against a vacuous pass: the run must have done real work.
    assert!(cal.summary.energy_kwh > 1.0, "run produced no energy");
    assert!(
        cal.stats.active_servers.values().len() > 10,
        "run produced no samples"
    );
    assert_eq!(
        format!("{:?}", cal.summary),
        format!("{:?}", heap.summary),
        "summaries diverged between calendar and reference heap"
    );
    assert_eq!(cal.final_powered, heap.final_powered);
    assert_eq!(
        cal.stats.active_servers.values(),
        heap.stats.active_servers.values()
    );
    assert_eq!(cal.stats.overall_load.values(), heap.stats.overall_load.values());
    assert_eq!(cal.stats.power_w.values(), heap.stats.power_w.values());
    assert_eq!(
        format!("{:?}", cal.stats.low_migrations),
        format!("{:?}", heap.stats.low_migrations),
    );
    assert_eq!(
        format!("{:?}", cal.stats.high_migrations),
        format!("{:?}", heap.stats.high_migrations),
    );
}
