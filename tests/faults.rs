//! Chaos tests: random fault schedules (server crashes, wake
//! failures, migration failures) through the full simulation
//! pipeline. Whatever the schedule throws at the engine, the cluster
//! invariants must hold at every step, every displaced VM must be
//! accounted for, and no VM may ever land on a server that is not
//! fully active.

use ecocloud::dcsim::{ServerId, SimEvent, SimResult};
use ecocloud::prelude::*;
use proptest::prelude::*;

/// Replayed power state of one server, tracked purely from the event
/// log — independent of the engine's own bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplayState {
    Hibernated,
    Waking,
    Active,
    Failed,
}

/// Replays the event log and asserts the lifecycle rules the fault
/// subsystem must never break.
fn replay_log(n_servers: usize, res: &SimResult) {
    let mut state = vec![ReplayState::Hibernated; n_servers];
    let at = |sid: ServerId| sid.index();
    for e in res.events.events() {
        match *e {
            SimEvent::ServerWaking { server, .. } => {
                assert_eq!(
                    state[at(server)],
                    ReplayState::Hibernated,
                    "wake from a non-hibernated state"
                );
                state[at(server)] = ReplayState::Waking;
            }
            SimEvent::ServerActive { server, .. } => {
                assert_eq!(
                    state[at(server)],
                    ReplayState::Waking,
                    "activation without a wake"
                );
                state[at(server)] = ReplayState::Active;
            }
            SimEvent::ServerHibernated { server, .. } => {
                assert_ne!(
                    state[at(server)],
                    ReplayState::Failed,
                    "failed server hibernated without repair"
                );
                state[at(server)] = ReplayState::Hibernated;
            }
            SimEvent::ServerFailed { server, .. } => {
                assert_ne!(
                    state[at(server)],
                    ReplayState::Hibernated,
                    "crash of a dark server"
                );
                assert_ne!(state[at(server)], ReplayState::Failed, "double crash");
                state[at(server)] = ReplayState::Failed;
            }
            SimEvent::ServerRepaired { server, .. } => {
                assert_eq!(state[at(server)], ReplayState::Failed, "repair without crash");
                state[at(server)] = ReplayState::Hibernated;
            }
            SimEvent::WakeFailed { server, .. } => {
                assert_eq!(
                    state[at(server)],
                    ReplayState::Waking,
                    "wake failure on a server that was not waking"
                );
            }
            // The core lifecycle guarantee: a migration only ever
            // lands on a fully active destination.
            SimEvent::MigrationCompleted { to, .. } => {
                assert_eq!(
                    state[at(to)],
                    ReplayState::Active,
                    "migration completed onto a non-active destination"
                );
            }
            // Placements (new or post-fault) may target active or
            // still-waking servers, never dark or failed ones.
            SimEvent::VmPlaced { server, .. } | SimEvent::VmReplaced { server, .. } => {
                assert!(
                    matches!(state[at(server)], ReplayState::Active | ReplayState::Waking),
                    "VM attached to a server in {:?}",
                    state[at(server)]
                );
            }
            _ => {}
        }
    }
}

/// Builds a fault-injected simulation from fuzzed dimensions.
fn build_sim(
    n_servers: usize,
    n_vms: usize,
    seed: u64,
    faults: FaultConfig,
) -> (usize, Simulation<EcoCloudPolicy>) {
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: 2 * 3600,
        ..TraceConfig::small(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = 2.0 * 3600.0;
    config.record_server_utilization = false;
    config.record_events = true;
    config.faults = faults;
    let workload = Workload::all_vms_from_start(traces);
    let spawned = workload.spawns.len();
    let sim = Simulation::new(
        Fleet::thirds(n_servers),
        workload,
        config,
        EcoCloudPolicy::paper(seed),
    );
    (spawned, sim)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 50, // each case is a full fault-injected simulation
        ..ProptestConfig::default()
    })]

    /// Random fault schedules never corrupt the cluster: the internal
    /// consistency audit passes at every event, reservations never
    /// leak, every spawned VM ends up alive, departed, dropped or
    /// lost, and the replayed log obeys the lifecycle rules.
    #[test]
    fn prop_random_fault_schedules_preserve_invariants(
        n_servers in 4usize..15,
        n_vms in 8usize..60,
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        mtbf_mins in 5u64..120,
        repair_mins in 1u64..30,
        wake_p in 0.0f64..0.5,
        mig_p in 0.0f64..0.3,
    ) {
        let faults = FaultConfig {
            crash_mtbf_secs: (mtbf_mins * 60) as f64,
            crash_repair_secs: (repair_mins * 60) as f64,
            wake_failure_prob: wake_p,
            migration_failure_prob: mig_p,
            seed: fault_seed,
            ..FaultConfig::none()
        };
        faults.validate().expect("generated fault config is valid");
        let (spawned, mut sim) = build_sim(n_servers, n_vms, seed, faults);
        while sim.step().is_some() {
            sim.cluster().check_invariants();
        }
        sim.cluster().check_invariants();
        let res = sim.finish();

        // VM conservation under faults: alive + departed + dropped +
        // lost == spawned (this workload has no natural departures,
        // but re-placement after a crash can drop VMs as "lost").
        let departed = res
            .events
            .count_matching(|e| matches!(e, SimEvent::VmDeparted { .. })) as u64;
        prop_assert_eq!(
            res.final_alive_vms as u64 + departed + res.summary.dropped_vms
                + res.summary.vms_lost,
            spawned as u64,
            "VM conservation violated"
        );
        // Migration conservation: every start completed, aborted, or
        // was still in flight at the end.
        prop_assert_eq!(
            res.summary.migrations_started,
            res.summary.migrations_completed
                + res.summary.migrations_aborted
                + res.final_inflight_migrations as u64
        );
        // Fault counters agree with the log.
        let count = |pred: fn(&SimEvent) -> bool| res.events.count_matching(pred) as u64;
        prop_assert_eq!(
            count(|e| matches!(e, SimEvent::ServerFailed { .. })),
            res.summary.server_crashes
        );
        prop_assert_eq!(
            count(|e| matches!(e, SimEvent::ServerRepaired { .. })),
            res.summary.server_repairs
        );
        prop_assert_eq!(
            count(|e| matches!(e, SimEvent::WakeFailed { .. })),
            res.summary.wake_failures
        );
        prop_assert_eq!(
            count(|e| matches!(e, SimEvent::VmReplaced { .. })),
            res.summary.vms_replaced
        );
        prop_assert_eq!(
            count(|e| matches!(e, SimEvent::VmLost { .. })),
            res.summary.vms_lost
        );
        prop_assert_eq!(
            res.summary.vms_displaced,
            res.summary.vms_replaced + res.summary.vms_lost,
            "displaced VMs neither re-placed nor lost"
        );
        // Repairs never outnumber crashes.
        prop_assert!(res.summary.server_repairs <= res.summary.server_crashes);
        replay_log(n_servers, &res);
    }

    /// The fault schedule is part of the deterministic state: same
    /// seeds, same trajectory, byte for byte.
    #[test]
    fn prop_same_fault_seed_same_outcome(
        n_servers in 4usize..12,
        n_vms in 8usize..40,
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
    ) {
        let run = || {
            let (_, sim) = build_sim(
                n_servers,
                n_vms,
                seed,
                FaultConfig::moderate(fault_seed),
            );
            sim.run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.summary.energy_kwh, b.summary.energy_kwh);
        prop_assert_eq!(a.summary.server_crashes, b.summary.server_crashes);
        prop_assert_eq!(a.summary.wake_failures, b.summary.wake_failures);
        prop_assert_eq!(a.summary.migration_failures, b.summary.migration_failures);
        prop_assert_eq!(a.summary.vms_lost, b.summary.vms_lost);
        prop_assert_eq!(a.final_powered, b.final_powered);
        prop_assert_eq!(a.events.len(), b.events.len());
    }
}

/// A disabled fault schedule draws nothing from any RNG: the run is
/// byte-identical to one with no fault subsystem at all, and every
/// fault counter stays zero.
#[test]
fn no_fault_run_reports_zero_fault_counters() {
    let (_, sim) = build_sim(10, 40, 7, FaultConfig::none());
    let res = sim.run();
    assert_eq!(res.summary.server_crashes, 0);
    assert_eq!(res.summary.server_repairs, 0);
    assert_eq!(res.summary.wake_failures, 0);
    assert_eq!(res.summary.migration_failures, 0);
    assert_eq!(res.summary.vms_displaced, 0);
    assert_eq!(res.summary.vms_replaced, 0);
    assert_eq!(res.summary.vms_lost, 0);
    assert_eq!(
        res.events
            .count_matching(|e| matches!(e, SimEvent::ServerFailed { .. })),
        0
    );
}
