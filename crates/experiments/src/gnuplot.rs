//! Gnuplot script emission.
//!
//! Every figure binary writes its data as CSV; this module also emits
//! a ready-to-run `.gp` script next to it, so
//! `gnuplot out/fig07_active_servers.gp` reproduces the figure as a
//! PNG without any manual plotting work.

use crate::out_dir;
use std::fmt::Write as _;

/// One plotted series: CSV column (1-based, gnuplot convention) and
/// legend label.
#[derive(Debug, Clone)]
pub struct SeriesSpec {
    /// 1-based column index in the CSV.
    pub column: usize,
    /// Legend label.
    pub label: String,
    /// Gnuplot style (`lines`, `points`, `boxes`, ...).
    pub style: &'static str,
}

impl SeriesSpec {
    /// A line series.
    pub fn lines(column: usize, label: impl Into<String>) -> Self {
        Self {
            column,
            label: label.into(),
            style: "lines",
        }
    }

    /// A point series (the paper's scatter figures).
    pub fn points(column: usize, label: impl Into<String>) -> Self {
        Self {
            column,
            label: label.into(),
            style: "points",
        }
    }

    /// A box/impulse series (histograms).
    pub fn boxes(column: usize, label: impl Into<String>) -> Self {
        Self {
            column,
            label: label.into(),
            style: "boxes",
        }
    }
}

/// Writes `out/<name>.gp` plotting columns of `out/<csv>` against its
/// first column.
pub fn emit_gnuplot(
    name: &str,
    title: &str,
    xlabel: &str,
    ylabel: &str,
    csv: &str,
    series: &[SeriesSpec],
) {
    let mut gp = String::new();
    let _ = writeln!(gp, "# Regenerates the paper's {title}");
    let _ = writeln!(gp, "# usage: gnuplot {name}.gp  (from the out/ directory)");
    let _ = writeln!(gp, "set datafile separator ','");
    let _ = writeln!(gp, "set terminal pngcairo size 900,540 font 'sans,11'");
    let _ = writeln!(gp, "set output '{name}.png'");
    let _ = writeln!(gp, "set title '{title}'");
    let _ = writeln!(gp, "set xlabel '{xlabel}'");
    let _ = writeln!(gp, "set ylabel '{ylabel}'");
    let _ = writeln!(gp, "set key outside top right");
    let _ = writeln!(gp, "set grid");
    let plots: Vec<String> = series
        .iter()
        .map(|s| {
            format!(
                "'{csv}' using 1:{} skip 1 with {} title '{}'",
                s.column, s.style, s.label
            )
        })
        .collect();
    let _ = writeln!(gp, "plot {}", plots.join(", \\\n     "));
    let path = out_dir().join(format!("{name}.gp"));
    std::fs::write(&path, gp).expect("cannot write gnuplot script");
    eprintln!("[experiments] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_spec_constructors() {
        assert_eq!(SeriesSpec::lines(2, "a").style, "lines");
        assert_eq!(SeriesSpec::points(3, "b").style, "points");
        assert_eq!(SeriesSpec::boxes(4, "c").style, "boxes");
    }

    #[test]
    fn emits_valid_script() {
        std::env::set_var("ECOCLOUD_OUT", std::env::temp_dir().join("eco_gp_test"));
        emit_gnuplot(
            "test_fig",
            "a title",
            "x",
            "y",
            "test_fig.csv",
            &[
                SeriesSpec::lines(2, "series one"),
                SeriesSpec::points(3, "two"),
            ],
        );
        let path = out_dir().join("test_fig.gp");
        let s = std::fs::read_to_string(&path).expect("script written");
        assert!(s.contains("set output 'test_fig.png'"));
        assert!(s.contains("using 1:2"));
        assert!(s.contains("using 1:3"));
        assert!(s.contains("with points title 'two'"));
        let _ = std::fs::remove_dir_all(out_dir());
        std::env::remove_var("ECOCLOUD_OUT");
    }
}
