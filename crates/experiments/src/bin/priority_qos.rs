//! §III overload-response comparison: "the response of the server may
//! be to forcedly decrease the CPU usage of all the VMs or only of
//! those that have low priority". Runs the same scenario under both
//! sharing modes with a 10/70/20 High/Normal/Low mix and reports the
//! granted-CPU statistics per class.

use ecocloud::core::EcoCloudPolicy;
use ecocloud::dcsim::{OverloadSharing, VmPriority};
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::prelude::*;
use ecocloud_experiments::{emit, fast_mode, seed};

fn scenario(seed: u64, sharing: OverloadSharing) -> Scenario {
    let (n_vms, n_servers, hours) = if fast_mode() {
        (400, 30, 6)
    } else {
        (1500, 100, 24)
    };
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut workload = Workload::all_vms_from_start(traces);
    workload.assign_priorities(0.10, 0.70, 0.20, seed);
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false;
    config.overload_sharing = sharing;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload,
        config,
    }
}

fn main() {
    let seed = seed();
    let mut t = Table::new([
        "sharing mode",
        "class",
        "short-changed spans",
        "mean granted %",
        "min granted %",
    ]);
    for (label, sharing) in [
        ("proportional (all VMs)", OverloadSharing::Proportional),
        ("priority-first (low pays)", OverloadSharing::PriorityFirst),
    ] {
        let res = scenario(seed, sharing).run(EcoCloudPolicy::paper(seed));
        for class in VmPriority::ALL {
            let st = &res.stats.granted_by_priority[class.index()];
            t.push_row([
                label.to_string(),
                format!("{class:?}"),
                format!("{}", st.count()),
                if st.count() == 0 {
                    "100 (never short-changed)".to_string()
                } else {
                    fmt_num(100.0 * st.mean(), 2)
                },
                if st.count() == 0 {
                    "100".to_string()
                } else {
                    fmt_num(100.0 * st.min(), 2)
                },
            ]);
        }
    }
    println!("# Overload sharing: proportional vs priority-first (seed {seed})\n");
    println!("{}", t.render());
    println!("Under priority-first sharing the High class should rarely or never be");
    println!("short-changed — the deficit concentrates on the Low class, exactly the");
    println!("alternative server response §III describes.");
    emit("priority_qos.csv", &t.to_csv());
}
