//! Fig. 9 — low and high migrations per hour.

use ecocloud_experiments::figures::{hourly_rows, Which};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, run_48h_ecocloud, seed, spark};

fn main() {
    let res = run_48h_ecocloud(seed());
    println!("# Fig. 9: migrations per hour, 48 h, ecoCloud\n");
    let low = hourly_rows(&res, Which::LowMigrations);
    let high = hourly_rows(&res, Which::HighMigrations);
    spark(
        "low migrations/h",
        &low.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    spark(
        "high migrations/h",
        &high.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    let total_max = low
        .iter()
        .zip(&high)
        .map(|(&(_, l), &(_, h))| l + h)
        .max()
        .unwrap_or(0);
    println!(
        "\ntotals: {} low, {} high; busiest hour {} migrations (paper: always < 200/h)",
        res.summary.total_low_migrations, res.summary.total_high_migrations, total_max
    );
    println!();
    let mut csv = String::from("hour,low,high\n");
    for (&(h, l), &(_, hi)) in low.iter().zip(&high) {
        csv.push_str(&format!("{h},{l},{hi}\n"));
    }
    emit("fig09_migrations.csv", &csv);
    emit_gnuplot(
        "fig09_migrations",
        "Fig. 9: low and high migrations per hour",
        "hour",
        "migrations per hour",
        "fig09_migrations.csv",
        &[
            SeriesSpec::lines(2, "low migrations"),
            SeriesSpec::lines(3, "high migrations"),
        ],
    );
}
