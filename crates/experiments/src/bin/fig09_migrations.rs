//! Fig. 9 — low and high migrations per hour, with cross-seed
//! mean ±95 % CI columns from the replication ensemble.

use ecocloud::sweep::PolicySpec;
use ecocloud_experiments::figures::{hourly_rows, Which};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, ensemble_48h, run_48h_ecocloud, seed, spark};

fn main() {
    let res = run_48h_ecocloud(seed());
    let agg = ensemble_48h(PolicySpec::EcoCloud);
    println!("# Fig. 9: migrations per hour, 48 h, ecoCloud\n");
    let low = hourly_rows(&res, Which::LowMigrations);
    let high = hourly_rows(&res, Which::HighMigrations);
    spark(
        "low migrations/h",
        &low.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    spark(
        "high migrations/h",
        &high.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    let total_max = low
        .iter()
        .zip(&high)
        .map(|(&(_, l), &(_, h))| l + h)
        .max()
        .unwrap_or(0);
    println!(
        "\ntotals: {} low, {} high; busiest hour {} migrations (paper: always < 200/h)",
        res.summary.total_low_migrations, res.summary.total_high_migrations, total_max
    );
    println!();
    let low_band = agg.hourly("low_migrations").expect("ensemble hourly");
    let high_band = agg.hourly("high_migrations").expect("ensemble hourly");
    let mut csv = String::from("hour,low,high,low_mean,low_ci95,high_mean,high_ci95\n");
    for (i, (&(h, l), &(_, hi))) in low.iter().zip(&high).enumerate() {
        let (lm, lc, hm, hc) = match (low_band.get(i), high_band.get(i)) {
            (Some(lb), Some(hb)) => (
                lb.mean(),
                lb.ci95_half_width(),
                hb.mean(),
                hb.ci95_half_width(),
            ),
            _ => (l as f64, 0.0, hi as f64, 0.0),
        };
        csv.push_str(&format!(
            "{h},{l},{hi},{lm:.2},{lc:.2},{hm:.2},{hc:.2}\n"
        ));
    }
    emit("fig09_migrations.csv", &csv);
    emit_gnuplot(
        "fig09_migrations",
        "Fig. 9: low and high migrations per hour",
        "hour",
        "migrations per hour",
        "fig09_migrations.csv",
        &[
            SeriesSpec::lines(2, "low migrations"),
            SeriesSpec::lines(3, "high migrations"),
            SeriesSpec::lines(4, "low (ensemble mean)"),
            SeriesSpec::lines(6, "high (ensemble mean)"),
        ],
    );
}
