//! Fig. 7 — number of active servers during two consecutive days.
//!
//! The displayed curve is the `ECOCLOUD_SEED` run; the extra CSV
//! columns carry the cross-seed mean ±95 % CI over the
//! `ECOCLOUD_REPLICAS` ensemble, so the band separates the diurnal
//! signal from seed-to-seed noise.

use ecocloud::sweep::PolicySpec;
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, ensemble_48h, run_48h_ecocloud, seed, series_with_band_csv, spark};

fn main() {
    let res = run_48h_ecocloud(seed());
    let agg = ensemble_48h(PolicySpec::EcoCloud);
    println!("# Fig. 7: active servers, 48 h, ecoCloud\n");
    let v = res.stats.active_servers.values();
    spark("active servers", v);
    spark("overall load (reference)", res.stats.overall_load.values());
    let band = agg.series("active_servers").expect("ensemble series");
    println!(
        "\nmin {:.0}, max {:.0}, time-weighted mean {:.1}; ensemble mean of means {:.1} over {} seeds",
        res.stats.active_servers.min(),
        res.stats.active_servers.max(),
        res.stats.active_servers.time_weighted_mean(),
        agg.metric("mean_active_servers")
            .expect("ensemble metric")
            .mean(),
        band.replications()
    );
    println!();
    emit(
        "fig07_active_servers.csv",
        &series_with_band_csv("active_servers", &res.stats.active_servers, band),
    );
    emit_gnuplot(
        "fig07_active_servers",
        "Fig. 7: number of active servers",
        "time (hours)",
        "active servers",
        "fig07_active_servers.csv",
        &[
            SeriesSpec::lines(2, "active servers (one seed)"),
            SeriesSpec::lines(3, "ensemble mean"),
        ],
    );
}
