//! Fig. 7 — number of active servers during two consecutive days.

use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, run_48h_ecocloud, seed, spark, xy_csv};

fn main() {
    let res = run_48h_ecocloud(seed());
    println!("# Fig. 7: active servers, 48 h, ecoCloud\n");
    let t = res.stats.active_servers.times_hours();
    let v = res.stats.active_servers.values();
    spark("active servers", v);
    spark("overall load (reference)", res.stats.overall_load.values());
    println!(
        "\nmin {:.0}, max {:.0}, time-weighted mean {:.1}",
        res.stats.active_servers.min(),
        res.stats.active_servers.max(),
        res.stats.active_servers.time_weighted_mean()
    );
    println!();
    emit(
        "fig07_active_servers.csv",
        &xy_csv(
            ("time_h", "active_servers"),
            t.iter().copied().zip(v.iter().copied()),
        ),
    );
    emit_gnuplot(
        "fig07_active_servers",
        "Fig. 7: number of active servers",
        "time (hours)",
        "active servers",
        "fig07_active_servers.csv",
        &[SeriesSpec::lines(2, "active servers")],
    );
}
