//! Fig. 3 — the migration probability functions `f_l` and `f_h` for
//! `α, β ∈ {1, 0.25}` with `T_l = 0.3`, `T_h = 0.8`.

use ecocloud::core::MigrationFunctions;
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, spark};

fn main() {
    println!("# Fig. 3: migration probability functions, Tl = 0.3, Th = 0.8\n");
    let m1 = MigrationFunctions::fig3(1.0, 1.0);
    let m025 = MigrationFunctions::fig3(0.25, 0.25);
    let mut csv = String::from("u,fl_a1,fl_a025,fh_b1,fh_b025\n");
    let mut series = vec![Vec::new(); 4];
    for k in 0..=200 {
        let u = k as f64 / 200.0;
        let vals = [m1.f_low(u), m025.f_low(u), m1.f_high(u), m025.f_high(u)];
        csv.push_str(&format!(
            "{u:.3},{:.6},{:.6},{:.6},{:.6}\n",
            vals[0], vals[1], vals[2], vals[3]
        ));
        for (s, &v) in series.iter_mut().zip(&vals) {
            s.push(v);
        }
    }
    spark("f_l, alpha=1", &series[0]);
    spark("f_l, alpha=0.25", &series[1]);
    spark("f_h, beta=1", &series[2]);
    spark("f_h, beta=0.25", &series[3]);
    println!();
    emit("fig03_migration_functions.csv", &csv);
    emit_gnuplot(
        "fig03_migration_functions",
        "Fig. 3: migration probability functions (Tl = 0.3, Th = 0.8)",
        "CPU utilization",
        "probability",
        "fig03_migration_functions.csv",
        &[
            SeriesSpec::lines(2, "f_l, alpha=1"),
            SeriesSpec::lines(3, "f_l, alpha=0.25"),
            SeriesSpec::lines(4, "f_h, beta=1"),
            SeriesSpec::lines(5, "f_h, beta=0.25"),
        ],
    );
}
