//! Fig. 13 — the same 100-server assignment-only scenario solved with
//! the fluid ODE model (paper Eq. 5 + Eq. 11 / corrected Eqs. 6–9),
//! fed with λ(t) and μ(t) estimated from the *same* workload the
//! Fig. 12 simulation consumed.

use ecocloud::analytic::{FluidConfig, FluidModel, ShareModel};
use ecocloud::traces::arrivals::RateEstimate;
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, emit_quiet, run_fig12, scenario_fig12, seed, spark};

fn main() {
    let seed = seed();
    let scenario = scenario_fig12(seed);
    let duration = scenario.config.duration_secs;

    // λ(t), μ(t) computed from the workload's event list (§IV: "from
    // the traces we computed the values of λ(t) and μ(t)").
    let events = scenario.workload.arrival_departure_events();
    let initial = scenario.workload.initial_count();
    let est = RateEstimate::from_events(&events, initial, duration, 1800.0);
    let w_bar = scenario.workload.mean_vm_load_frac();

    // Initial utilizations: the same spread placement the simulation
    // starts from (round-robin of the t = 0 population).
    let n = scenario.fleet.len();
    let mut u0 = vec![0.0f64; n];
    for (i, s) in scenario
        .workload
        .spawns
        .iter()
        .enumerate()
        .filter(|(_, s)| s.arrive_secs == 0.0)
    {
        let demand = scenario.workload.traces.vms[s.trace_idx].demand_frac_at(0.0, 300);
        u0[i % n] += demand; // reference host == fig12's 6-core server
    }

    println!("# Fig. 13: 100 servers, assignment-only, fluid ODE model\n");
    let mut csv = String::from("time_h,model,active,overall_load,u_p50\n");
    let mut final_counts = Vec::new();
    for (label, model) in [
        ("simplified", ShareModel::Simplified),
        ("exact", ShareModel::Exact),
    ] {
        let est = est.clone();
        let envelope = scenario.workload.traces.config.envelope.clone();
        let fm = FluidModel::new(
            FluidConfig::paper(model, w_bar),
            move |t| est.lambda_at(t),
            {
                let est2 = RateEstimate::from_events(&events, initial, duration, 1800.0);
                move |t| est2.mu_at(t)
            },
        )
        // The traces modulate every VM's demand with the shared
        // diurnal envelope; feed the same signal to the model.
        .with_demand_envelope(move |t| envelope.at(t));
        let sol = fm.solve(&u0, duration);
        spark(
            &format!("active servers ({label})"),
            &sol.active_count
                .iter()
                .map(|&c| c as f64)
                .collect::<Vec<_>>(),
        );
        spark(&format!("overall load ({label})"), &sol.overall_load);
        for (i, &t) in sol.times_secs.iter().enumerate() {
            let mut us: Vec<f32> = sol.u[i].iter().copied().filter(|&x| x > 0.0).collect();
            us.sort_by(|a, b| a.total_cmp(b));
            let p50 = us.get(us.len() / 2).copied().unwrap_or(0.0);
            csv.push_str(&format!(
                "{:.2},{label},{},{:.4},{:.4}\n",
                t / 3600.0,
                sol.active_count[i],
                sol.overall_load[i],
                p50
            ));
        }
        final_counts.push((label, sol.final_active()));
        if label == "exact" {
            // Full matrix for the exact model (the figure's scatter).
            let mut m = String::from("time_h");
            for i in 0..n {
                m.push_str(&format!(",s{i}"));
            }
            m.push('\n');
            for (i, &t) in sol.times_secs.iter().enumerate() {
                m.push_str(&format!("{:.4}", t / 3600.0));
                for &u in &sol.u[i] {
                    m.push_str(&format!(",{u:.4}"));
                }
                m.push('\n');
            }
            emit_quiet("fig13_ode_matrix.csv", &m);
        }
    }

    // Cross-check against the simulation (the paper's 45 vs 43).
    let sim = run_fig12(seed);
    let sim_final = *sim.stats.active_servers.values().last().expect("samples") as usize;
    println!();
    for (label, c) in &final_counts {
        println!("ODE ({label}) final active servers: {c}");
    }
    println!("simulation final active servers : {sim_final}");
    println!("(paper: 43 with the model vs 45 with simulation — a ~2-server gap)");
    println!();
    emit("fig13_ode_assignment_only.csv", &csv);
    emit_gnuplot(
        "fig13_ode_assignment_only",
        "Fig. 13: CPU utilization, 100 servers, assignment-only (fluid model)",
        "time (hours)",
        "active servers / load / median u",
        "fig13_ode_assignment_only.csv",
        &[
            SeriesSpec::lines(3, "active servers"),
            SeriesSpec::lines(4, "overall load"),
            SeriesSpec::lines(5, "median powered u"),
        ],
    );
}
