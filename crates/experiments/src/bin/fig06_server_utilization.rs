//! Fig. 6 — CPU utilization of the 400 servers during two consecutive
//! days under ecoCloud, with the overall load as a reference.
//!
//! The paper plots a per-server scatter; this binary prints a
//! percentile summary (p10/p50/p90/max across powered servers) and
//! writes the full per-server matrix to `out/`.

use ecocloud_experiments::figures::{utilization_matrix_csv, utilization_percentiles};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, emit_quiet, run_48h_ecocloud, seed, spark};

fn main() {
    let res = run_48h_ecocloud(seed());
    println!("# Fig. 6: per-server CPU utilization, 48 h, ecoCloud\n");
    let rows = utilization_percentiles(&res);
    spark(
        "overall load",
        &rows.iter().map(|r| r.5).collect::<Vec<_>>(),
    );
    spark(
        "median powered-server util",
        &rows.iter().map(|r| r.2).collect::<Vec<_>>(),
    );
    spark(
        "p90 powered-server util",
        &rows.iter().map(|r| r.3).collect::<Vec<_>>(),
    );
    println!();
    let mut csv = String::from("time_h,p10,p50,p90,max,overall_load\n");
    for (t, p10, p50, p90, max, load) in &rows {
        csv.push_str(&format!(
            "{t:.2},{p10:.4},{p50:.4},{p90:.4},{max:.4},{load:.4}\n"
        ));
    }
    emit("fig06_server_utilization.csv", &csv);
    emit_gnuplot(
        "fig06_server_utilization",
        "Fig. 6: per-server CPU utilization (percentile bands) and overall load",
        "time (hours)",
        "CPU utilization",
        "fig06_server_utilization.csv",
        &[
            SeriesSpec::lines(2, "p10"),
            SeriesSpec::lines(3, "median"),
            SeriesSpec::lines(4, "p90"),
            SeriesSpec::points(6, "overall load"),
        ],
    );
    emit_quiet(
        "fig06_server_utilization_matrix.csv",
        &utilization_matrix_csv(&res),
    );
    // Shape check mirrored in EXPERIMENTS.md: powered servers run near
    // the threshold while the overall load breathes diurnally.
    let mid = rows.len() / 2;
    println!(
        "median powered-server utilization at mid-run: {:.2} (Ta = 0.9)",
        rows[mid].2
    );
    // The per-server matrix is inherently single-seed (server IDs are
    // not comparable across replications once consolidation paths
    // diverge); the aggregate views of the same run — active servers,
    // power, over-demand — carry cross-seed CI bands in Figs. 7–11.
    println!("note: percentile bands are one seed; see figs 07-11 for ±95% CI across seeds");
}
