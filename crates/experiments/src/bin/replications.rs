//! Statistical replication study: the headline metrics of the
//! consolidation experiment across independent seeds, reported as
//! mean ± Student-t 95 % confidence interval. The paper reports
//! single runs; this binary quantifies how much seed-to-seed variance
//! there is behind each number.
//!
//! Built on the `ecocloud::sweep` replication engine: the seed grid
//! fans out over all cores, every run lands in the content-addressed
//! cache under `out/cache/`, and a re-render is a pure cache read.

use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::sweep::{PolicySpec, ScenarioSpec};
use ecocloud_experiments::{emit, ensemble_of, fast_mode, replicas, seed};

fn main() {
    let base = seed();
    let n = replicas();
    // A reduced scenario (the full 400-server one is what Figs. 7–11
    // replicate); this study goes wider on seeds instead.
    let scenario = if fast_mode() {
        ScenarioSpec::Custom {
            servers: 30,
            cores: None,
            vms: 400,
            hours: 6,
            migrations: true,
            server_utilization: false,
            churn: None,
        }
    } else {
        ScenarioSpec::Custom {
            servers: 100,
            cores: None,
            vms: 1500,
            hours: 24,
            migrations: true,
            server_utilization: false,
            churn: None,
        }
    };
    eprintln!("[replications] {n} independent runs ...");
    let agg = ensemble_of(&scenario, PolicySpec::EcoCloud, base.wrapping_add(1), n);

    // (table label, aggregate metric, decimals, percent scale)
    let metrics: [(&str, &str, usize, f64); 6] = [
        ("mean active servers", "mean_active_servers", 2, 1.0),
        ("energy kWh", "energy_kwh", 2, 1.0),
        ("total migrations", "total_migrations", 2, 1.0),
        ("server switches", "total_switches", 2, 1.0),
        ("worst overdemand %", "max_overdemand_pct", 2, 1.0),
        ("violations < 30 s (%)", "violations_under_30s", 2, 100.0),
    ];

    let mut t = Table::new(["metric", "mean", "95% CI", "min", "max", "n"]);
    for (label, key, digits, scale) in metrics {
        let r = agg.metric(key).unwrap_or_else(|| panic!("metric {key}"));
        t.push_row([
            label.to_string(),
            fmt_num(scale * r.mean(), digits),
            format!("±{}", fmt_num(scale * r.ci95_half_width(), digits)),
            fmt_num(scale * r.min(), digits),
            fmt_num(scale * r.max(), digits),
            format!("{}", r.count()),
        ]);
    }
    println!("# Replication study: {n} seeds (base {base}, Student-t 95% CI)\n");
    println!("{}", t.render());
    emit("replications.csv", &t.to_csv());
}
