//! Statistical replication study: the headline metrics of the 48-hour
//! experiment across independent seeds, reported as mean ± 95 %
//! confidence interval. The paper reports single runs; this binary
//! quantifies how much seed-to-seed variance there is behind each
//! number (replicas fan out over all cores).

use ecocloud::core::EcoCloudPolicy;
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::{StreamingStats, Table};
use ecocloud::parallel::run_seeds;
use ecocloud::prelude::*;
use ecocloud_experiments::{emit, fast_mode, seed};

const REPLICAS: u64 = 10;

fn scenario(seed: u64) -> Scenario {
    let (n_vms, n_servers, hours) = if fast_mode() {
        (400, 30, 6)
    } else {
        (1500, 100, 24)
    };
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

fn ci95(s: &StreamingStats) -> f64 {
    // Normal-approximation half-width; fine for ~10 replicas of
    // well-behaved means.
    1.96 * s.std_dev() / (s.count() as f64).sqrt()
}

fn main() {
    let base = seed();
    eprintln!("[replications] {REPLICAS} independent runs ...");
    let runs: Vec<_> = run_seeds(base.wrapping_add(1), REPLICAS as usize, |s| {
        let mut res = scenario(s).run(EcoCloudPolicy::paper(s));
        let viol30 = res.stats.violations_shorter_than(30.0);
        (res.summary, viol30)
    });

    type Extract = Box<dyn Fn(&(ecocloud::dcsim::stats::SimSummary, f64)) -> f64>;
    let metrics: Vec<(&str, Extract)> = vec![
        ("mean active servers", Box::new(|r| r.0.mean_active_servers)),
        ("energy kWh", Box::new(|r| r.0.energy_kwh)),
        (
            "total migrations",
            Box::new(|r| (r.0.total_low_migrations + r.0.total_high_migrations) as f64),
        ),
        (
            "server switches",
            Box::new(|r| (r.0.total_activations + r.0.total_hibernations) as f64),
        ),
        ("worst overdemand %", Box::new(|r| r.0.max_overdemand_pct)),
        ("violations < 30 s (frac)", Box::new(|r| r.1)),
    ];

    let mut t = Table::new(["metric", "mean", "95% CI", "min", "max"]);
    for (name, f) in &metrics {
        let mut s = StreamingStats::new();
        for r in &runs {
            s.push(f(r));
        }
        t.push_row([
            name.to_string(),
            fmt_num(s.mean(), 2),
            format!("±{}", fmt_num(ci95(&s), 2)),
            fmt_num(s.min(), 2),
            fmt_num(s.max(), 2),
        ]);
    }
    println!("# Replication study: {REPLICAS} seeds (base {base})\n");
    println!("{}", t.render());
    emit("replications.csv", &t.to_csv());
}
