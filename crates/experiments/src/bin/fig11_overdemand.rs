//! Fig. 11 — percentage of time in which the CPU demanded by a VM
//! cannot be completely granted (over-demand), per 30-minute window.

use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, run_48h_ecocloud, seed, spark, xy_csv};

fn main() {
    let mut res = run_48h_ecocloud(seed());
    println!("# Fig. 11: CPU over-demand, 48 h, ecoCloud\n");
    let t = res.stats.overdemand_pct.times_hours();
    let v = res.stats.overdemand_pct.values().to_vec();
    spark("% VM-time over-demand", &v);
    println!(
        "\nworst window: {:.4} % (paper: never above 0.02 %)",
        res.summary.max_overdemand_pct
    );
    println!(
        "violations: {} episodes, {:.1} % shorter than 30 s (paper: > 98 %)",
        res.summary.n_violations,
        100.0 * res.stats.violations_shorter_than(30.0)
    );
    println!(
        "mean granted CPU during violations: {:.2} % (paper: ≥ 98 %)",
        100.0 * res.summary.mean_granted_during_violation
    );
    println!();
    emit(
        "fig11_overdemand.csv",
        &xy_csv(
            ("time_h", "overdemand_pct"),
            t.iter().copied().zip(v.iter().copied()),
        ),
    );
    emit_gnuplot(
        "fig11_overdemand",
        "Fig. 11: fraction of time of CPU over-demand",
        "time (hours)",
        "% of VM-time",
        "fig11_overdemand.csv",
        &[SeriesSpec::lines(2, "over-demand")],
    );
}
