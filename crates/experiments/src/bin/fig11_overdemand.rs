//! Fig. 11 — percentage of time in which the CPU demanded by a VM
//! cannot be completely granted (over-demand), per 30-minute window,
//! with cross-seed mean ±95 % CI columns from the replication
//! ensemble.

use ecocloud::sweep::PolicySpec;
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{
    emit, ensemble_48h, pm, run_48h_ecocloud, seed, series_with_band_csv, spark,
};

fn main() {
    let mut res = run_48h_ecocloud(seed());
    let agg = ensemble_48h(PolicySpec::EcoCloud);
    println!("# Fig. 11: CPU over-demand, 48 h, ecoCloud\n");
    let v = res.stats.overdemand_pct.values().to_vec();
    spark("% VM-time over-demand", &v);
    let worst = agg.metric("max_overdemand_pct").expect("ensemble metric");
    println!(
        "\nworst window: {:.4} % (paper: never above 0.02 %); ensemble worst {} % over {} seeds",
        res.summary.max_overdemand_pct,
        pm(worst, 4),
        worst.count()
    );
    let under30 = agg.metric("violations_under_30s").expect("ensemble metric");
    println!(
        "violations: {} episodes, {:.1} % shorter than 30 s (paper: > 98 %); \
         ensemble {:.1} ±{:.1} %",
        res.summary.n_violations,
        100.0 * res.stats.violations_shorter_than(30.0),
        100.0 * under30.mean(),
        100.0 * under30.ci95_half_width()
    );
    println!(
        "mean granted CPU during violations: {:.2} % (paper: ≥ 98 %)",
        100.0 * res.summary.mean_granted_during_violation
    );
    println!();
    emit(
        "fig11_overdemand.csv",
        &series_with_band_csv(
            "overdemand_pct",
            &res.stats.overdemand_pct,
            agg.series("overdemand_pct").expect("ensemble series"),
        ),
    );
    emit_gnuplot(
        "fig11_overdemand",
        "Fig. 11: fraction of time of CPU over-demand",
        "time (hours)",
        "% of VM-time",
        "fig11_overdemand.csv",
        &[
            SeriesSpec::lines(2, "over-demand (one seed)"),
            SeriesSpec::lines(3, "ensemble mean"),
        ],
    );
}
