//! Fig. 5 — distribution of the deviation between punctual and average
//! CPU utilization of the same VM (percentage points).

use ecocloud::traces::stats::{deviation_histogram, fraction_within_deviation};
use ecocloud::traces::{TraceConfig, TraceSet};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, seed, spark, xy_csv};

fn main() {
    let set = TraceSet::generate(TraceConfig::paper_48h(seed()));
    let h = deviation_histogram(&set, 80);
    println!("# Fig. 5: deviation of punctual from average utilization\n");
    let freqs = h.frequencies();
    spark(
        "frequency vs deviation pts",
        &freqs.iter().map(|&(_, f)| f).collect::<Vec<_>>(),
    );
    let within10 = fraction_within_deviation(&set, 10.0);
    println!(
        "\nwithin ±10 points: {:.1} % of samples (paper: ≈94 %)",
        100.0 * within10
    );
    println!();
    emit(
        "fig05_deviation_dist.csv",
        &xy_csv(("deviation_pts", "freq"), freqs),
    );
    emit_gnuplot(
        "fig05_deviation_dist",
        "Fig. 5: deviation of punctual from average utilization",
        "deviation (percentage points)",
        "frequency",
        "fig05_deviation_dist.csv",
        &[SeriesSpec::boxes(2, "frequency")],
    );
}
