//! Ablation of ecoCloud's design choices (the refinements §II/§IV
//! describe on top of the bare Bernoulli trials):
//!
//! * the 30-minute newcomer grace period,
//! * the anti-ping-pong lowered threshold for high migrations,
//! * waking a server for a high migration,
//! * the invitation retry round,
//! * the low-migration trial backoff.
//!
//! Each variant runs on the same reduced scenario; the table shows
//! what each mechanism buys.

use ecocloud::core::{EcoCloudConfig, EcoCloudPolicy};
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::prelude::*;
use ecocloud_experiments::{emit, fast_mode, seed};
use rayon::prelude::*;

fn ablation_scenario(seed: u64) -> Scenario {
    let (n_vms, n_servers, hours) = if fast_mode() {
        (400, 30, 6)
    } else {
        (1500, 100, 24)
    };
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

/// A named configuration tweak.
type Variant = (
    &'static str,
    Box<dyn Fn(EcoCloudConfig) -> EcoCloudConfig + Sync + Send>,
);

fn main() {
    let seed = seed();
    let variants: Vec<Variant> = vec![
        ("full ecoCloud", Box::new(|c| c)),
        (
            "no grace period",
            Box::new(|mut c: EcoCloudConfig| {
                c.grace_secs = 0.0;
                c
            }),
        ),
        (
            "no anti-ping-pong",
            Box::new(|mut c: EcoCloudConfig| {
                c.high_migration_ta_factor = 1.0;
                c
            }),
        ),
        (
            "no wake on high migration",
            Box::new(|mut c: EcoCloudConfig| {
                c.wake_on_high_migration = false;
                c
            }),
        ),
        (
            "single invitation round",
            Box::new(|mut c: EcoCloudConfig| {
                c.assignment_rounds = 1;
                c
            }),
        ),
        (
            "no low-migration backoff",
            Box::new(|mut c: EcoCloudConfig| {
                c.low_migration_backoff_secs = 0.0;
                c
            }),
        ),
    ];

    let rows: Vec<_> = variants
        .par_iter()
        .map(|(name, tweak)| {
            let scenario = ablation_scenario(seed);
            let cfg = tweak(EcoCloudConfig::paper(seed));
            let mut res = scenario.run(EcoCloudPolicy::new(cfg));
            let viol30 = res.stats.violations_shorter_than(30.0);
            (*name, res.summary, viol30)
        })
        .collect();

    let mut t = Table::new([
        "variant",
        "servers",
        "kWh",
        "migrations",
        "switches",
        "overdemand%",
        "viol<30s%",
        "dropped",
    ]);
    for (name, s, viol30) in &rows {
        t.push_row([
            name.to_string(),
            fmt_num(s.mean_active_servers, 1),
            fmt_num(s.energy_kwh, 1),
            format!("{}", s.total_low_migrations + s.total_high_migrations),
            format!("{}", s.total_activations + s.total_hibernations),
            fmt_num(s.max_overdemand_pct, 3),
            fmt_num(100.0 * viol30, 1),
            format!("{}", s.dropped_vms),
        ]);
    }
    println!("# Design ablation (reduced scenario; seed {seed})\n");
    println!("{}", t.render());
    emit("ablation.csv", &t.to_csv());
}
