//! §V extension — multi-resource assignment (CPU + RAM).
//!
//! The paper sketches two strategies for extending the Bernoulli
//! procedure beyond CPU: (1) one trial per resource, accept when all
//! succeed; (2) one trial on the most critical resource with the
//! others as hard constraints. This experiment places a stream of
//! CPU+RAM VMs on a fleet with both strategies and with the CPU-only
//! baseline, and reports servers used and RAM violations — showing why
//! the single-resource procedure is unsafe once memory matters.

use ecocloud::core::multiresource::{CombineStrategy, MultiResourceAssignment};
use ecocloud::core::AssignmentFunction;
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud_experiments::{emit, seed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_SERVERS: usize = 60;
const N_VMS: usize = 1500;

#[derive(Clone, Copy)]
struct Load {
    cpu: f64,
    ram: f64,
}

/// Sequentially places VMs with the given acceptance probability
/// model; wakes a fresh server when nobody accepts. Returns
/// `(servers_used, ram_violations)` where a violation is a placement
/// that pushes a server's RAM above 100 %.
fn run(vms: &[Load], accept: impl Fn(&Load, &Load) -> f64, seed: u64) -> (usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut servers: Vec<Load> = Vec::new();
    let mut violations = 0;
    for vm in vms {
        let mut placed = false;
        // Two invitation rounds, as in the CPU-only policy.
        for _ in 0..2 {
            let acceptors: Vec<usize> = (0..servers.len())
                .filter(|&s| {
                    let p = accept(&servers[s], vm);
                    p > 0.0 && rng.gen_bool(p.min(1.0))
                })
                .collect();
            if acceptors.is_empty() {
                continue;
            }
            let s = acceptors[rng.gen_range(0..acceptors.len())];
            servers[s].cpu += vm.cpu;
            servers[s].ram += vm.ram;
            if servers[s].ram > 1.0 {
                violations += 1;
            }
            placed = true;
            break;
        }
        if !placed {
            // Wake a fresh server.
            servers.push(*vm);
        }
    }
    (servers.len().min(N_SERVERS.max(servers.len())), violations)
}

fn main() {
    let seed = seed();
    let mut rng = StdRng::seed_from_u64(seed);
    // CPU-light but RAM-heavy mix: mean CPU 2 %, mean RAM 5 % with a
    // heavy tail — the "complementary resource usage" §V motivates.
    let vms: Vec<Load> = (0..N_VMS)
        .map(|_| Load {
            cpu: (0.02 * (-(rng.gen_range(f64::EPSILON..1.0)).ln())).clamp(0.002, 0.6),
            ram: (0.05 * (-(rng.gen_range(f64::EPSILON..1.0)).ln())).clamp(0.005, 0.8),
        })
        .collect();

    let fa_cpu = AssignmentFunction::paper();
    let fa_ram = AssignmentFunction::new(0.9, 3.0);

    let cpu_only = run(
        &vms,
        |s, vm| {
            if s.cpu + vm.cpu > 0.9 {
                0.0
            } else {
                fa_cpu.eval(s.cpu)
            }
        },
        seed,
    );

    let all = MultiResourceAssignment::new(vec![fa_cpu, fa_ram], CombineStrategy::AllTrials);
    let all_trials = run(
        &vms,
        |s, vm| {
            if !all.fits(&[s.cpu, s.ram], &[vm.cpu, vm.ram]) {
                0.0
            } else {
                all.acceptance_probability(&[s.cpu, s.ram])
            }
        },
        seed,
    );

    let crit =
        MultiResourceAssignment::new(vec![fa_cpu, fa_ram], CombineStrategy::CriticalResource);
    let critical = run(
        &vms,
        |s, vm| {
            if !crit.fits(&[s.cpu, s.ram], &[vm.cpu, vm.ram]) {
                0.0
            } else {
                crit.acceptance_probability(&[s.cpu, s.ram])
            }
        },
        seed,
    );

    let total_cpu: f64 = vms.iter().map(|v| v.cpu).sum();
    let total_ram: f64 = vms.iter().map(|v| v.ram).sum();
    println!("# §V extension: CPU+RAM assignment ({N_VMS} VMs)\n");
    println!(
        "workload totals: {} CPU server-equivalents, {} RAM server-equivalents\n",
        fmt_num(total_cpu, 1),
        fmt_num(total_ram, 1)
    );
    let mut t = Table::new(["strategy", "servers used", "RAM violations"]);
    t.push_row([
        "CPU-only (paper baseline)".to_string(),
        format!("{}", cpu_only.0),
        format!("{}", cpu_only.1),
    ]);
    t.push_row([
        "all-trials (product)".to_string(),
        format!("{}", all_trials.0),
        format!("{}", all_trials.1),
    ]);
    t.push_row([
        "critical-resource + constraints".to_string(),
        format!("{}", critical.0),
        format!("{}", critical.1),
    ]);
    println!("{}", t.render());
    println!("RAM is the binding resource here. The CPU-only procedure oversubscribes");
    println!("memory on consolidated servers; both §V variants never do. The all-trials");
    println!("product compounds two near-zero acceptance probabilities on fresh servers");
    println!("and degenerates towards one VM per server — the critical-resource +");
    println!("constraints variant is the practical one, consolidating on RAM (the");
    println!("critical axis) while keeping CPU as a feasibility constraint.");
    emit("ext_multiresource.csv", &t.to_csv());
}
