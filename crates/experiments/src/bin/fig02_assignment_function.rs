//! Fig. 2 — the assignment probability function `f_a(u)` for
//! `p ∈ {2, 3, 5}` with `T_a = 0.9`.

use ecocloud::core::AssignmentFunction;
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, spark};

fn main() {
    println!("# Fig. 2: assignment probability function, Ta = 0.9\n");
    let mut csv = String::from("u,p2,p3,p5\n");
    let fs: Vec<AssignmentFunction> = [2.0, 3.0, 5.0]
        .iter()
        .map(|&p| AssignmentFunction::new(0.9, p))
        .collect();
    let mut series = vec![Vec::new(); 3];
    for k in 0..=200 {
        let u = k as f64 / 200.0;
        let vals: Vec<f64> = fs.iter().map(|f| f.eval(u)).collect();
        csv.push_str(&format!(
            "{u:.3},{:.6},{:.6},{:.6}\n",
            vals[0], vals[1], vals[2]
        ));
        for (s, &v) in series.iter_mut().zip(&vals) {
            s.push(v);
        }
    }
    for (i, p) in [2.0, 3.0, 5.0].iter().enumerate() {
        let f = AssignmentFunction::new(0.9, *p);
        spark(
            &format!("f_a, p={p} (max at u*={:.3})", f.u_star()),
            &series[i],
        );
    }
    println!();
    emit("fig02_assignment_function.csv", &csv);
    emit_gnuplot(
        "fig02_assignment_function",
        "Fig. 2: assignment probability function (Ta = 0.9)",
        "CPU utilization",
        "f_a(u)",
        "fig02_assignment_function.csv",
        &[
            SeriesSpec::lines(2, "p=2"),
            SeriesSpec::lines(3, "p=3"),
            SeriesSpec::lines(4, "p=5"),
        ],
    );
}
