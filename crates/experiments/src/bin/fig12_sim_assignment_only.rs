//! Fig. 12 — CPU utilization of 100 servers under the assignment
//! procedure alone (migrations inhibited), obtained by simulation.
//!
//! The run starts at midnight from a non-consolidated state (1,500 VMs
//! spread over all 100 servers at 10–30 % load); VMs depart with a
//! 2-hour mean lifetime and new ones arrive through the assignment
//! procedure, so low-utilization servers drain and hibernate while
//! others fill towards `T_a`.

use ecocloud_experiments::figures::{utilization_matrix_csv, utilization_percentiles};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, emit_quiet, run_fig12, seed, spark};

fn main() {
    let res = run_fig12(seed());
    println!("# Fig. 12: 100 servers, assignment-only, simulation\n");
    let rows = utilization_percentiles(&res);
    spark(
        "overall load",
        &rows.iter().map(|r| r.5).collect::<Vec<_>>(),
    );
    spark("active servers", res.stats.active_servers.values());
    spark(
        "median powered util",
        &rows.iter().map(|r| r.2).collect::<Vec<_>>(),
    );
    let final_active = *res.stats.active_servers.values().last().expect("samples") as usize;
    println!("\nfinal active servers: {final_active} (paper: 45 of 100; load-dependent)",);
    println!(
        "dropped VMs: {}, violations: {}",
        res.summary.dropped_vms, res.summary.n_violations
    );
    println!();
    let mut csv = String::from("time_h,p10,p50,p90,max,overall_load,active\n");
    for (i, (t, p10, p50, p90, max, load)) in rows.iter().enumerate() {
        let active = res.stats.active_servers.values()[i];
        csv.push_str(&format!(
            "{t:.2},{p10:.4},{p50:.4},{p90:.4},{max:.4},{load:.4},{active}\n"
        ));
    }
    emit("fig12_sim_assignment_only.csv", &csv);
    emit_gnuplot(
        "fig12_sim_assignment_only",
        "Fig. 12: CPU utilization, 100 servers, assignment-only (simulation)",
        "time (hours)",
        "CPU utilization / servers",
        "fig12_sim_assignment_only.csv",
        &[
            SeriesSpec::lines(3, "median powered util"),
            SeriesSpec::lines(4, "p90 powered util"),
            SeriesSpec::points(6, "overall load"),
        ],
    );
    emit_quiet(
        "fig12_sim_assignment_only_matrix.csv",
        &utilization_matrix_csv(&res),
    );
}
