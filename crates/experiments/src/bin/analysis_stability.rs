//! Stability analysis of the assignment procedure (an extension of the
//! paper's §IV): the symmetric spread state is unstable — ecoCloud
//! consolidates — exactly below the mean utilization
//! `T_a (p − 1)/p`. This binary sweeps the symmetric utilization and
//! compares the closed-form growth rate `σ = μ (p − ū/(T_a−ū) − 1)`
//! against the rate measured by perturbing the actual fluid ODE.

use ecocloud::analytic::equilibrium::{
    consolidation_threshold, instability_indicator, measure_growth_rate,
};
use ecocloud::core::{AssignmentFunction, EcoCloudPolicy};
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::prelude::*;
use ecocloud::traces::arrivals::ArrivalProcess;
use ecocloud::traces::generator::VmTrace;
use ecocloud::traces::profile::VmProfile;
use ecocloud_experiments::emit;
use rayon::prelude::*;

/// Runs the *discrete simulator* at a pinned symmetric utilization:
/// constant-demand VMs, churn with a fixed mean population, spread
/// start, migrations inhibited (the fluid model has none). Returns the
/// fraction of servers still powered at the end — ≈1 when the spread
/// state is stable, well below 1 when consolidation breaks it.
fn sim_final_active_fraction(u_bar: f64, seed: u64) -> f64 {
    let n_servers = 20;
    let w_frac = 0.02; // one VM = 2 % of a 6-core server
    let vms_per_server = (u_bar / w_frac).round() as usize;
    let population = n_servers * vms_per_server;
    let hours = 12u64;
    let steps = (hours * 3600 / 300) as usize;
    // Hand-built constant workload: no demand noise, no diurnal — the
    // pure dynamics the analysis describes.
    let traces = ecocloud::traces::TraceSet {
        config: TraceConfig {
            n_vms: population,
            duration_secs: hours * 3600,
            step_secs: 300,
            seed,
            mixture: Default::default(),
            envelope: DiurnalEnvelope::flat(),
        },
        vms: (0..population)
            .map(|_| VmTrace {
                profile: VmProfile::constant(w_frac),
                samples: vec![w_frac as f32; steps],
            })
            .collect(),
    };
    let lifetime = 3600.0;
    let process = ArrivalProcess {
        base_rate_per_sec: population as f64 / lifetime,
        envelope: DiurnalEnvelope::flat(),
        mean_lifetime_secs: lifetime,
    };
    let mut config = SimConfig::paper_fig12(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false;
    let workload = Workload::churn(traces, population, &process, config.duration_secs, seed);
    let scenario = Scenario {
        fleet: Fleet::uniform(n_servers, 6),
        workload,
        config,
    };
    let res = scenario.run(EcoCloudPolicy::paper(seed));
    let final_active = *res.stats.active_servers.values().last().expect("samples");
    final_active / n_servers as f64
}

fn main() {
    println!("# Symmetry-breaking analysis of the assignment procedure\n");
    for p in [2.0, 3.0, 5.0] {
        let fa = AssignmentFunction::new(0.9, p);
        println!(
            "p = {p}: consolidation threshold u < {:.3}",
            consolidation_threshold(&fa)
        );
    }
    println!();

    let fa = AssignmentFunction::paper();
    let mu = 1.0 / 3600.0;
    let n = 12;
    let w = 0.02;
    let u_bars: Vec<f64> = (1..=8).map(|k| 0.1 * k as f64).collect();
    let rows: Vec<_> = u_bars
        .par_iter()
        .map(|&u_bar| {
            let lambda = u_bar * n as f64 * mu / w;
            let measured = measure_growth_rate(fa, lambda, mu, w, n, 2.0 * 3600.0);
            let predicted = mu * instability_indicator(&fa, u_bar);
            (u_bar, predicted, measured)
        })
        .collect();

    let mut t = Table::new([
        "mean util",
        "predicted rate (1/h)",
        "measured rate (1/h)",
        "verdict",
    ]);
    for (u, pred, meas) in &rows {
        t.push_row([
            fmt_num(*u, 2),
            fmt_num(pred * 3600.0, 3),
            fmt_num(meas * 3600.0, 3),
            if *pred > 0.0 {
                "consolidates"
            } else {
                "stays spread"
            }
            .to_string(),
        ]);
    }
    println!("{}", t.render());

    // Cross-check against the *discrete* simulator: churn at a pinned
    // symmetric utilization, migrations off, constant-demand VMs.
    let sim_points = [0.2, 0.4, 0.7, 0.8];
    let sim_rows: Vec<_> = sim_points
        .par_iter()
        .map(|&u| (u, sim_final_active_fraction(u, 42)))
        .collect();
    let mut t2 = Table::new(["mean util", "servers still active after 12 h", "prediction"]);
    for (u, frac) in &sim_rows {
        t2.push_row([
            fmt_num(*u, 2),
            format!("{} %", fmt_num(100.0 * frac, 0)),
            if *u < 0.6 {
                "consolidates"
            } else {
                "stays spread"
            }
            .to_string(),
        ]);
    }
    println!("discrete-simulator cross-check (20 servers, constant-demand churn):\n");
    println!("{}", t2.render());
    emit("analysis_stability_sim.csv", &t2.to_csv());

    println!("The sign flips at ū = 0.6 = T_a(p−1)/p for the paper's T_a = 0.9, p = 3:");
    println!("below it, rich-get-richer dynamics empty the weakest servers; above it");
    println!("the decreasing branch of f_a actively re-balances the fleet. This is the");
    println!("regime boundary separating the paper's Fig. 12 consolidation phase from");
    println!("the spread steady states that churn-heavy workloads settle into.");
    emit("analysis_stability.csv", &t.to_csv());
}
