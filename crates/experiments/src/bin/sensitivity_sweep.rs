//! The §III sensitivity study (the paper describes it but omits the
//! numbers "for the sake of brevity"): sweep the migration thresholds
//! and shapes plus the assignment exponent, and report consolidation,
//! migration and QoS metrics for each point.
//!
//! The sweep runs on a reduced scenario (100 servers, 1,500 VMs, 24 h)
//! so the full grid finishes in minutes; points fan out over all cores
//! with rayon.

use ecocloud::core::{AssignmentFunction, EcoCloudConfig, EcoCloudPolicy, MigrationFunctions};
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::prelude::*;
use ecocloud_experiments::{emit, fast_mode, seed};
use rayon::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Point {
    p: f64,
    tl: f64,
    th: f64,
    alpha: f64,
    beta: f64,
}

fn sweep_scenario(seed: u64) -> Scenario {
    let (n_vms, n_servers, hours) = if fast_mode() {
        (400, 30, 6)
    } else {
        (1500, 100, 24)
    };
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false; // memory over the grid
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

fn main() {
    let seed = seed();
    let mut points = Vec::new();
    for p in [2.0, 3.0, 5.0] {
        points.push(Point {
            p,
            tl: 0.5,
            th: 0.95,
            alpha: 0.25,
            beta: 0.25,
        });
    }
    for tl in [0.3, 0.4, 0.5, 0.6] {
        points.push(Point {
            p: 3.0,
            tl,
            th: 0.95,
            alpha: 0.25,
            beta: 0.25,
        });
    }
    for th in [0.92, 0.95, 0.98] {
        points.push(Point {
            p: 3.0,
            tl: 0.5,
            th,
            alpha: 0.25,
            beta: 0.25,
        });
    }
    for ab in [0.1, 0.25, 0.5, 1.0] {
        points.push(Point {
            p: 3.0,
            tl: 0.5,
            th: 0.95,
            alpha: ab,
            beta: ab,
        });
    }

    eprintln!("[sensitivity] {} grid points", points.len());
    let rows: Vec<(Point, _)> = points
        .par_iter()
        .map(|&pt| {
            let scenario = sweep_scenario(seed);
            let cfg = EcoCloudConfig {
                assignment: AssignmentFunction::new(0.9, pt.p),
                migration: MigrationFunctions::new(pt.tl, pt.th, pt.alpha, pt.beta),
                ..EcoCloudConfig::paper(seed)
            };
            let mut res = scenario.run(EcoCloudPolicy::new(cfg));
            let viol30 = res.stats.violations_shorter_than(30.0);
            (pt, (res.summary, viol30))
        })
        .collect();

    let mut t = Table::new([
        "p",
        "Tl",
        "Th",
        "a=b",
        "servers",
        "kWh",
        "low-mig",
        "high-mig",
        "switches",
        "overdemand%",
        "viol<30s%",
    ]);
    for (pt, (s, viol30)) in &rows {
        t.push_row([
            fmt_num(pt.p, 0),
            fmt_num(pt.tl, 2),
            fmt_num(pt.th, 2),
            fmt_num(pt.alpha, 2),
            fmt_num(s.mean_active_servers, 1),
            fmt_num(s.energy_kwh, 1),
            format!("{}", s.total_low_migrations),
            format!("{}", s.total_high_migrations),
            format!("{}", s.total_activations + s.total_hibernations),
            fmt_num(s.max_overdemand_pct, 3),
            fmt_num(100.0 * viol30, 1),
        ]);
    }
    println!("# Sensitivity sweep (reduced scenario; seed {seed})\n");
    println!("{}", t.render());
    println!("Paper's qualitative findings to check in the table above:");
    println!("  * larger p -> stronger consolidation (fewer servers), more overload risk;");
    println!("  * larger Tl -> servers drained earlier (more low migrations);");
    println!("  * Th must stay above Ta = 0.9 or utilization cannot reach Ta;");
    println!("  * smaller alpha/beta -> more eager migrations.");
    emit("sensitivity_sweep.csv", &t.to_csv());
}
