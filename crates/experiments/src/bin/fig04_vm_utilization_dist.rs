//! Fig. 4 — distribution of the average CPU utilization of the VMs
//! (percent of the hosting machine's capacity).

use ecocloud::traces::stats::avg_utilization_histogram;
use ecocloud::traces::{TraceConfig, TraceSet};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, seed, spark, xy_csv};

fn main() {
    let set = TraceSet::generate(TraceConfig::paper_48h(seed()));
    let h = avg_utilization_histogram(&set, 40);
    println!(
        "# Fig. 4: avg VM CPU utilization distribution ({} VMs)\n",
        set.len()
    );
    let freqs = h.frequencies();
    spark(
        "frequency vs avg util %",
        &freqs.iter().map(|&(_, f)| f).collect::<Vec<_>>(),
    );
    println!(
        "\nbelow 20 %: {:.1} % of VMs (paper: 'under 20% for most VMs')",
        100.0 * h.fraction_below(20.0)
    );
    println!(
        "median: {:.1} %,  p95: {:.1} %",
        h.quantile(0.5),
        h.quantile(0.95)
    );
    println!();
    emit(
        "fig04_vm_utilization_dist.csv",
        &xy_csv(("avg_util_pct", "freq"), freqs),
    );
    emit_gnuplot(
        "fig04_vm_utilization_dist",
        "Fig. 4: distribution of the average VM CPU utilization",
        "avg CPU utilization (%)",
        "frequency",
        "fig04_vm_utilization_dist.csv",
        &[SeriesSpec::boxes(2, "frequency")],
    );
}
