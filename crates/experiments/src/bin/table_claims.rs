//! The claims table: every quantitative statement of the paper's §I
//! and §III, paper value vs. measured value, plus the centralized
//! baselines and the theoretical minimum.

use ecocloud::baselines::{best_fit_decreasing, min_active_servers};
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::sweep::PolicySpec;
use ecocloud_experiments::{
    emit, ensemble_48h, pm, replicas, run_48h_bestfit, run_48h_ecocloud, scenario_48h, seed,
};

fn main() {
    let seed = seed();
    let scenario = scenario_48h(seed);
    let mut eco = run_48h_ecocloud(seed);
    let bfd = run_48h_bestfit(seed);
    // Cross-seed ensemble behind the ±95 % column; the artifact cache
    // makes re-renders free.
    let agg = ensemble_48h(PolicySpec::EcoCloud);
    let band = |name: &str, digits: usize| pm(agg.metric(name).expect(name), digits);

    // Theoretical minimum active servers, averaged over the run: at
    // each metrics sample, the fewest servers whose usable capacity
    // (0.9 × cap) covers the instantaneous demand.
    let caps: Vec<f64> = scenario
        .fleet
        .specs
        .iter()
        .map(|s| s.capacity_mhz())
        .collect();
    let total_cap: f64 = caps.iter().sum();
    let min_series: Vec<f64> = eco
        .stats
        .overall_load
        .values()
        .iter()
        .map(|&load| min_active_servers(&caps, load * total_cap, 0.9) as f64)
        .collect();
    let mean_min = min_series.iter().sum::<f64>() / min_series.len() as f64;

    // Offline BFD packing of the mean-load snapshot (the strongest
    // consolidation comparator).
    let t_mid = scenario.config.duration_secs / 2.0;
    let demands: Vec<f64> = scenario
        .workload
        .traces
        .vms
        .iter()
        .map(|vm| vm.demand_mhz_at(t_mid, scenario.workload.traces.config.step_secs))
        .collect();
    let packing = best_fit_decreasing(&demands, &caps, 0.9);

    let hours = scenario.config.duration_secs / 3600.0;
    let eco_mig_per_hour_max = (0..hours as usize)
        .map(|h| {
            eco.stats.low_migrations.count_in_hour(h) + eco.stats.high_migrations.count_in_hour(h)
        })
        .max()
        .unwrap_or(0);

    let mut t = Table::new([
        "claim",
        "paper",
        "ecoCloud (measured)",
        "ecoCloud ±95% CI",
        "best-fit baseline",
    ]);
    t.push_row([
        "mean active servers".to_string(),
        "~load-proportional".to_string(),
        fmt_num(eco.summary.mean_active_servers, 1),
        band("mean_active_servers", 1),
        fmt_num(bfd.summary.mean_active_servers, 1),
    ]);
    t.push_row([
        "theoretical min (mean)".to_string(),
        "close to minimum".to_string(),
        format!(
            "{} ({}x min)",
            fmt_num(mean_min, 1),
            fmt_num(eco.summary.mean_active_servers / mean_min, 2)
        ),
        "-".to_string(),
        format!(
            "{}x min",
            fmt_num(bfd.summary.mean_active_servers / mean_min, 2)
        ),
    ]);
    t.push_row([
        "offline BFD pack (mid-run snapshot)".to_string(),
        "-".to_string(),
        format!("{} servers used", packing.servers_used),
        "-".to_string(),
        "-".to_string(),
    ]);
    t.push_row([
        "energy (kWh / 48 h)".to_string(),
        "-".to_string(),
        fmt_num(eco.summary.energy_kwh, 1),
        band("energy_kwh", 1),
        fmt_num(bfd.summary.energy_kwh, 1),
    ]);
    t.push_row([
        "busiest hour migrations".to_string(),
        "< 200 / h".to_string(),
        format!("{eco_mig_per_hour_max} / h"),
        "-".to_string(),
        format!(
            "{} total migrations",
            bfd.summary.total_low_migrations + bfd.summary.total_high_migrations
        ),
    ]);
    t.push_row([
        "total migrations".to_string(),
        "-".to_string(),
        format!(
            "{}",
            eco.summary.total_low_migrations + eco.summary.total_high_migrations
        ),
        band("total_migrations", 0),
        format!(
            "{}",
            bfd.summary.total_low_migrations + bfd.summary.total_high_migrations
        ),
    ]);
    t.push_row([
        "server switches (on+off)".to_string(),
        "only when needed".to_string(),
        format!(
            "{}",
            eco.summary.total_activations + eco.summary.total_hibernations
        ),
        band("total_switches", 0),
        format!(
            "{}",
            bfd.summary.total_activations + bfd.summary.total_hibernations
        ),
    ]);
    t.push_row([
        "violations < 30 s".to_string(),
        "> 98 %".to_string(),
        format!(
            "{} %",
            fmt_num(100.0 * eco.stats.violations_shorter_than(30.0), 1)
        ),
        {
            let r = agg.metric("violations_under_30s").expect("ensemble metric");
            format!(
                "{} ±{} %",
                fmt_num(100.0 * r.mean(), 1),
                fmt_num(100.0 * r.ci95_half_width(), 1)
            )
        },
        "-".to_string(),
    ]);
    t.push_row([
        "granted CPU during violations".to_string(),
        ">= 98 %".to_string(),
        format!(
            "{} %",
            fmt_num(100.0 * eco.summary.mean_granted_during_violation, 1)
        ),
        {
            let r = agg
                .metric("mean_granted_during_violation")
                .expect("ensemble metric");
            format!(
                "{} ±{} %",
                fmt_num(100.0 * r.mean(), 1),
                fmt_num(100.0 * r.ci95_half_width(), 1)
            )
        },
        "-".to_string(),
    ]);
    t.push_row([
        "worst 30-min over-demand".to_string(),
        "<= 0.02 %".to_string(),
        format!("{} %", fmt_num(eco.summary.max_overdemand_pct, 4)),
        format!("{} %", band("max_overdemand_pct", 4)),
        format!("{} %", fmt_num(bfd.summary.max_overdemand_pct, 4)),
    ]);
    t.push_row([
        "dropped VMs".to_string(),
        "0 (capacity ok)".to_string(),
        format!("{}", eco.summary.dropped_vms),
        band("dropped_vms", 1),
        format!("{}", bfd.summary.dropped_vms),
    ]);

    println!(
        "# Claims table: paper vs measured ({} h, {} servers, {} VMs; CI over {} seeds)\n",
        hours,
        scenario.fleet.len(),
        scenario.workload.spawns.len(),
        replicas()
    );
    println!("{}", t.render());
    emit("table_claims.csv", &t.to_csv());
}
