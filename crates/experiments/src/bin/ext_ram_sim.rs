//! §V extension in the *full* simulator: the same RAM-carrying
//! workload run with a RAM-oblivious ecoCloud (the paper's published
//! CPU-only procedure) and with the RAM-constrained variant
//! ("critical resource + constraints": CPU runs the Bernoulli trial,
//! memory is a hard feasibility constraint at every acceptance).
//!
//! The workload is deliberately RAM-heavy (lognormal, median 1 GB on
//! 16–32 GB hosts), so CPU-driven consolidation packs ~40 VMs per
//! server and oversubscribes memory unless the constraint is enforced.

use ecocloud::core::{EcoCloudConfig, EcoCloudPolicy};
use ecocloud::metrics::table::fmt_num;
use ecocloud::metrics::Table;
use ecocloud::prelude::*;
use ecocloud_experiments::{emit, fast_mode, seed};

fn scenario(seed: u64) -> Scenario {
    let (n_vms, n_servers, hours) = if fast_mode() {
        (400, 30, 6)
    } else {
        (1500, 100, 24)
    };
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::paper_48h(seed)
    });
    let mut workload = Workload::all_vms_from_start(traces);
    // Median 1 GB, heavy tail to 8 GB.
    workload.assign_ram_demands(1024.0, 0.8, 8192.0, seed);
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload,
        config,
    }
}

fn main() {
    let seed = seed();
    let variants: Vec<(&str, EcoCloudConfig)> = vec![
        ("RAM-oblivious (paper's CPU-only)", {
            let mut c = EcoCloudConfig::paper(seed);
            c.ram_aware = false;
            c
        }),
        ("RAM constraint @ 100 %", {
            let mut c = EcoCloudConfig::paper(seed);
            c.ram_threshold = 1.0;
            c
        }),
        ("RAM constraint @ 90 % (§V)", EcoCloudConfig::paper(seed)),
    ];

    let mut t = Table::new([
        "variant",
        "mean servers",
        "kWh",
        "max RAM commit %",
        "overdemand %",
        "dropped",
    ]);
    for (name, cfg) in variants {
        let res = scenario(seed).run(EcoCloudPolicy::new(cfg));
        let s = &res.summary;
        t.push_row([
            name.to_string(),
            fmt_num(s.mean_active_servers, 1),
            fmt_num(s.energy_kwh, 1),
            fmt_num(100.0 * s.max_ram_utilization, 1),
            fmt_num(s.max_overdemand_pct, 3),
            format!("{}", s.dropped_vms),
        ]);
    }
    println!("# §V extension in the full simulator (seed {seed})\n");
    println!("{}", t.render());
    println!("The CPU-only procedure oversubscribes memory several-fold on its");
    println!("consolidated servers; adding memory as a feasibility constraint caps");
    println!("the commitment exactly at the threshold. In this RAM-heavy workload");
    println!("memory, not CPU, is the binding resource, so the feasible packing");
    println!("needs ~2.4x the servers — the cost the CPU-only numbers were hiding,");
    println!("and precisely why §V calls the multi-resource extension important.");
    emit("ext_ram_sim.csv", &t.to_csv());
}
