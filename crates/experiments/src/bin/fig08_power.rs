//! Fig. 8 — power consumed by the data center (watts) over 48 hours,
//! with cross-seed mean ±95 % CI columns from the replication
//! ensemble.

use ecocloud::sweep::PolicySpec;
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{
    emit, ensemble_48h, pm, run_48h_ecocloud, seed, series_with_band_csv, spark,
};

fn main() {
    let res = run_48h_ecocloud(seed());
    let agg = ensemble_48h(PolicySpec::EcoCloud);
    println!("# Fig. 8: data-center power, 48 h, ecoCloud\n");
    let v = res.stats.power_w.values();
    spark("power (W)", v);
    let energy = agg.metric("energy_kwh").expect("ensemble metric");
    println!(
        "\npeak {:.0} W, total energy {:.1} kWh; ensemble {} kWh over {} seeds",
        res.stats.power_w.max(),
        res.summary.energy_kwh,
        pm(energy, 1),
        energy.count()
    );
    println!();
    emit(
        "fig08_power.csv",
        &series_with_band_csv(
            "power_w",
            &res.stats.power_w,
            agg.series("power_w").expect("ensemble series"),
        ),
    );
    emit_gnuplot(
        "fig08_power",
        "Fig. 8: power consumed by the data center",
        "time (hours)",
        "power (W)",
        "fig08_power.csv",
        &[
            SeriesSpec::lines(2, "power (one seed)"),
            SeriesSpec::lines(3, "ensemble mean"),
        ],
    );
}
