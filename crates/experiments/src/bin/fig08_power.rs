//! Fig. 8 — power consumed by the data center (watts) over 48 hours.

use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, run_48h_ecocloud, seed, spark, xy_csv};

fn main() {
    let res = run_48h_ecocloud(seed());
    println!("# Fig. 8: data-center power, 48 h, ecoCloud\n");
    let t = res.stats.power_w.times_hours();
    let v = res.stats.power_w.values();
    spark("power (W)", v);
    println!(
        "\npeak {:.0} W, total energy {:.1} kWh",
        res.stats.power_w.max(),
        res.summary.energy_kwh
    );
    println!();
    emit(
        "fig08_power.csv",
        &xy_csv(
            ("time_h", "power_w"),
            t.iter().copied().zip(v.iter().copied()),
        ),
    );
    emit_gnuplot(
        "fig08_power",
        "Fig. 8: power consumed by the data center",
        "time (hours)",
        "power (W)",
        "fig08_power.csv",
        &[SeriesSpec::lines(2, "power")],
    );
}
