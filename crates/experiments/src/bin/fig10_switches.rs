//! Fig. 10 — server activations and hibernations per hour, with
//! cross-seed mean ±95 % CI columns from the replication ensemble.

use ecocloud::sweep::PolicySpec;
use ecocloud_experiments::figures::{hourly_rows, Which};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, ensemble_48h, run_48h_ecocloud, seed, spark};

fn main() {
    let res = run_48h_ecocloud(seed());
    let agg = ensemble_48h(PolicySpec::EcoCloud);
    println!("# Fig. 10: server switches per hour, 48 h, ecoCloud\n");
    let on = hourly_rows(&res, Which::Activations);
    let off = hourly_rows(&res, Which::Hibernations);
    spark(
        "activations/h",
        &on.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    spark(
        "hibernations/h",
        &off.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    println!(
        "\ntotals: {} activations, {} hibernations",
        res.summary.total_activations, res.summary.total_hibernations
    );
    println!();
    let on_band = agg.hourly("activations").expect("ensemble hourly");
    let off_band = agg.hourly("hibernations").expect("ensemble hourly");
    let mut csv = String::from("hour,activations,hibernations,act_mean,act_ci95,hib_mean,hib_ci95\n");
    for (i, (&(h, a), &(_, b))) in on.iter().zip(&off).enumerate() {
        let (am, ac, hm, hc) = match (on_band.get(i), off_band.get(i)) {
            (Some(ab), Some(hb)) => (
                ab.mean(),
                ab.ci95_half_width(),
                hb.mean(),
                hb.ci95_half_width(),
            ),
            _ => (a as f64, 0.0, b as f64, 0.0),
        };
        csv.push_str(&format!("{h},{a},{b},{am:.2},{ac:.2},{hm:.2},{hc:.2}\n"));
    }
    emit("fig10_switches.csv", &csv);
    emit_gnuplot(
        "fig10_switches",
        "Fig. 10: server switches per hour",
        "hour",
        "switches per hour",
        "fig10_switches.csv",
        &[
            SeriesSpec::lines(2, "activations"),
            SeriesSpec::lines(3, "hibernations"),
            SeriesSpec::lines(4, "activations (ensemble mean)"),
            SeriesSpec::lines(6, "hibernations (ensemble mean)"),
        ],
    );
}
