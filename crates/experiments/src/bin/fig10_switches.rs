//! Fig. 10 — server activations and hibernations per hour.

use ecocloud_experiments::figures::{hourly_rows, Which};
use ecocloud_experiments::gnuplot::{emit_gnuplot, SeriesSpec};
use ecocloud_experiments::{emit, run_48h_ecocloud, seed, spark};

fn main() {
    let res = run_48h_ecocloud(seed());
    println!("# Fig. 10: server switches per hour, 48 h, ecoCloud\n");
    let on = hourly_rows(&res, Which::Activations);
    let off = hourly_rows(&res, Which::Hibernations);
    spark(
        "activations/h",
        &on.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    spark(
        "hibernations/h",
        &off.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>(),
    );
    println!(
        "\ntotals: {} activations, {} hibernations",
        res.summary.total_activations, res.summary.total_hibernations
    );
    println!();
    let mut csv = String::from("hour,activations,hibernations\n");
    for (&(h, a), &(_, b)) in on.iter().zip(&off) {
        csv.push_str(&format!("{h},{a},{b}\n"));
    }
    emit("fig10_switches.csv", &csv);
    emit_gnuplot(
        "fig10_switches",
        "Fig. 10: server switches per hour",
        "hour",
        "switches per hour",
        "fig10_switches.csv",
        &[
            SeriesSpec::lines(2, "activations"),
            SeriesSpec::lines(3, "hibernations"),
        ],
    );
}
