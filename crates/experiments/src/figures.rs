//! Helpers shared by several figure binaries.

use ecocloud::dcsim::SimResult;

/// Percentile summary of the *powered* servers' utilizations at each
/// metrics sample — the readable form of the paper's per-server
/// scatter plots (Figs. 6 and 12).
///
/// Returns rows `(time_h, p10, p50, p90, max, overall_load)`.
pub fn utilization_percentiles(res: &SimResult) -> Vec<(f64, f64, f64, f64, f64, f64)> {
    let loads = res.stats.overall_load.values();
    res.stats
        .server_utilization
        .iter()
        .enumerate()
        .map(|(i, (t, us))| {
            let mut powered: Vec<f64> = us.iter().map(|&u| u as f64).filter(|&u| u > 0.0).collect();
            powered.sort_by(|a, b| a.total_cmp(b));
            let q = |f: f64| -> f64 {
                if powered.is_empty() {
                    0.0
                } else {
                    let idx = ((powered.len() as f64 - 1.0) * f).round() as usize;
                    powered[idx]
                }
            };
            let load = loads.get(i).copied().unwrap_or(f64::NAN);
            (t / 3600.0, q(0.10), q(0.50), q(0.90), q(1.0), load)
        })
        .collect()
}

/// Full per-server utilization matrix as CSV (one row per sample, one
/// column per server) — the raw data behind the scatter figures.
pub fn utilization_matrix_csv(res: &SimResult) -> String {
    let n = res
        .stats
        .server_utilization
        .first()
        .map(|(_, u)| u.len())
        .unwrap_or(0);
    let mut s = String::from("time_h");
    for i in 0..n {
        s.push_str(&format!(",s{i}"));
    }
    s.push('\n');
    for (t, us) in &res.stats.server_utilization {
        s.push_str(&format!("{:.4}", t / 3600.0));
        for &u in us {
            s.push_str(&format!(",{u:.4}"));
        }
        s.push('\n');
    }
    s
}

/// `(hour, count)` rows of an hourly counter padded to the run length.
pub fn hourly_rows(res: &SimResult, which: Which) -> Vec<(usize, u64)> {
    let hours = (res
        .stats
        .overall_load
        .times_secs()
        .last()
        .copied()
        .unwrap_or(0.0)
        / 3600.0)
        .ceil() as usize;
    let counter = match which {
        Which::LowMigrations => &res.stats.low_migrations,
        Which::HighMigrations => &res.stats.high_migrations,
        Which::Activations => &res.stats.activations,
        Which::Hibernations => &res.stats.hibernations,
    };
    counter.per_hour(hours.max(1))
}

/// Selector for [`hourly_rows`].
#[derive(Debug, Clone, Copy)]
pub enum Which {
    /// Fig. 9, "low migrations" series.
    LowMigrations,
    /// Fig. 9, "high migrations" series.
    HighMigrations,
    /// Fig. 10, "activations" series.
    Activations,
    /// Fig. 10, "hibernations" series.
    Hibernations,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecocloud::prelude::*;

    fn tiny_result() -> SimResult {
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 40,
            duration_secs: 2 * 3600,
            ..TraceConfig::small(5)
        });
        let mut config = SimConfig::paper_48h(5);
        config.duration_secs = 2.0 * 3600.0;
        let scenario = Scenario {
            fleet: Fleet::thirds(12),
            workload: Workload::all_vms_from_start(traces),
            config,
        };
        scenario.run(EcoCloudPolicy::paper(5))
    }

    #[test]
    fn percentiles_are_ordered_and_match_load_column() {
        let res = tiny_result();
        let rows = utilization_percentiles(&res);
        assert_eq!(rows.len(), res.stats.overall_load.len());
        for (t, p10, p50, p90, max, load) in rows {
            assert!(t >= 0.0);
            assert!(p10 <= p50 + 1e-9 && p50 <= p90 + 1e-9 && p90 <= max + 1e-9);
            assert!((0.0..=1.5).contains(&load));
        }
    }

    #[test]
    fn matrix_csv_has_one_column_per_server() {
        let res = tiny_result();
        let csv = utilization_matrix_csv(&res);
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert_eq!(header.split(',').count(), 13); // time_h + 12 servers
        for line in lines {
            assert_eq!(line.split(',').count(), 13);
        }
    }

    #[test]
    fn hourly_rows_cover_run_duration() {
        let res = tiny_result();
        for which in [
            Which::LowMigrations,
            Which::HighMigrations,
            Which::Activations,
            Which::Hibernations,
        ] {
            let rows = hourly_rows(&res, which);
            assert!(rows.len() >= 2, "2-hour run must yield >= 2 hourly rows");
            for (i, (h, _)) in rows.iter().enumerate() {
                assert_eq!(*h, i);
            }
        }
    }
}
