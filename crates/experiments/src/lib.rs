//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper: it prints the series as CSV to stdout (and to a file under
//! `out/`), plus a terminal sparkline so the qualitative shape is
//! visible without plotting. The expensive 48-hour simulation is run
//! once and cached as JSON under `out/`, so the six figures it feeds
//! (Figs. 6–11) do not re-run it.
//!
//! Environment knobs (all optional):
//! * `ECOCLOUD_SEED` — master seed (default 42).
//! * `ECOCLOUD_FAST=1` — shrink the scenarios (~10×) for smoke runs.
//! * `ECOCLOUD_OUT` — output directory (default `./out`).

use ecocloud::dcsim::SimResult;
use ecocloud::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

pub mod figures;
pub mod gnuplot;

/// Master seed for all experiments.
#[allow(clippy::disallowed_methods)] // entry crate: env is the experiments' CLI surface
pub fn seed() -> u64 {
    std::env::var("ECOCLOUD_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// True when the fast (downscaled) mode is requested.
#[allow(clippy::disallowed_methods)] // entry crate: env is the experiments' CLI surface
pub fn fast_mode() -> bool {
    std::env::var("ECOCLOUD_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Output directory (created on first use).
#[allow(clippy::disallowed_methods)] // entry crate: env is the experiments' CLI surface
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("ECOCLOUD_OUT").unwrap_or_else(|_| "out".to_string());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("cannot create output directory");
    p
}

/// The §III scenario (or its fast-mode downscale).
pub fn scenario_48h(seed: u64) -> Scenario {
    if fast_mode() {
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 600,
            duration_secs: 12 * 3600,
            ..TraceConfig::paper_48h(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 12.0 * 3600.0;
        Scenario {
            fleet: Fleet::thirds(40),
            workload: Workload::all_vms_from_start(traces),
            config,
        }
    } else {
        Scenario::paper_48h(seed)
    }
}

/// The §IV scenario (or its fast-mode downscale).
pub fn scenario_fig12(seed: u64) -> Scenario {
    if fast_mode() {
        let mut s = Scenario::paper_fig12(seed);
        s.config.duration_secs = 6.0 * 3600.0;
        s.workload
            .spawns
            .retain(|sp| sp.arrive_secs <= 6.0 * 3600.0);
        s
    } else {
        Scenario::paper_fig12(seed)
    }
}

fn cached_run(cache_name: &str, run: impl FnOnce() -> SimResult) -> SimResult {
    let path = out_dir().join(cache_name);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(res) = serde_json::from_str::<SimResult>(&text) {
            eprintln!("[experiments] reusing cached run {}", path.display());
            return res;
        }
        eprintln!(
            "[experiments] stale cache at {}, re-running",
            path.display()
        );
    }
    let res = run();
    let json = serde_json::to_string(&res).expect("results serialize");
    fs::write(&path, json).expect("cannot write cache");
    eprintln!("[experiments] cached run at {}", path.display());
    res
}

/// The ecoCloud 48-hour run (cached on disk).
pub fn run_48h_ecocloud(seed: u64) -> SimResult {
    let name = format!(
        "cache_48h_ecocloud_seed{seed}{}.json",
        if fast_mode() { "_fast" } else { "" }
    );
    cached_run(&name, || {
        let scenario = scenario_48h(seed);
        eprintln!(
            "[experiments] running 48 h scenario: {} servers, {} VMs...",
            scenario.fleet.len(),
            scenario.workload.spawns.len()
        );
        scenario.run(EcoCloudPolicy::paper(seed))
    })
}

/// The Best-Fit baseline on the same 48-hour scenario (cached).
pub fn run_48h_bestfit(seed: u64) -> SimResult {
    let name = format!(
        "cache_48h_bestfit_seed{seed}{}.json",
        if fast_mode() { "_fast" } else { "" }
    );
    cached_run(&name, || {
        let scenario = scenario_48h(seed);
        scenario.run(BestFitPolicy::paper())
    })
}

/// The assignment-only §IV run (cached).
pub fn run_fig12(seed: u64) -> SimResult {
    let name = format!(
        "cache_fig12_seed{seed}{}.json",
        if fast_mode() { "_fast" } else { "" }
    );
    cached_run(&name, || {
        let scenario = scenario_fig12(seed);
        eprintln!(
            "[experiments] running assignment-only scenario: {} servers, {} spawns...",
            scenario.fleet.len(),
            scenario.workload.spawns.len()
        );
        scenario.run(EcoCloudPolicy::paper(seed))
    })
}

/// Writes `content` under `out/` and echoes it to stdout.
pub fn emit(file: &str, content: &str) {
    let path = out_dir().join(file);
    fs::write(&path, content).expect("cannot write output file");
    println!("{content}");
    eprintln!("[experiments] wrote {}", path.display());
}

/// Writes `content` under `out/` without echoing (for bulky matrices).
pub fn emit_quiet(file: &str, content: &str) -> PathBuf {
    let path = out_dir().join(file);
    fs::write(&path, content).expect("cannot write output file");
    eprintln!("[experiments] wrote {}", path.display());
    path
}

/// Prints a labelled sparkline for a series.
pub fn spark(label: &str, values: &[f64]) {
    println!("{label:<28} {}", ecocloud::metrics::sparkline(values, 60));
}

/// Formats an `(x, y)` series as a two-column CSV.
pub fn xy_csv(header: (&str, &str), rows: impl IntoIterator<Item = (f64, f64)>) -> String {
    let mut s = format!("{},{}\n", header.0, header.1);
    for (x, y) in rows {
        s.push_str(&format!("{x:.6},{y:.6}\n"));
    }
    s
}

/// Convenience: does a file exist under `out/`?
pub fn out_exists(file: &str) -> bool {
    Path::new(&out_dir()).join(file).exists()
}
