//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper: it prints the series as CSV to stdout (and to a file under
//! `out/`), plus a terminal sparkline so the qualitative shape is
//! visible without plotting. Expensive runs are cached under
//! `out/cache/`, content-addressed by a stable hash of the full run
//! specification ([`ecocloud::sweep::RunSpec`]) — changing the seed,
//! the scenario dimensions or the crate version changes the file name,
//! so stale artifacts are never picked up and never need manual
//! deletion. Figures 6–11 share one cached 48-hour run, and the
//! Fig. 7–11 / claims-table binaries additionally report mean ±95 %
//! confidence intervals across an `ECOCLOUD_REPLICAS`-seed ensemble
//! served by the same cache.
//!
//! Environment knobs (all optional):
//! * `ECOCLOUD_SEED` — master seed (default 42).
//! * `ECOCLOUD_FAST=1` — shrink the scenarios (~10×) for smoke runs.
//! * `ECOCLOUD_OUT` — output directory (default `./out`).
//! * `ECOCLOUD_REPLICAS` — ensemble size (default 10; 5 in fast mode).

use ecocloud::dcsim::SimResult;
use ecocloud::prelude::*;
use ecocloud::sweep::{
    aggregate, run_grid, seed_grid, ArtifactCache, PolicySpec, RunSpec, ScenarioSpec,
    SweepAggregate,
};
use std::fs;
use std::path::{Path, PathBuf};

pub mod figures;
pub mod gnuplot;

/// Master seed for all experiments.
#[allow(clippy::disallowed_methods)] // entry crate: env is the experiments' CLI surface
pub fn seed() -> u64 {
    std::env::var("ECOCLOUD_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// True when the fast (downscaled) mode is requested.
#[allow(clippy::disallowed_methods)] // entry crate: env is the experiments' CLI surface
pub fn fast_mode() -> bool {
    std::env::var("ECOCLOUD_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Output directory (created on first use).
#[allow(clippy::disallowed_methods)] // entry crate: env is the experiments' CLI surface
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("ECOCLOUD_OUT").unwrap_or_else(|_| "out".to_string());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("cannot create output directory");
    p
}

/// Ensemble size for the CI bands (default 10; 5 in fast mode).
#[allow(clippy::disallowed_methods)] // entry crate: env is the experiments' CLI surface
pub fn replicas() -> usize {
    std::env::var("ECOCLOUD_REPLICAS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(if fast_mode() { 5 } else { 10 })
}

/// The content-addressed artifact cache every experiment binary shares
/// (`<out>/cache/`).
pub fn artifact_cache() -> ArtifactCache {
    ArtifactCache::under_out_dir(&out_dir())
}

/// Worker thread count for ensembles.
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The §III scenario (or its fast-mode downscale).
pub fn scenario_48h(seed: u64) -> Scenario {
    if fast_mode() {
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 600,
            duration_secs: 12 * 3600,
            ..TraceConfig::paper_48h(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 12.0 * 3600.0;
        Scenario {
            fleet: Fleet::thirds(40),
            workload: Workload::all_vms_from_start(traces),
            config,
        }
    } else {
        Scenario::paper_48h(seed)
    }
}

/// The §IV scenario (or its fast-mode downscale).
pub fn scenario_fig12(seed: u64) -> Scenario {
    if fast_mode() {
        let mut s = Scenario::paper_fig12(seed);
        s.config.duration_secs = 6.0 * 3600.0;
        s.workload
            .spawns
            .retain(|sp| sp.arrive_secs <= 6.0 * 3600.0);
        s
    } else {
        Scenario::paper_fig12(seed)
    }
}

/// The [`RunSpec`] describing the (possibly fast-mode) 48-hour setup.
/// `server_utilization` marks whether the Fig. 6 per-server matrix is
/// recorded — it changes the artifact, so it is part of the key.
pub fn spec_48h(policy: PolicySpec, seed: u64, server_utilization: bool) -> RunSpec {
    let scenario = if fast_mode() {
        ScenarioSpec::Custom {
            servers: 40,
            cores: None,
            vms: 600,
            hours: 12,
            migrations: true,
            server_utilization,
            churn: None,
        }
    } else if server_utilization {
        ScenarioSpec::Paper48h
    } else {
        // Identical trajectory to Paper48h — recording the matrix does
        // not feed back into the dynamics — but a much smaller
        // artifact, so the ensemble seeds use this variant.
        ScenarioSpec::Custom {
            servers: 400,
            cores: None,
            vms: 6000,
            hours: 48,
            migrations: true,
            server_utilization: false,
            churn: None,
        }
    };
    RunSpec::new(scenario, policy, seed)
}

/// Caches a full [`SimResult`] (per-server matrix included) as JSON at
/// the spec's content-addressed path, `<out>/cache/<name>-full.json`.
/// Any spec change — seed, dimensions, crate version — lands on a new
/// file name, so invalidation needs no manual deletion.
fn cached_full_run(spec: &RunSpec, run: impl FnOnce() -> SimResult) -> SimResult {
    let dir = out_dir().join("cache");
    fs::create_dir_all(&dir).expect("cannot create cache directory");
    let path = dir.join(spec.artifact_name().replace(".ecor", "-full.json"));
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(res) = serde_json::from_str::<SimResult>(&text) {
            eprintln!("[experiments] reusing cached run {}", path.display());
            return res;
        }
        eprintln!(
            "[experiments] stale cache at {}, re-running",
            path.display()
        );
    }
    let res = run();
    let json = serde_json::to_string(&res).expect("results serialize");
    fs::write(&path, json).expect("cannot write cache");
    eprintln!("[experiments] cached run at {}", path.display());
    res
}

/// The ecoCloud 48-hour run (cached on disk).
pub fn run_48h_ecocloud(seed: u64) -> SimResult {
    cached_full_run(&spec_48h(PolicySpec::EcoCloud, seed, true), || {
        let scenario = scenario_48h(seed);
        eprintln!(
            "[experiments] running 48 h scenario: {} servers, {} VMs...",
            scenario.fleet.len(),
            scenario.workload.spawns.len()
        );
        scenario.run(EcoCloudPolicy::paper(seed))
    })
}

/// The Best-Fit baseline on the same 48-hour scenario (cached).
pub fn run_48h_bestfit(seed: u64) -> SimResult {
    cached_full_run(&spec_48h(PolicySpec::BestFit, seed, true), || {
        let scenario = scenario_48h(seed);
        scenario.run(BestFitPolicy::paper())
    })
}

/// The assignment-only §IV run (cached).
pub fn run_fig12(seed: u64) -> SimResult {
    let hours = if fast_mode() { 6 } else { 18 };
    let spec = RunSpec::new(ScenarioSpec::PaperFig12 { hours }, PolicySpec::EcoCloud, seed);
    cached_full_run(&spec, || {
        let scenario = scenario_fig12(seed);
        eprintln!(
            "[experiments] running assignment-only scenario: {} servers, {} spawns...",
            scenario.fleet.len(),
            scenario.workload.spawns.len()
        );
        scenario.run(EcoCloudPolicy::paper(seed))
    })
}

/// Cross-seed ensemble of the 48-hour scenario under `policy`: seeds
/// `seed() .. seed()+replicas()`, fanned out over all cores, served by
/// (and filling) the artifact cache. Powers the ±95 % CI columns of
/// Figs. 7–11 and the claims table.
pub fn ensemble_48h(policy: PolicySpec) -> SweepAggregate {
    let base = seed();
    let n = replicas();
    let specs: Vec<RunSpec> = (0..n as u64)
        .map(|i| spec_48h(policy, base.wrapping_add(i), false))
        .collect();
    eprintln!(
        "[experiments] {} ensemble: {n} seeds ({base}..{})",
        policy.name(),
        base.wrapping_add(n as u64 - 1)
    );
    let outcome = run_grid(&specs, workers(), &artifact_cache()).expect("ensemble sweep");
    eprintln!(
        "[experiments] ensemble cache: {} hits, {} executed",
        outcome.cache_hits, outcome.executed
    );
    aggregate(&outcome.artifacts)
}

/// Cross-seed ensemble of an arbitrary scenario (used by the
/// replication study): seeds `base .. base+n`.
pub fn ensemble_of(
    scenario: &ScenarioSpec,
    policy: PolicySpec,
    base: u64,
    n: usize,
) -> SweepAggregate {
    let specs = seed_grid(scenario, policy, base, n);
    let outcome = run_grid(&specs, workers(), &artifact_cache()).expect("ensemble sweep");
    eprintln!(
        "[experiments] ensemble cache: {} hits, {} executed",
        outcome.cache_hits, outcome.executed
    );
    aggregate(&outcome.artifacts)
}

/// Writes `content` under `out/` and echoes it to stdout.
pub fn emit(file: &str, content: &str) {
    let path = out_dir().join(file);
    fs::write(&path, content).expect("cannot write output file");
    println!("{content}");
    eprintln!("[experiments] wrote {}", path.display());
}

/// Writes `content` under `out/` without echoing (for bulky matrices).
pub fn emit_quiet(file: &str, content: &str) -> PathBuf {
    let path = out_dir().join(file);
    fs::write(&path, content).expect("cannot write output file");
    eprintln!("[experiments] wrote {}", path.display());
    path
}

/// Prints a labelled sparkline for a series.
pub fn spark(label: &str, values: &[f64]) {
    println!("{label:<28} {}", ecocloud::metrics::sparkline(values, 60));
}

/// Formats an `(x, y)` series as a two-column CSV.
pub fn xy_csv(header: (&str, &str), rows: impl IntoIterator<Item = (f64, f64)>) -> String {
    let mut s = format!("{},{}\n", header.0, header.1);
    for (x, y) in rows {
        s.push_str(&format!("{x:.6},{y:.6}\n"));
    }
    s
}

/// Four-column CSV joining one displayed run with its cross-seed band:
/// `time_h,<label>,mean,ci95`. Samples are aligned by index (every
/// replication shares the simulator's metrics clock).
pub fn series_with_band_csv(
    label: &str,
    single: &ecocloud::metrics::TimeSeries,
    ensemble: &ecocloud::metrics::EnsembleSeries,
) -> String {
    let mean = ensemble.mean_series();
    let ci = ensemble.ci95_series();
    let mut s = format!("time_h,{label},mean,ci95\n");
    let t = single.times_hours();
    let v = single.values();
    let n = t.len().min(mean.len());
    for i in 0..n {
        s.push_str(&format!(
            "{:.4},{:.6},{:.6},{:.6}\n",
            t[i],
            v[i],
            mean.values()[i],
            ci.values()[i]
        ));
    }
    s
}

/// `mean ± ci95` rendered with `digits` decimals.
pub fn pm(r: &ecocloud::metrics::Replication, digits: usize) -> String {
    format!(
        "{} ±{}",
        ecocloud::metrics::table::fmt_num(r.mean(), digits),
        ecocloud::metrics::table::fmt_num(r.ci95_half_width(), digits)
    )
}

/// Convenience: does a file exist under `out/`?
pub fn out_exists(file: &str) -> bool {
    Path::new(&out_dir()).join(file).exists()
}
