//! Cross-replication statistics: mean, standard deviation and
//! Student-t 95 % confidence intervals over independent simulation
//! runs.
//!
//! The paper's §V tables report averages over repeated runs with
//! confidence intervals; this module is the aggregation layer behind
//! the repo's replication engine (`ecocloud::sweep`). Two shapes are
//! covered:
//!
//! * [`Replication`] — one scalar metric (energy, mean active servers,
//!   a counter) observed once per replication;
//! * [`EnsembleSeries`] — one [`TimeSeries`] per replication sharing a
//!   sampling clock, reduced point-wise to mean / CI bands.
//!
//! Both support a batch [`Replication::merge`] /
//! [`EnsembleSeries::merge`], so partial aggregates computed by
//! independent workers can be combined. The merge delegates to
//! [`StreamingStats::merge`], which is exact in `count`/`min`/`max`
//! and agrees with sequential accumulation to floating-point rounding
//! in `mean`/`variance`; deterministic pipelines should therefore
//! merge in a fixed (seed) order, never completion order.

use crate::{StreamingStats, TimeSeries};
use serde::{Deserialize, Serialize};

/// Two-sided Student-t critical value at the 95 % confidence level for
/// `df` degrees of freedom.
///
/// Exact table values for `df <= 30`, the standard coarse table rungs
/// up to 120, and the normal limit 1.960 beyond; `df = 0` (fewer than
/// two replications) yields `+inf`, which makes the half-width of an
/// undetermined interval infinite rather than deceptively zero.
pub fn t_critical_95(df: u64) -> f64 {
    // Values of t_{0.975, df} (two-sided 95 %).
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// One scalar metric observed across independent replications.
///
/// ```
/// use ecocloud_metrics::replication::Replication;
/// let mut r = Replication::new();
/// for x in [10.0, 12.0, 11.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 4);
/// assert_eq!(r.mean(), 10.5);
/// // half-width = t_{0.975,3} * s / sqrt(4)
/// assert!((r.ci95_half_width() - 3.182 * r.std_dev() / 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Replication {
    stats: StreamingStats,
}

impl Replication {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates every value of a slice.
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut r = Self::new();
        for &x in xs {
            r.push(x);
        }
        r
    }

    /// Ingests one replication's observation.
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
    }

    /// Number of replications observed.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean across replications; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation across replications.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Half-width of the two-sided Student-t 95 % confidence interval
    /// for the mean: `t_{0.975, n-1} * s / sqrt(n)`.
    ///
    /// 0 when fewer than two replications and the spread is undefined
    /// but so is any variance — a single run carries no interval; use
    /// [`Self::count`] to tell "tight" from "unknown".
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.stats.count();
        if n < 2 {
            return 0.0;
        }
        t_critical_95(n - 1) * self.stats.std_dev() / (n as f64).sqrt()
    }

    /// Batch merge: equivalent (up to floating-point rounding) to
    /// having pushed all of `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Replication) {
        self.stats.merge(&other.stats);
    }
}

/// Point-wise statistics over replicated [`TimeSeries`] sharing one
/// sampling clock (the simulator's metrics interval).
///
/// The first pushed series defines the clock; subsequent series must
/// have identical timestamps — replications of the same scenario
/// always do, and anything else indicates the caller mixed scenarios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleSeries {
    name: String,
    t_secs: Vec<f64>,
    points: Vec<StreamingStats>,
    replications: u64,
}

impl EnsembleSeries {
    /// Creates an empty ensemble labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            t_secs: Vec::new(),
            points: Vec::new(),
            replications: 0,
        }
    }

    /// Ensemble label (used as the CSV column prefix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of series folded in so far.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// Shared timestamps, seconds; empty until the first push.
    pub fn times_secs(&self) -> &[f64] {
        &self.t_secs
    }

    /// Folds one replication's series into the ensemble.
    ///
    /// # Panics
    /// Panics when the series' clock does not match the clock
    /// established by the first push — replications of one scenario
    /// share the metrics interval, so a mismatch means the caller is
    /// aggregating across different scenarios.
    pub fn push_series(&mut self, series: &TimeSeries) {
        if self.replications == 0 {
            self.t_secs = series.times_secs().to_vec();
            self.points = vec![StreamingStats::new(); self.t_secs.len()];
        } else {
            assert_eq!(
                self.t_secs,
                series.times_secs(),
                "ensemble '{}': replication clock mismatch",
                self.name
            );
        }
        for (p, &v) in self.points.iter_mut().zip(series.values()) {
            p.push(v);
        }
        self.replications += 1;
    }

    /// Batch merge of two partial ensembles over the same clock.
    pub fn merge(&mut self, other: &EnsembleSeries) {
        if other.replications == 0 {
            return;
        }
        if self.replications == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.t_secs, other.t_secs,
            "ensemble '{}': merge clock mismatch",
            self.name
        );
        for (p, q) in self.points.iter_mut().zip(&other.points) {
            p.merge(q);
        }
        self.replications += other.replications;
    }

    /// Point-wise mean as a [`TimeSeries`] named `<name>_mean`.
    pub fn mean_series(&self) -> TimeSeries {
        self.map_series("_mean", StreamingStats::mean)
    }

    /// Point-wise Student-t 95 % half-width as a [`TimeSeries`] named
    /// `<name>_ci95`.
    pub fn ci95_series(&self) -> TimeSeries {
        self.map_series("_ci95", |p| {
            let n = p.count();
            if n < 2 {
                0.0
            } else {
                t_critical_95(n - 1) * p.std_dev() / (n as f64).sqrt()
            }
        })
    }

    fn map_series(&self, suffix: &str, f: impl Fn(&StreamingStats) -> f64) -> TimeSeries {
        let mut out = TimeSeries::new(format!("{}{}", self.name, suffix));
        for (&t, p) in self.t_secs.iter().zip(&self.points) {
            out.push(t, f(p));
        }
        out
    }

    /// CSV with `time_h,<name>_mean,<name>_ci95,<name>_min,<name>_max`
    /// columns — the band a figure plots around the replicated series.
    pub fn to_csv(&self) -> String {
        let mut s = format!(
            "time_h,{n}_mean,{n}_ci95,{n}_min,{n}_max\n",
            n = self.name
        );
        let mean = self.mean_series();
        let ci = self.ci95_series();
        for (i, &t) in self.t_secs.iter().enumerate() {
            s.push_str(&format!(
                "{:.4},{:.6},{:.6},{:.6},{:.6}\n",
                t / 3600.0,
                mean.values()[i],
                ci.values()[i],
                self.points[i].min(),
                self.points[i].max(),
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_pins_and_monotonicity() {
        assert!(t_critical_95(0).is_infinite());
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(9), 2.262); // the 10-replication row
        assert_eq!(t_critical_95(30), 2.042);
        assert_eq!(t_critical_95(1_000_000), 1.960);
        let mut prev = t_critical_95(1);
        for df in 2..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t table must be non-increasing at df={df}");
            assert!(t >= 1.959, "t must stay above the normal limit");
            prev = t;
        }
    }

    #[test]
    fn replication_interval_matches_hand_computation() {
        // Five replications with known mean 3 and sample sd 1.5811…
        let r = Replication::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.count(), 5);
        assert_eq!(r.mean(), 3.0);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 5.0);
        let sd = (2.5f64).sqrt();
        assert!((r.std_dev() - sd).abs() < 1e-12);
        let expect = 2.776 * sd / (5.0f64).sqrt();
        assert!((r.ci95_half_width() - expect).abs() < 1e-12);
    }

    #[test]
    fn single_replication_has_zero_width() {
        let r = Replication::from_samples(&[7.0]);
        assert_eq!(r.ci95_half_width(), 0.0);
        assert_eq!(Replication::new().ci95_half_width(), 0.0);
    }

    #[test]
    fn replication_merge_equals_sequential() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).cos() * 5.0).collect();
        let whole = Replication::from_samples(&xs);
        let mut a = Replication::from_samples(&xs[..17]);
        let b = Replication::from_samples(&xs[17..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.ci95_half_width() - whole.ci95_half_width()).abs() < 1e-12);
    }

    fn series(name: &str, vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for (i, &v) in vals.iter().enumerate() {
            s.push(i as f64 * 1800.0, v);
        }
        s
    }

    #[test]
    fn ensemble_mean_and_ci_bands() {
        let mut e = EnsembleSeries::new("active");
        e.push_series(&series("a", &[10.0, 20.0]));
        e.push_series(&series("b", &[14.0, 24.0]));
        e.push_series(&series("c", &[12.0, 22.0]));
        assert_eq!(e.replications(), 3);
        let mean = e.mean_series();
        assert_eq!(mean.name(), "active_mean");
        assert_eq!(mean.values(), &[12.0, 22.0]);
        // sd = 2 at both points; hw = t_{0.975,2} * 2 / sqrt(3)
        let hw = 4.303 * 2.0 / (3.0f64).sqrt();
        for &v in e.ci95_series().values() {
            assert!((v - hw).abs() < 1e-9);
        }
        let csv = e.to_csv();
        assert!(csv.starts_with("time_h,active_mean,active_ci95,active_min,active_max\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn ensemble_merge_equals_sequential() {
        let runs: Vec<Vec<f64>> = (0..6)
            .map(|r| (0..4).map(|i| (r * 4 + i) as f64).collect())
            .collect();
        let mut whole = EnsembleSeries::new("x");
        for r in &runs {
            whole.push_series(&series("s", r));
        }
        let mut a = EnsembleSeries::new("x");
        let mut b = EnsembleSeries::new("x");
        for r in &runs[..2] {
            a.push_series(&series("s", r));
        }
        for r in &runs[2..] {
            b.push_series(&series("s", r));
        }
        a.merge(&b);
        assert_eq!(a.replications(), whole.replications());
        assert_eq!(a.to_csv(), whole.to_csv());
        // Merging an empty ensemble is the identity in either direction.
        let mut empty = EnsembleSeries::new("x");
        empty.merge(&whole);
        assert_eq!(empty.to_csv(), whole.to_csv());
    }

    #[test]
    #[should_panic(expected = "clock mismatch")]
    fn ensemble_rejects_mixed_clocks() {
        let mut e = EnsembleSeries::new("x");
        e.push_series(&series("a", &[1.0, 2.0]));
        let mut other = TimeSeries::new("b");
        other.push(0.0, 1.0);
        other.push(900.0, 2.0); // different interval
        e.push_series(&other);
    }
}
