//! Empirical CDFs over stored samples.
//!
//! Used for the paper's §III claim "more than 98 % of violations are
//! shorter than 30 seconds": violation durations are collected into an
//! [`EmpiricalCdf`] and queried exactly.

use serde::{Deserialize, Serialize};

/// An exact empirical cumulative distribution function.
///
/// Samples are stored and sorted lazily; suitable for the tens of
/// thousands of violation-duration / migration-size samples an
/// experiment produces (not for per-event firehoses — use
/// [`crate::Histogram`] there).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl EmpiricalCdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Raw samples in their current (insertion or sorted) order plus
    /// the sorted flag, for checkpoint capture. Both must round-trip
    /// exactly: re-sorting on restore would reorder equal samples and
    /// break byte-identical re-snapshots.
    pub fn raw_parts(&self) -> (&[f64], bool) {
        (&self.samples, self.sorted)
    }

    /// Rebuilds a CDF from parts captured with
    /// [`raw_parts`](Self::raw_parts).
    pub fn from_raw_parts(samples: Vec<f64>, sorted: bool) -> Self {
        Self { samples, sorted }
    }

    /// Adds a sample. NaN samples are ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= x`; 0 when empty.
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// Quantile `q in [0, 1]` (nearest-rank); NaN when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// Arithmetic mean of the samples; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample; NaN when empty.
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        *self.samples.last().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let mut c = EmpiricalCdf::new();
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_most(10.0), 0.0);
        assert!(c.quantile(0.5).is_nan());
        assert!(c.mean().is_nan());
    }

    #[test]
    fn fraction_at_most_exact() {
        let mut c = EmpiricalCdf::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            c.push(x);
        }
        assert_eq!(c.fraction_at_most(0.5), 0.0);
        assert_eq!(c.fraction_at_most(3.0), 0.6);
        assert_eq!(c.fraction_at_most(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut c = EmpiricalCdf::new();
        for x in 1..=10 {
            c.push(x as f64);
        }
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(0.5), 5.0);
        assert_eq!(c.quantile(1.0), 10.0);
        assert_eq!(c.quantile(0.98), 10.0);
    }

    #[test]
    fn mean_and_max() {
        let mut c = EmpiricalCdf::new();
        c.push(2.0);
        c.push(4.0);
        assert_eq!(c.mean(), 3.0);
        assert_eq!(c.max(), 4.0);
    }

    #[test]
    fn interleaved_push_and_query() {
        let mut c = EmpiricalCdf::new();
        c.push(1.0);
        assert_eq!(c.fraction_at_most(1.0), 1.0);
        c.push(3.0);
        assert_eq!(c.fraction_at_most(1.0), 0.5);
        c.push(2.0);
        assert_eq!(c.quantile(0.5), 2.0);
    }
}
