//! Plain-text table rendering for the claim/comparison tables the
//! experiment binaries print (paper-vs-measured summaries).

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table with a header row.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-separated; cells containing commas are
    /// double-quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` significant decimal places, trimming
/// trailing zeros (used uniformly by the experiment binaries so outputs
/// are diff-stable).
pub fn fmt_num(x: f64, digits: usize) -> String {
    if x.is_nan() {
        return "NaN".to_string();
    }
    let s = format!("{x:.digits$}");
    if s.contains('.') {
        let trimmed = s.trim_end_matches('0').trim_end_matches('.');
        if trimmed.is_empty() || trimmed == "-" || trimmed == "-0" {
            "0".to_string()
        } else {
            trimmed.to_string()
        }
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["metric", "paper", "measured"]);
        t.push_row(["active servers", "45", "44"]);
        t.push_row(["migrations/h", "<200", "163"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("metric"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a"]);
        t.push_row(["x,y"]);
        assert_eq!(t.to_csv(), "a\n\"x,y\"\n");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new(["a"]);
        t.push_row(["say \"hi\",ok"]);
        assert_eq!(t.to_csv(), "a\n\"say \"\"hi\"\",ok\"\n");
    }

    #[test]
    fn fmt_num_trims() {
        assert_eq!(fmt_num(1.5000, 4), "1.5");
        assert_eq!(fmt_num(0.0, 3), "0");
        assert_eq!(fmt_num(2.0, 2), "2");
        assert_eq!(fmt_num(f64::NAN, 2), "NaN");
        assert_eq!(fmt_num(-0.001, 1), "0");
    }
}
