//! Per-hour event counters.
//!
//! The paper reports migration and server-switch rates as events **per
//! hour** (Figs. 9 and 10). [`HourlyCounter`] buckets raw event
//! timestamps into hour-wide bins.

use serde::{Deserialize, Serialize};

/// Buckets timestamped events into fixed one-hour bins.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HourlyCounter {
    name: String,
    counts: Vec<u64>,
}

impl HourlyCounter {
    /// Creates a counter labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            counts: Vec::new(),
        }
    }

    /// Counter label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw per-hour bins (index = hour), for checkpoint capture.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a counter from raw parts, for checkpoint restore.
    pub fn from_parts(name: String, counts: Vec<u64>) -> Self {
        Self { name, counts }
    }

    /// Records one event at `t_secs` seconds of simulated time.
    ///
    /// # Panics
    /// Panics on negative or non-finite timestamps.
    pub fn record(&mut self, t_secs: f64) {
        assert!(
            t_secs.is_finite() && t_secs >= 0.0,
            "event timestamp must be finite and non-negative, got {t_secs}"
        );
        let hour = (t_secs / 3600.0) as usize;
        if hour >= self.counts.len() {
            self.counts.resize(hour + 1, 0);
        }
        self.counts[hour] += 1;
    }

    /// Events in hour `h` (0 when never touched).
    pub fn count_in_hour(&self, h: usize) -> u64 {
        self.counts.get(h).copied().unwrap_or(0)
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(hour, count)` pairs padded with zeros up to `hours` (the figure
    /// binaries pad so every hour of the run appears even if empty).
    pub fn per_hour(&self, hours: usize) -> Vec<(usize, u64)> {
        (0..hours.max(self.counts.len()))
            .map(|h| (h, self.count_in_hour(h)))
            .collect()
    }

    /// Maximum per-hour count over the first `hours` hours.
    pub fn max_per_hour(&self, hours: usize) -> u64 {
        self.per_hour(hours)
            .into_iter()
            .map(|(_, c)| c)
            .max()
            .unwrap_or(0)
    }

    /// Mean events per hour over the first `hours` hours (zero-padded).
    pub fn mean_per_hour(&self, hours: usize) -> f64 {
        if hours == 0 {
            return 0.0;
        }
        let total: u64 = (0..hours).map(|h| self.count_in_hour(h)).sum();
        total as f64 / hours as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_hour() {
        let mut c = HourlyCounter::new("migrations");
        c.record(0.0);
        c.record(3599.9);
        c.record(3600.0);
        c.record(7200.0);
        assert_eq!(c.count_in_hour(0), 2);
        assert_eq!(c.count_in_hour(1), 1);
        assert_eq!(c.count_in_hour(2), 1);
        assert_eq!(c.count_in_hour(3), 0);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn per_hour_pads_with_zeros() {
        let mut c = HourlyCounter::new("x");
        c.record(10.0);
        let rows = c.per_hour(3);
        assert_eq!(rows, vec![(0, 1), (1, 0), (2, 0)]);
    }

    #[test]
    fn stats() {
        let mut c = HourlyCounter::new("x");
        for _ in 0..6 {
            c.record(100.0);
        }
        c.record(3700.0);
        assert_eq!(c.max_per_hour(2), 6);
        assert!((c.mean_per_hour(2) - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_time() {
        HourlyCounter::new("x").record(-1.0);
    }
}
