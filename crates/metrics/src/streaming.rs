//! Single-pass streaming statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean / variance / extrema accumulator.
///
/// Uses Welford's online algorithm, so it can ingest millions of samples
/// (one per simulation event) without storing them and without the
/// catastrophic cancellation of the naive sum-of-squares approach.
///
/// ```
/// use ecocloud_metrics::StreamingStats;
/// let mut s = StreamingStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// Not derived: the zeroed derive would start `min`/`max` at 0.0 instead
// of the empty sentinels, silently clamping extrema of all-positive or
// all-negative samples.
impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Raw accumulator state `(count, mean, m2, min, max)`, for
    /// checkpoint capture (`m2` has no other accessor; `variance()`
    /// rounds through a division and would not restore bit-exactly).
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from parts captured with
    /// [`raw_parts`](Self::raw_parts).
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Ingests one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Ingests every sample of a slice.
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of samples ingested so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (Bessel-corrected) variance; 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed all samples of `other` into `self`.
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_infinite());
        assert!(s.max().is_infinite());
    }

    #[test]
    fn single_sample() {
        let mut s = StreamingStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut s = StreamingStats::new();
        s.extend_from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let mut whole = StreamingStats::new();
        whole.extend_from_slice(&xs);

        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        a.extend_from_slice(&xs[..123]);
        b.extend_from_slice(&xs[123..]);
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), 1.5);
    }

    #[test]
    fn default_matches_new() {
        // Regression: a derived Default once zeroed the extrema
        // sentinels, so min() of all-positive samples came out 0.
        let mut d = StreamingStats::default();
        assert!(d.min().is_infinite());
        assert!(d.max().is_infinite());
        d.push(3.0);
        d.push(5.0);
        assert_eq!(d.min(), 3.0);
        assert_eq!(d.max(), 5.0);
    }
}
