//! Terminal sparklines.
//!
//! Every figure binary prints its series as CSV *and* as a one-line
//! unicode sparkline so the qualitative shape (diurnal waves,
//! consolidation ramps) is visible directly in the terminal without
//! plotting tools.

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline of at most `width` characters.
///
/// Values are min-max normalized; when all values are equal a flat
/// mid-height line is produced. Longer series are downsampled by
/// averaging consecutive chunks. NaN values render as spaces.
///
/// ```
/// use ecocloud_metrics::sparkline;
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
/// assert_eq!(s.chars().count(), 4);
/// ```
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // Downsample into at most `width` buckets by chunk-averaging.
    let n = values.len();
    let buckets = width.min(n);
    let mut compact = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let lo = b * n / buckets;
        let hi = ((b + 1) * n / buckets).max(lo + 1);
        let chunk = &values[lo..hi];
        let finite: Vec<f64> = chunk.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            compact.push(f64::NAN);
        } else {
            compact.push(finite.iter().sum::<f64>() / finite.len() as f64);
        }
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &compact {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        return " ".repeat(buckets);
    }
    let span = hi - lo;
    compact
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if span == 0.0 {
                BARS[3]
            } else {
                let idx = (((v - lo) / span) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
    }

    #[test]
    fn ramp_is_monotone() {
        let v: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let s = sparkline(&v, 8);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn constant_series_is_flat() {
        let s = sparkline(&[5.0; 6], 6);
        assert!(s.chars().all(|c| c == '▄'));
    }

    #[test]
    fn downsamples_long_series() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = sparkline(&v, 10);
        assert_eq!(s.chars().count(), 10);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn nan_renders_as_space() {
        let s = sparkline(&[f64::NAN, 1.0, 2.0], 3);
        assert!(s.starts_with(' '));
    }

    #[test]
    fn all_nan_is_blank() {
        let s = sparkline(&[f64::NAN, f64::NAN], 2);
        assert_eq!(s, "  ");
    }
}
