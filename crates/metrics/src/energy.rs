//! Energy integration: turns a piecewise-constant power draw into
//! consumed energy (the quantity behind the paper's Fig. 8 and every
//! "energy saving" claim).

use serde::{Deserialize, Serialize};

/// Integrates piecewise-constant power (watts) over simulated time.
///
/// The simulator's power draw only changes at events (demand updates,
/// migrations, switches), so between two `update` calls the previous
/// power level is held — exact left-Riemann integration, not an
/// approximation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyIntegrator {
    last_t_secs: f64,
    last_power_w: f64,
    energy_j: f64,
}

impl Default for EnergyIntegrator {
    fn default() -> Self {
        Self::new()
    }
}

impl EnergyIntegrator {
    /// Creates an integrator starting at time 0 with zero power.
    pub fn new() -> Self {
        Self {
            last_t_secs: 0.0,
            last_power_w: 0.0,
            energy_j: 0.0,
        }
    }

    /// Rebuilds an integrator from raw parts, for checkpoint restore.
    pub fn from_parts(last_t_secs: f64, last_power_w: f64, energy_j: f64) -> Self {
        Self {
            last_t_secs,
            last_power_w,
            energy_j,
        }
    }

    /// Records that from `last update` until `t_secs` the power held its
    /// previous value, and that it is `power_w` from now on.
    ///
    /// # Panics
    /// Panics if time goes backwards or the power is negative/non-finite.
    pub fn update(&mut self, t_secs: f64, power_w: f64) {
        assert!(
            t_secs >= self.last_t_secs,
            "energy integrator time went backwards ({} < {})",
            t_secs,
            self.last_t_secs
        );
        assert!(
            power_w.is_finite() && power_w >= 0.0,
            "power must be finite and non-negative, got {power_w}"
        );
        self.energy_j += self.last_power_w * (t_secs - self.last_t_secs);
        self.last_t_secs = t_secs;
        self.last_power_w = power_w;
    }

    /// Total energy consumed so far, in joules (up to the last `update`).
    pub fn energy_joules(&self) -> f64 {
        self.energy_j
    }

    /// Total energy consumed so far, in kilowatt-hours.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_j / 3.6e6
    }

    /// Current power level, in watts.
    pub fn current_power_w(&self) -> f64 {
        self.last_power_w
    }

    /// Time of the last update, in seconds.
    pub fn last_time_secs(&self) -> f64 {
        self.last_t_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_piecewise_constant_power() {
        let mut e = EnergyIntegrator::new();
        e.update(0.0, 100.0); // 100 W from t=0
        e.update(3600.0, 200.0); // 1 h at 100 W = 0.1 kWh
        assert!((e.energy_kwh() - 0.1).abs() < 1e-12);
        e.update(7200.0, 0.0); // 1 h at 200 W = 0.2 kWh more
        assert!((e.energy_kwh() - 0.3).abs() < 1e-12);
        e.update(10800.0, 0.0); // 1 h at 0 W
        assert!((e.energy_kwh() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_length_update_adds_nothing() {
        let mut e = EnergyIntegrator::new();
        e.update(5.0, 50.0);
        let before = e.energy_joules();
        e.update(5.0, 75.0);
        assert_eq!(e.energy_joules(), before);
        assert_eq!(e.current_power_w(), 75.0);
    }

    #[test]
    fn energy_is_monotone() {
        let mut e = EnergyIntegrator::new();
        let mut prev = 0.0;
        for i in 0..100 {
            e.update(i as f64, (i % 7) as f64 * 10.0);
            assert!(e.energy_joules() >= prev);
            prev = e.energy_joules();
        }
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_travel() {
        let mut e = EnergyIntegrator::new();
        e.update(10.0, 1.0);
        e.update(9.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_power() {
        let mut e = EnergyIntegrator::new();
        e.update(1.0, -5.0);
    }
}
