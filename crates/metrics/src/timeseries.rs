//! Sampled time series — the backbone of every line figure in the paper
//! (Figs. 6–13 all plot quantities against simulated hours).

use serde::{Deserialize, Serialize};

/// A `(time, value)` series with strictly non-decreasing time stamps.
///
/// Time is stored in seconds; accessors convert to hours because the
/// paper's figures all use hours on the x-axis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    t_secs: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            t_secs: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Series label (used as the CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rebuilds a series from raw parts, for checkpoint restore.
    ///
    /// # Panics
    /// Panics when the vectors disagree in length or the timestamps
    /// are not non-decreasing — a snapshot violating either was not
    /// produced by [`push`](Self::push).
    pub fn from_parts(name: String, t_secs: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(
            t_secs.len(),
            values.len(),
            "time series '{name}' parts disagree in length"
        );
        assert!(
            t_secs.windows(2).all(|w| w[1] >= w[0]),
            "time series '{name}' timestamps out of order"
        );
        Self {
            name,
            t_secs,
            values,
        }
    }

    /// Appends a sample at time `t_secs` (seconds).
    ///
    /// # Panics
    /// Panics if `t_secs` is earlier than the previous sample — the
    /// simulator produces samples in event order and a violation here
    /// indicates a kernel bug.
    pub fn push(&mut self, t_secs: f64, value: f64) {
        if let Some(&last) = self.t_secs.last() {
            assert!(
                t_secs >= last,
                "time series '{}' must be pushed in order ({} < {})",
                self.name,
                t_secs,
                last
            );
        }
        self.t_secs.push(t_secs);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamps in seconds.
    pub fn times_secs(&self) -> &[f64] {
        &self.t_secs
    }

    /// Timestamps converted to hours.
    pub fn times_hours(&self) -> Vec<f64> {
        self.t_secs.iter().map(|t| t / 3600.0).collect()
    }

    /// Recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Largest recorded value; NaN when empty.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
    }

    /// Smallest recorded value; NaN when empty.
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
    }

    /// Time-weighted mean of the series (trapezoidal); NaN when fewer
    /// than two samples. This is the right average for quantities like
    /// "number of active servers".
    pub fn time_weighted_mean(&self) -> f64 {
        if self.len() < 2 {
            return f64::NAN;
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for i in 1..self.len() {
            let dt = self.t_secs[i] - self.t_secs[i - 1];
            area += 0.5 * (self.values[i] + self.values[i - 1]) * dt;
            span += dt;
        }
        if span == 0.0 {
            self.values[0]
        } else {
            area / span
        }
    }

    /// Value at time `t_secs` by linear interpolation (clamped at the
    /// ends); NaN when empty.
    pub fn interpolate(&self, t_secs: f64) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        if t_secs <= self.t_secs[0] {
            return self.values[0];
        }
        if t_secs >= *self.t_secs.last().expect("non-empty") {
            return *self.values.last().expect("non-empty");
        }
        let i = self.t_secs.partition_point(|&t| t <= t_secs);
        let (t0, t1) = (self.t_secs[i - 1], self.t_secs[i]);
        let (v0, v1) = (self.values[i - 1], self.values[i]);
        if t1 == t0 {
            v1
        } else {
            v0 + (v1 - v0) * (t_secs - t0) / (t1 - t0)
        }
    }
}

/// A bundle of time series sharing one clock, rendered as a single CSV
/// with a `time_h` column — the exact format the figure binaries print.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeriesBundle {
    series: Vec<TimeSeries>,
}

impl SeriesBundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a series to the bundle.
    pub fn push(&mut self, s: TimeSeries) {
        self.series.push(s);
    }

    /// Contained series.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Renders the bundle as CSV keyed by the first series' timestamps.
    ///
    /// All series are expected to share timestamps (the figure runners
    /// sample everything from one `MetricsSample` event); series with
    /// differing clocks are linearly interpolated onto the first one's.
    pub fn to_csv(&self) -> String {
        let Some(first) = self.series.first() else {
            return String::from("time_h\n");
        };
        let mut out = String::from("time_h");
        for s in &self.series {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for (i, &t) in first.times_secs().iter().enumerate() {
            out.push_str(&format!("{:.4}", t / 3600.0));
            for s in &self.series {
                let v = if s.times_secs().len() == first.times_secs().len() {
                    s.values()[i]
                } else {
                    s.interpolate(t)
                };
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut ts = TimeSeries::new("load");
        ts.push(0.0, 1.0);
        ts.push(3600.0, 2.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.times_hours(), vec![0.0, 1.0]);
        assert_eq!(ts.max(), 2.0);
        assert_eq!(ts.min(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be pushed in order")]
    fn rejects_time_travel() {
        let mut ts = TimeSeries::new("x");
        ts.push(10.0, 1.0);
        ts.push(5.0, 2.0);
    }

    #[test]
    fn interpolation() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 0.0);
        ts.push(10.0, 10.0);
        assert_eq!(ts.interpolate(5.0), 5.0);
        assert_eq!(ts.interpolate(-1.0), 0.0);
        assert_eq!(ts.interpolate(99.0), 10.0);
    }

    #[test]
    fn time_weighted_mean_of_step() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 0.0);
        ts.push(10.0, 10.0);
        // trapezoid: mean of a linear ramp = 5
        assert!((ts.time_weighted_mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bundle_csv_shape() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        a.push(0.0, 1.0);
        a.push(3600.0, 2.0);
        b.push(0.0, 3.0);
        b.push(3600.0, 4.0);
        let mut bundle = SeriesBundle::new();
        bundle.push(a);
        bundle.push(b);
        let csv = bundle.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_h,a,b"));
        assert!(lines.next().expect("row 0").starts_with("0.0000,1.0"));
        assert!(lines.next().expect("row 1").starts_with("1.0000,2.0"));
    }

    #[test]
    fn empty_bundle_csv() {
        assert_eq!(SeriesBundle::new().to_csv(), "time_h\n");
    }
}
