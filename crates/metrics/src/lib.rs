//! Statistics and reporting utilities for the ecoCloud reproduction.
//!
//! This crate is the shared measurement substrate used by the simulator
//! (the `dcsim` crate, which depends on this one), the analytical model
//! and every experiment binary. It deliberately contains no simulation
//! logic: only streaming statistics, histograms, empirical CDFs, time
//! series, per-bucket counters, cross-replication aggregation, energy
//! integration and plain-text table/CSV rendering.
//!
//! Everything is `serde`-serializable so experiment outputs can be written
//! to JSON and re-loaded by other tools.

pub mod cdf;
pub mod counters;
pub mod energy;
pub mod histogram;
pub mod replication;
pub mod sparkline;
pub mod streaming;
pub mod table;
pub mod timeseries;

pub use cdf::EmpiricalCdf;
pub use counters::HourlyCounter;
pub use energy::EnergyIntegrator;
pub use histogram::Histogram;
pub use replication::{EnsembleSeries, Replication};
pub use sparkline::sparkline;
pub use streaming::StreamingStats;
pub use table::Table;
pub use timeseries::TimeSeries;
