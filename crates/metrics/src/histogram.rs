//! Fixed-bin histograms used to regenerate the paper's distribution figures
//! (Fig. 4: average VM CPU utilization, Fig. 5: deviation from the per-VM
//! average).

use serde::{Deserialize, Serialize};

/// An equal-width histogram over `[lo, hi)` with values outside the range
/// clamped into the first / last bin.
///
/// Clamping (rather than dropping) mirrors how the paper's figures bin
/// their x-axes: Fig. 5 runs from -40 to +40 percentage points and larger
/// excursions still appear at the edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Index of the bin a value falls into (after clamping).
    fn bin_of(&self, x: f64) -> usize {
        let w = self.bin_width();
        let idx = ((x - self.lo) / w).floor();
        if idx < 0.0 {
            0
        } else if idx as usize >= self.counts.len() {
            self.counts.len() - 1
        } else {
            idx as usize
        }
    }

    /// Ingests one sample. NaN samples are ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Ingests every sample of a slice.
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Total number of ingested samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Relative frequency of bin `i` (counts / total); 0 when empty.
    pub fn frequency(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// `(bin_center, relative_frequency)` pairs — the series the paper's
    /// distribution figures plot.
    pub fn frequencies(&self) -> Vec<(f64, f64)> {
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.frequency(i)))
            .collect()
    }

    /// Fraction of samples with value strictly below `x` (bin-resolution
    /// approximation: bins entirely below `x` count fully, the straddling
    /// bin counts proportionally).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = self.bin_width();
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let b_lo = self.lo + i as f64 * w;
            let b_hi = b_lo + w;
            if b_hi <= x {
                acc += c as f64;
            } else if b_lo < x {
                acc += c as f64 * (x - b_lo) / w;
            }
        }
        acc / self.total as f64
    }

    /// Approximate quantile `q in [0,1]` from bin boundaries (linear
    /// interpolation within the straddling bin).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return f64::NAN;
        }
        let target = q * self.total as f64;
        let mut acc = 0.0;
        let w = self.bin_width();
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - acc) / c as f64
                };
                return self.lo + (i as f64 + frac) * w;
            }
            acc = next;
        }
        self.hi
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if bounds or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins(), other.bins(), "bin count mismatch");
        assert_eq!(self.lo, other.lo, "lower bound mismatch");
        assert_eq!(self.hi, other.hi, "upper bound mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bins_values_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.5); // bin 0
        h.push(9.99); // bin 9
        h.push(5.0); // bin 5
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(7.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn ignores_nan() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(-1.0, 1.0, 7);
        for i in 0..100 {
            h.push((i as f64 / 50.0) - 1.0);
        }
        let sum: f64 = h.frequencies().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_endpoints() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert!((h.fraction_below(0.0)).abs() < 1e-12);
        assert!((h.fraction_below(10.0) - 1.0).abs() < 1e-12);
        assert!((h.fraction_below(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_median_of_uniform() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..1000 {
            h.push(i as f64 / 1000.0);
        }
        assert!((h.quantile(0.5) - 0.5).abs() < 0.02);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.push(0.1);
        b.push(0.9);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }

    proptest! {
        #[test]
        fn prop_total_matches_pushes(xs in proptest::collection::vec(-1e3f64..1e3, 0..200)) {
            let mut h = Histogram::new(-10.0, 10.0, 16);
            h.extend_from_slice(&xs);
            prop_assert_eq!(h.total(), xs.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
        }

        #[test]
        fn prop_quantile_is_monotone(
            xs in proptest::collection::vec(0.0f64..1.0, 1..200),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let mut h = Histogram::new(0.0, 1.0, 32);
            h.extend_from_slice(&xs);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(h.quantile(lo) <= h.quantile(hi) + 1e-12);
        }

        #[test]
        fn prop_fraction_below_is_monotone_cdf(
            xs in proptest::collection::vec(-5.0f64..5.0, 1..200),
            t1 in -6.0f64..6.0,
            t2 in -6.0f64..6.0,
        ) {
            let mut h = Histogram::new(-5.0, 5.0, 20);
            h.extend_from_slice(&xs);
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(h.fraction_below(lo) <= h.fraction_below(hi) + 1e-12);
            prop_assert!(h.fraction_below(hi) <= 1.0 + 1e-12);
            prop_assert!(h.fraction_below(lo) >= -1e-12);
        }
    }
}
