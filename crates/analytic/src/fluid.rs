//! The fluid ODE model of the assignment procedure (paper §IV).
//!
//! The state is the vector of server utilizations `u_s(t) ∈ [0, 1]`,
//! evolving as (Eq. 5, with the share normalization of
//! [`crate::share`]):
//!
//! ```text
//! du_s/dt = −N_c μ(t) u_s(t) + λ(t) · w̄ · A_s(t)
//! ```
//!
//! * `λ(t)` — VM arrival rate (VMs/second),
//! * `N_c μ(t)` — the per-VM departure rate (the paper expresses it as
//!   a per-core service rate `μ`; a uniformly random departing VM
//!   removes utilization proportional to `u_s`),
//! * `w̄` — mean VM load as a fraction of one server's capacity (the
//!   fluid "quantum" of utilization; the paper's unit-VM assumption),
//! * `A_s(t)` — the assignment share, computed from
//!   `f_a(u_i(t))` either exactly (Eqs. 6–9) or with the simplified
//!   proportional rule (Eq. 11).
//!
//! Servers are *activated* when the probability that an arriving VM
//! finds no volunteer exceeds a threshold (the fluid analogue of the
//! manager's wake-up rule) and *hibernated* when their utilization
//! decays below `u_off`. Integration is classic fixed-step RK4.

use crate::share::{exact_shares, simplified_shares};
use ecocloud_core::AssignmentFunction;
use serde::{Deserialize, Serialize};

/// Which share formula drives the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShareModel {
    /// Corrected Eqs. 6–9 (combinatorial, exact).
    Exact,
    /// Eq. 11 (proportional, `O(N)`).
    Simplified,
}

/// Configuration of the fluid model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidConfig {
    /// Assignment function `f_a` (paper: `T_a = 0.9`, `p = 3`).
    pub fa: AssignmentFunction,
    /// Exact or simplified shares.
    pub share_model: ShareModel,
    /// Mean VM load as a fraction of one server's capacity (`w̄`).
    pub mean_vm_load: f64,
    /// RK4 time step, seconds.
    pub dt_secs: f64,
    /// Cadence of the activation/hibernation controller, seconds.
    pub control_interval_secs: f64,
    /// Wake a server when `Π (1 − f_a(u_i))` over active servers
    /// exceeds this (arrivals are likely to find no volunteer).
    pub wake_reject_threshold: f64,
    /// Seed utilization granted to a freshly activated server (must
    /// exceed `u_off`; `f_a(0) = 0` would otherwise starve it).
    pub u_seed: f64,
    /// Hibernate an active server when its utilization decays below
    /// this value.
    pub u_off: f64,
    /// Minimum age before a freshly activated server may hibernate,
    /// seconds (gives the seed time to attract load — the paper's
    /// Fig. 13 shows surplus activations decaying away naturally).
    pub min_age_secs: f64,
    /// Recording cadence for the solution, seconds.
    pub sample_interval_secs: f64,
}

impl FluidConfig {
    /// Parameters matching the paper's §IV experiment.
    pub fn paper(share_model: ShareModel, mean_vm_load: f64) -> Self {
        Self {
            fa: AssignmentFunction::paper(),
            share_model,
            mean_vm_load,
            dt_secs: 10.0,
            control_interval_secs: 60.0,
            wake_reject_threshold: 0.5,
            u_seed: 0.02,
            u_off: 0.005,
            min_age_secs: 600.0,
            sample_interval_secs: 1800.0,
        }
    }

    fn validate(&self) {
        assert!(self.mean_vm_load > 0.0, "mean VM load must be positive");
        assert!(self.dt_secs > 0.0, "dt must be positive");
        assert!(self.u_seed > self.u_off, "u_seed must exceed u_off");
        assert!(
            (0.0..=1.0).contains(&self.wake_reject_threshold),
            "wake threshold is a probability"
        );
    }
}

/// The recorded solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidSolution {
    /// Sample times, seconds.
    pub times_secs: Vec<f64>,
    /// Per-sample utilization of every server (hibernated = 0).
    pub u: Vec<Vec<f32>>,
    /// Per-sample count of active servers.
    pub active_count: Vec<usize>,
    /// Per-sample overall load (`Σ u_s / N_s`, for homogeneous fleets
    /// this equals demand over total capacity).
    pub overall_load: Vec<f64>,
    /// Total activations performed by the controller.
    pub activations: u64,
    /// Total hibernations performed by the controller.
    pub hibernations: u64,
}

impl FluidSolution {
    /// Number of active servers at the final sample.
    pub fn final_active(&self) -> usize {
        *self.active_count.last().expect("solution has samples")
    }
}

/// The fluid model of the assignment-only data center.
pub struct FluidModel {
    config: FluidConfig,
    /// λ(t) in VMs/second.
    lambda: Box<dyn Fn(f64) -> f64>,
    /// Per-VM departure rate (the paper's `N_c μ(t)`), 1/second.
    departure_rate: Box<dyn Fn(f64) -> f64>,
    /// Multiplicative per-VM demand envelope `e(t)` (default 1).
    demand_envelope: Box<dyn Fn(f64) -> f64>,
}

impl FluidModel {
    /// Creates a model with time-varying rates.
    pub fn new(
        config: FluidConfig,
        lambda: impl Fn(f64) -> f64 + 'static,
        departure_rate: impl Fn(f64) -> f64 + 'static,
    ) -> Self {
        config.validate();
        Self {
            config,
            lambda: Box::new(lambda),
            departure_rate: Box::new(departure_rate),
            demand_envelope: Box::new(|_| 1.0),
        }
    }

    /// Adds a per-VM demand envelope `e(t)`: the instantaneous VM load
    /// becomes `w̄ · e(t)`, so `u_s = n_s · w̄ · e(t)` and the chain
    /// rule contributes an extra `u_s · e'(t)/e(t)` term to Eq. 5 —
    /// this is how the paper's diurnal demand pattern (the traces'
    /// day/night swing) enters the analytical model alongside the
    /// arrival/departure dynamics.
    pub fn with_demand_envelope(mut self, envelope: impl Fn(f64) -> f64 + 'static) -> Self {
        self.demand_envelope = Box::new(envelope);
        self
    }

    fn shares(&self, f: &[f64]) -> Vec<f64> {
        match self.config.share_model {
            ShareModel::Exact => exact_shares(f),
            ShareModel::Simplified => simplified_shares(f),
        }
    }

    /// Right-hand side of the ODE for the active servers.
    /// `u` and the returned vector are indexed like `active`.
    fn rhs(&self, t: f64, u: &[f64], active: &[bool]) -> Vec<f64> {
        let lambda = (self.lambda)(t);
        let dep = (self.departure_rate)(t);
        let env = (self.demand_envelope)(t).max(1e-9);
        // Logarithmic derivative of the envelope (central difference):
        // existing VMs' demands scale with e(t), so utilization carries
        // a u·e'/e drift on top of the arrival/departure balance.
        let h = 30.0;
        let env_p = (self.demand_envelope)(t + h).max(1e-9);
        let env_m = (self.demand_envelope)((t - h).max(0.0)).max(1e-9);
        let dlog_env = (env_p - env_m) / ((t + h - (t - h).max(0.0)) * env);
        let f: Vec<f64> = u
            .iter()
            .zip(active)
            .map(|(&ui, &a)| if a { self.config.fa.eval(ui) } else { 0.0 })
            .collect();
        let shares = self.shares(&f);
        u.iter()
            .zip(active)
            .zip(&shares)
            .map(|((&ui, &a), &share)| {
                if !a {
                    0.0
                } else {
                    -dep * ui + lambda * self.config.mean_vm_load * env * share + ui * dlog_env
                }
            })
            .collect()
    }

    /// Integrates the model from `u0` over `[0, duration]`.
    ///
    /// Servers with `u0 > 0` start active; the rest start hibernated.
    pub fn solve(&self, u0: &[f64], duration_secs: f64) -> FluidSolution {
        let n = u0.len();
        assert!(n > 0, "need at least one server");
        let mut u: Vec<f64> = u0.to_vec();
        let mut active: Vec<bool> = u0.iter().map(|&x| x > 0.0).collect();
        let mut activated_at: Vec<f64> = vec![0.0; n];
        let dt = self.config.dt_secs;
        let mut next_control = 0.0;
        let mut next_sample = 0.0;
        let mut out = FluidSolution {
            times_secs: Vec::new(),
            u: Vec::new(),
            active_count: Vec::new(),
            overall_load: Vec::new(),
            activations: 0,
            hibernations: 0,
        };
        let mut t = 0.0;
        loop {
            if t >= next_sample - 1e-9 {
                out.times_secs.push(t);
                out.u.push(u.iter().map(|&x| x as f32).collect());
                out.active_count.push(active.iter().filter(|&&a| a).count());
                out.overall_load.push(u.iter().sum::<f64>() / n as f64);
                next_sample += self.config.sample_interval_secs;
            }
            if t >= duration_secs - 1e-9 {
                break;
            }
            if t >= next_control - 1e-9 {
                self.control(t, &mut u, &mut active, &mut activated_at, &mut out);
                next_control += self.config.control_interval_secs;
            }
            // One RK4 step on the active subsystem.
            let h = dt.min(duration_secs - t);
            let k1 = self.rhs(t, &u, &active);
            let u2: Vec<f64> = u.iter().zip(&k1).map(|(x, k)| x + 0.5 * h * k).collect();
            let k2 = self.rhs(t + 0.5 * h, &u2, &active);
            let u3: Vec<f64> = u.iter().zip(&k2).map(|(x, k)| x + 0.5 * h * k).collect();
            let k3 = self.rhs(t + 0.5 * h, &u3, &active);
            let u4: Vec<f64> = u.iter().zip(&k3).map(|(x, k)| x + h * k).collect();
            let k4 = self.rhs(t + h, &u4, &active);
            for i in 0..n {
                u[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                u[i] = u[i].clamp(0.0, 1.0);
            }
            t += h;
        }
        out
    }

    /// Activation / hibernation controller (the fluid analogue of the
    /// manager's wake-up and the idle server's switch-off).
    fn control(
        &self,
        t: f64,
        u: &mut [f64],
        active: &mut [bool],
        activated_at: &mut [f64],
        out: &mut FluidSolution,
    ) {
        // Hibernate decayed servers.
        for i in 0..u.len() {
            if active[i]
                && u[i] < self.config.u_off
                && t - activated_at[i] >= self.config.min_age_secs
            {
                active[i] = false;
                u[i] = 0.0;
                out.hibernations += 1;
            }
        }
        // Wake a server when arrivals are likely to find no volunteer.
        // With no arrival stream there is nothing to place and no
        // reason to wake anyone.
        if (self.lambda)(t) <= 0.0 {
            return;
        }
        let reject_prob: f64 = u
            .iter()
            .zip(active.iter())
            .filter(|&(_, &a)| a)
            .map(|(&ui, _)| 1.0 - self.config.fa.eval(ui))
            .product();
        if reject_prob > self.config.wake_reject_threshold {
            if let Some(i) = (0..u.len()).find(|&i| !active[i]) {
                active[i] = true;
                u[i] = self.config.u_seed;
                activated_at[i] = t;
                out.activations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(share: ShareModel, lambda: f64, dep: f64) -> FluidModel {
        FluidModel::new(
            FluidConfig::paper(share, 0.02),
            move |_| lambda,
            move |_| dep,
        )
    }

    #[test]
    fn no_arrivals_drains_everything() {
        let m = model(ShareModel::Simplified, 0.0, 1.0 / 3600.0);
        let sol = m.solve(&[0.3; 10], 12.0 * 3600.0);
        // After 12 mean lifetimes every server has decayed and
        // hibernated.
        assert_eq!(sol.final_active(), 0);
        assert!(sol.hibernations >= 10);
    }

    #[test]
    fn consolidation_from_spread_initial_state() {
        // 20 servers at ~20 % with sustained churn: steady state packs
        // the load on a few servers near T_a (the Fig. 13 behaviour).
        // Total load 20·0.2 = 4.0 server-equivalents. λ w̄ / dep
        // balances at that load: dep = 1/2h per VM, λ = load·dep/w̄.
        let dep = 1.0 / (2.0 * 3600.0);
        let lambda = 4.0 * dep / 0.02;
        let m = model(ShareModel::Simplified, lambda, dep);
        // Slightly heterogeneous initial utilizations (mean 0.2): a
        // perfectly symmetric state is an unstable equilibrium of the
        // deterministic ODE and would never break symmetry — the
        // paper's Fig. 13 likewise starts from the sim's uneven
        // initial placement.
        let u0: Vec<f64> = (0..20).map(|i| 0.15 + 0.005 * i as f64).collect();
        let sol = m.solve(&u0, 12.0 * 3600.0);
        let active = sol.final_active();
        // ≈ 4.0 / 0.9 ≈ 4.4 → expect 4–7 servers, certainly not 20.
        assert!(
            (4..=8).contains(&active),
            "consolidated to {active} servers"
        );
        // Active servers sit near the threshold.
        let last = sol.u.last().expect("samples");
        let near_ta = last.iter().filter(|&&x| x > 0.7).count();
        assert!(near_ta >= active.saturating_sub(2), "servers not filled");
    }

    #[test]
    fn exact_and_simplified_agree_closely() {
        let dep = 1.0 / 3600.0;
        let lambda = 3.0 * dep / 0.02;
        let run = |share| {
            let m = model(share, lambda, dep);
            m.solve(&[0.25; 12], 6.0 * 3600.0)
        };
        let e = run(ShareModel::Exact);
        let s = run(ShareModel::Simplified);
        // §IV: "the results of this model proved to be very close to
        // those of the exact model" — final active counts within 2.
        let diff = (e.final_active() as i64 - s.final_active() as i64).abs();
        assert!(
            diff <= 2,
            "exact {} vs simplified {}",
            e.final_active(),
            s.final_active()
        );
    }

    #[test]
    fn growing_load_activates_servers() {
        // Start with one tiny server and a heavy arrival stream: the
        // controller must activate more servers.
        let dep = 1.0 / 3600.0;
        let lambda = 6.0 * dep / 0.02; // 6 server-equivalents of load
        let m = model(ShareModel::Simplified, lambda, dep);
        let mut u0 = vec![0.0; 15];
        u0[0] = 0.3;
        let sol = m.solve(&u0, 8.0 * 3600.0);
        assert!(sol.activations > 0, "controller never woke a server");
        assert!(
            sol.final_active() >= 6,
            "only {} active for 6 servers of load",
            sol.final_active()
        );
    }

    #[test]
    fn utilizations_stay_in_unit_interval() {
        let dep = 1.0 / 1800.0;
        let lambda = 10.0 * dep / 0.02;
        let m = model(ShareModel::Simplified, lambda, dep);
        let sol = m.solve(&[0.5; 8], 4.0 * 3600.0);
        for row in &sol.u {
            for &x in row {
                assert!((0.0..=1.0).contains(&(x as f64)), "u = {x}");
            }
        }
    }

    #[test]
    fn sampling_cadence() {
        let m = model(ShareModel::Simplified, 0.0, 1.0 / 3600.0);
        let sol = m.solve(&[0.1; 3], 2.0 * 3600.0);
        // Samples at 0, 1800, 3600, 5400, 7200 s.
        assert_eq!(sol.times_secs.len(), 5);
        assert!((sol.times_secs[1] - 1800.0).abs() < 1.0);
    }

    #[test]
    fn time_varying_lambda_is_honoured() {
        // λ jumps at t = 1 h from 0 to heavy: activity must follow.
        let dep = 1.0 / 3600.0;
        let heavy = 5.0 * dep / 0.02;
        let m = FluidModel::new(
            FluidConfig::paper(ShareModel::Simplified, 0.02),
            move |t| if t < 3600.0 { 0.0 } else { heavy },
            move |_| dep,
        );
        let mut u0 = vec![0.0; 10];
        u0[0] = 0.4;
        let sol = m.solve(&u0, 6.0 * 3600.0);
        let load_early = sol.overall_load[1]; // t = 30 min
        let load_late = *sol.overall_load.last().expect("samples");
        assert!(load_late > load_early, "load did not grow after λ jump");
    }
}
