//! The assignment share `A_s` of the paper's Eqs. 6–11: which fraction
//! of arriving VMs each server receives.
//!
//! ## Exact model (Eqs. 6–9)
//!
//! A VM is assigned to server `s` with probability `1/(k+1)` when `k`
//! *other* servers also declared availability. With
//! `P_s^{(k)} = [x^k] R_s(x)` and `R_s(x) = Π_{i≠s}(1 − f_i + f_i x)`
//! the probability-generating product over the other servers,
//!
//! ```text
//! A_s ∝ f_s · Σ_k P_s^{(k)} / (k+1)  =  f_s · ∫₀¹ R_s(x) dx,
//! ```
//!
//! normalized by `1 − Π_i (1 − f_i)` (the probability that at least one
//! server accepts). The integral form turns the exponential subset sum
//! into an `O(N)`-per-server evaluation via Gauss–Legendre quadrature
//! (exact for polynomials), evaluated as `Q(x)/(1 − f_s + f_s x)` where
//! `Q` is the full product over all servers.
//!
//! **Erratum note:** the paper prints the sum as `Σ_{k=0}^{N_s−2}` and
//! omits the `f_s` factor in Eq. 6. As printed, the shares do not sum
//! to 1 (e.g. two servers with `f = 1` would each get share 0). The
//! corrected expression above restores `Σ_s A_s = 1`, which the
//! property tests verify; Eq. 5 then reads
//! `du_s/dt = −N_c μ u_s + λ w̄ A_s` with `f_a(u_s)` folded into `A_s`.
//!
//! ## Simplified model (Eq. 11)
//!
//! `A_s ≈ f_s / Σ_i f_i` — acceptance-probability-proportional
//! splitting, which the paper reports to be "very close" to the exact
//! model. Both are implemented; the `fig13` experiment and the share
//! benchmarks compare them.

use crate::quadrature::GaussLegendre;
use rayon::prelude::*;

/// Threshold above which the exact-share loop fans out with rayon.
const PAR_THRESHOLD: usize = 512;

/// Exact shares (corrected Eqs. 6–9). Returns all-zero when no server
/// can accept (`Σ f_i = 0`), mirroring the manager finding no
/// volunteer.
///
/// ```
/// use ecocloud_analytic::exact_shares;
/// let shares = exact_shares(&[0.9, 0.3, 0.0]);
/// assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(shares[0] > shares[1]); // likelier acceptors get more VMs
/// assert_eq!(shares[2], 0.0);     // f_a = 0 gets nothing
/// ```
pub fn exact_shares(f: &[f64]) -> Vec<f64> {
    validate(f);
    let n = f.len();
    if n == 0 {
        return Vec::new();
    }
    let none_accepts: f64 = f.iter().map(|&fi| 1.0 - fi).product();
    let norm = 1.0 - none_accepts;
    if norm <= 1e-300 {
        return vec![0.0; n];
    }
    // Enough nodes to integrate the degree-(n−1) polynomial exactly.
    let quad = GaussLegendre::new(n / 2 + 1);
    // Q(x_j) = Π_i (1 − f_i + f_i x_j), shared across all servers.
    let q_at: Vec<f64> = quad
        .nodes
        .iter()
        .map(|&x| f.iter().map(|&fi| 1.0 - fi + fi * x).product())
        .collect();
    let share_of = |s: usize| -> f64 {
        let fs = f[s];
        if fs == 0.0 {
            return 0.0;
        }
        let integral: f64 = quad
            .nodes
            .iter()
            .zip(&quad.weights)
            .zip(&q_at)
            .map(|((&x, &w), &qx)| {
                // R_s(x) = Q(x) / (1 − f_s + f_s x); the denominator is
                // ≥ x > 0 on the open interval.
                w * qx / (1.0 - fs + fs * x)
            })
            .sum();
        fs * integral / norm
    };
    if n >= PAR_THRESHOLD {
        (0..n).into_par_iter().map(share_of).collect()
    } else {
        (0..n).map(share_of).collect()
    }
}

/// Simplified shares (Eq. 11): proportional to the acceptance
/// probabilities.
pub fn simplified_shares(f: &[f64]) -> Vec<f64> {
    validate(f);
    let total: f64 = f.iter().sum();
    if total <= 0.0 {
        return vec![0.0; f.len()];
    }
    f.iter().map(|&fi| fi / total).collect()
}

/// Brute-force evaluation of the corrected Eqs. 6–9 by explicit
/// enumeration of all acceptance subsets — `O(2^N · N)`, used to
/// validate [`exact_shares`] on small systems.
pub fn exact_shares_bruteforce(f: &[f64]) -> Vec<f64> {
    validate(f);
    let n = f.len();
    assert!(n <= 20, "brute force is exponential; use exact_shares");
    if n == 0 {
        return Vec::new();
    }
    let mut shares = vec![0.0; n];
    let mut p_any = 0.0;
    // Enumerate every acceptance pattern (bitmask of accepting servers).
    for mask in 0u32..(1 << n) {
        let mut prob = 1.0;
        for (i, &fi) in f.iter().enumerate() {
            prob *= if mask & (1 << i) != 0 { fi } else { 1.0 - fi };
        }
        let accepted = mask.count_ones();
        if accepted == 0 {
            continue;
        }
        p_any += prob;
        // The manager picks uniformly among the acceptors.
        for (i, share) in shares.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *share += prob / accepted as f64;
            }
        }
    }
    if p_any <= 0.0 {
        return vec![0.0; n];
    }
    for s in &mut shares {
        *s /= p_any;
    }
    shares
}

/// `P_s^{(k)}` coefficients of Eqs. 7–9 by direct polynomial
/// multiplication (`O(N²)`): `result[k]` is the probability that
/// exactly `k` of the servers other than `s` accept.
pub fn pk_coefficients(f: &[f64], s: usize) -> Vec<f64> {
    validate(f);
    assert!(s < f.len(), "server index out of range");
    let mut coeffs = vec![0.0; 1];
    coeffs[0] = 1.0;
    for (i, &fi) in f.iter().enumerate() {
        if i == s {
            continue;
        }
        // Multiply by (1 − f_i + f_i x).
        let mut next = vec![0.0; coeffs.len() + 1];
        for (k, &c) in coeffs.iter().enumerate() {
            next[k] += c * (1.0 - fi);
            next[k + 1] += c * fi;
        }
        coeffs = next;
    }
    coeffs
}

fn validate(f: &[f64]) {
    for (i, &fi) in f.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(&fi),
            "acceptance probability f[{i}] = {fi} outside [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "share {i}: {x} vs {y}");
        }
    }

    #[test]
    fn symmetric_servers_share_equally() {
        for n in [2, 3, 7] {
            let f = vec![0.6; n];
            for shares in [exact_shares(&f), simplified_shares(&f)] {
                for &s in &shares {
                    assert!((s - 1.0 / n as f64).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn exact_matches_bruteforce() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.5],
            vec![1.0, 1.0],
            vec![0.3, 0.9],
            vec![0.1, 0.2, 0.3, 0.4],
            vec![0.0, 0.5, 1.0],
            vec![0.9, 0.85, 0.05, 0.6, 0.99, 0.01],
        ];
        for f in cases {
            assert_close(&exact_shares(&f), &exact_shares_bruteforce(&f), 1e-10);
        }
    }

    #[test]
    fn all_ones_split_uniformly() {
        let f = vec![1.0; 4];
        let shares = exact_shares(&f);
        for &s in &shares {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_probability_servers_get_nothing() {
        let f = vec![0.0, 0.7, 0.0];
        let e = exact_shares(&f);
        assert_eq!(e[0], 0.0);
        assert_eq!(e[2], 0.0);
        assert!((e[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nobody_accepts_gives_zero_shares() {
        let f = vec![0.0; 5];
        assert!(exact_shares(&f).iter().all(|&s| s == 0.0));
        assert!(simplified_shares(&f).iter().all(|&s| s == 0.0));
    }

    #[test]
    fn pk_coefficients_match_eq7_to_9() {
        // Eq. 7: P^{(0)} = Π_{i≠s}(1 − f_i);
        // Eq. 9: P^{(N−1)} = Π_{i≠s} f_i.
        let f = [0.2, 0.5, 0.8, 0.9];
        let pk = pk_coefficients(&f, 1);
        assert_eq!(pk.len(), 4); // k = 0..=3 others... 3 others → len 4? degree 3 polynomial has 4 coefficients but only k=0..3 others = 3: len == n.
        let p0_expected = 0.8 * 0.2 * 0.1;
        let ptop_expected = 0.2 * 0.8 * 0.9;
        assert!((pk[0] - p0_expected).abs() < 1e-12);
        assert!((pk[3] - ptop_expected).abs() < 1e-12);
        // It is a probability distribution over k.
        let sum: f64 = pk.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_share_equals_pk_sum_formula() {
        // A_s = f_s Σ_k P_s^{(k)}/(k+1) / norm — the literal corrected
        // Eq. 6, cross-checking the quadrature shortcut.
        let f = [0.3, 0.7, 0.55, 0.9, 0.12];
        let norm = 1.0 - f.iter().map(|&x| 1.0 - x).product::<f64>();
        let quad_shares = exact_shares(&f);
        for s in 0..f.len() {
            let pk = pk_coefficients(&f, s);
            let sum: f64 = pk
                .iter()
                .enumerate()
                .map(|(k, &p)| p / (k as f64 + 1.0))
                .sum();
            let literal = f[s] * sum / norm;
            assert!(
                (literal - quad_shares[s]).abs() < 1e-12,
                "server {s}: literal {literal} vs quadrature {}",
                quad_shares[s]
            );
        }
    }

    #[test]
    fn large_system_is_stable() {
        // 1,000 servers with mixed probabilities: shares must stay
        // finite, non-negative and sum to 1 (also exercises the rayon
        // path).
        let f: Vec<f64> = (0..1000).map(|i| (i % 10) as f64 / 10.0).collect();
        let shares = exact_shares(&f);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(shares.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    proptest! {
        #[test]
        fn prop_shares_sum_to_one(
            f in proptest::collection::vec(0.0f64..1.0, 1..40),
        ) {
            prop_assume!(f.iter().any(|&x| x > 1e-6));
            for shares in [exact_shares(&f), simplified_shares(&f)] {
                let sum: f64 = shares.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
                prop_assert!(shares.iter().all(|&s| s >= 0.0));
            }
        }

        #[test]
        fn prop_exact_matches_bruteforce_random(
            f in proptest::collection::vec(0.0f64..=1.0, 1..10),
        ) {
            let e = exact_shares(&f);
            let b = exact_shares_bruteforce(&f);
            for (x, y) in e.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }

        #[test]
        fn prop_higher_probability_gets_higher_share(
            base in 0.05f64..0.9,
            boost in 0.01f64..0.1,
            n in 2usize..20,
        ) {
            // Monotonicity: raising one server's f raises its share.
            let mut f = vec![base; n];
            f[0] = (base + boost).min(1.0);
            for shares in [exact_shares(&f), simplified_shares(&f)] {
                prop_assert!(shares[0] > shares[1] - 1e-12);
            }
        }
    }
}
