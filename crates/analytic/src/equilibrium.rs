//! Equilibrium and stability analysis of the fluid assignment system.
//!
//! This extends the paper's §IV analysis with a closed-form answer to
//! the question the figures only show empirically: *when does the
//! assignment procedure consolidate at all?*
//!
//! Consider `N` active servers under the simplified share model
//! (Eq. 11) with constant arrival rate `λ`, per-VM departure rate `μ`
//! and mean VM load `w̄`:
//!
//! ```text
//! du_i/dt = −μ u_i + λ w̄ · f(u_i) / Σ_j f(u_j)
//! ```
//!
//! The *symmetric* state `u_i = ū = λ w̄ / (N μ)` is always an
//! equilibrium. Linearizing around it (perturbations with zero sum,
//! since total load is conserved by the share normalization) gives the
//! per-mode growth rate
//!
//! ```text
//! σ = μ · (ū f'(ū) / f(ū) − 1)
//! ```
//!
//! so the symmetric state is **unstable** — rich-get-richer dynamics
//! break the symmetry and the system consolidates — exactly when
//! `ū f'(ū)/f(ū) > 1`. For the paper's `f_a(u) = u^p (T_a − u)/M_p`
//! this reduces to a remarkably clean threshold:
//!
//! ```text
//! consolidation  ⟺  ū < T_a · (p − 1) / p
//! ```
//!
//! (`0.6` for the paper's `T_a = 0.9, p = 3`). Above that mean
//! utilization the assignment function's *decreasing* branch dominates
//! and actively equalizes load across servers — the system stays
//! spread. This explains two behaviours visible in the experiments:
//! servers polarize quickly from a 10–30 % spread start (deep in the
//! unstable region), and churn-heavy workloads can hold a data center
//! in a stable half-full configuration once the per-server average
//! creeps above `T_a (p−1)/p`. It also gives `p` a precise design
//! meaning: larger `p` extends the consolidating region towards `T_a`.

use crate::fluid::{FluidConfig, FluidModel, ShareModel};
use ecocloud_core::AssignmentFunction;

/// The symmetric-state utilization `ū = λ w̄ / (N μ)` for `n` active
/// servers (may exceed 1, meaning `n` servers cannot carry the load).
pub fn symmetric_utilization(lambda: f64, mu: f64, mean_vm_load: f64, n: usize) -> f64 {
    assert!(mu > 0.0, "departure rate must be positive");
    assert!(n > 0, "need at least one server");
    lambda * mean_vm_load / (n as f64 * mu)
}

/// `ū f'(ū)/f(ū) − 1`, the sign of the symmetric state's per-mode
/// growth rate (in units of `μ`). Positive ⇒ unstable ⇒ consolidating.
pub fn instability_indicator(fa: &AssignmentFunction, u: f64) -> f64 {
    assert!(
        u > 0.0 && u < fa.ta,
        "indicator defined on the interior 0 < u < T_a, got {u}"
    );
    // f = u^p (Ta − u) / Mp  ⇒  u f'/f = p − u/(Ta − u).
    fa.p - u / (fa.ta - u) - 1.0
}

/// The critical utilization `T_a (p − 1)/p`: the symmetric state is
/// unstable (the system consolidates) strictly below it and stable
/// (the system stays spread) strictly above it.
pub fn consolidation_threshold(fa: &AssignmentFunction) -> f64 {
    fa.ta * (fa.p - 1.0) / fa.p
}

/// Convenience: does the fluid system with these rates and `n` active
/// servers break symmetry and consolidate?
pub fn consolidates(
    fa: &AssignmentFunction,
    lambda: f64,
    mu: f64,
    mean_vm_load: f64,
    n: usize,
) -> bool {
    let u = symmetric_utilization(lambda, mu, mean_vm_load, n);
    u < consolidation_threshold(fa) && u > 0.0
}

/// Numerically measures the symmetry-breaking growth rate by
/// integrating the fluid model from a slightly perturbed symmetric
/// state and fitting the divergence of the spread. Returns the
/// empirical rate in 1/seconds (positive ⇒ perturbations grow).
///
/// Used by the tests to validate the closed-form criterion against
/// the actual ODE; exposed because it is handy for exploring other
/// assignment functions where no closed form exists.
pub fn measure_growth_rate(
    fa: AssignmentFunction,
    lambda: f64,
    mu: f64,
    mean_vm_load: f64,
    n: usize,
    horizon_secs: f64,
) -> f64 {
    let u_bar = symmetric_utilization(lambda, mu, mean_vm_load, n);
    assert!(
        u_bar > 0.001 && u_bar < fa.ta - 0.001,
        "symmetric state {u_bar} outside the interior"
    );
    // Zero-sum perturbation of ±ε on pairs of servers.
    let eps = 1e-3;
    let mut u0 = vec![u_bar; n];
    for (i, u) in u0.iter_mut().enumerate() {
        *u += if i % 2 == 0 { eps } else { -eps };
    }
    let mut config = FluidConfig::paper(ShareModel::Simplified, mean_vm_load);
    config.fa = fa;
    config.dt_secs = 5.0;
    config.sample_interval_secs = horizon_secs / 8.0;
    // Disable the controller: we are probing the raw dynamics.
    config.wake_reject_threshold = 1.0;
    config.u_off = -1.0;
    config.u_seed = 0.5; // unused but must exceed u_off
    let model = FluidModel::new(config, move |_| lambda, move |_| mu);
    let sol = model.solve(&u0, horizon_secs);
    let spread = |us: &Vec<f32>| -> f64 {
        let mean = us.iter().map(|&x| x as f64).sum::<f64>() / us.len() as f64;
        (us.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / us.len() as f64).sqrt()
    };
    let first = spread(&sol.u[1]).max(1e-12);
    let last = spread(sol.u.last().expect("samples")).max(1e-12);
    let dt = sol.times_secs.last().expect("samples") - sol.times_secs[1];
    (last / first).ln() / dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_is_point_six() {
        let fa = AssignmentFunction::paper(); // Ta = 0.9, p = 3
        assert!((consolidation_threshold(&fa) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn indicator_changes_sign_at_threshold() {
        let fa = AssignmentFunction::paper();
        let t = consolidation_threshold(&fa);
        assert!(instability_indicator(&fa, t - 0.05) > 0.0);
        assert!(instability_indicator(&fa, t + 0.05) < 0.0);
        assert!(instability_indicator(&fa, t).abs() < 1e-9);
    }

    #[test]
    fn larger_p_extends_the_consolidating_region() {
        let t2 = consolidation_threshold(&AssignmentFunction::new(0.9, 2.0));
        let t3 = consolidation_threshold(&AssignmentFunction::new(0.9, 3.0));
        let t5 = consolidation_threshold(&AssignmentFunction::new(0.9, 5.0));
        assert!(t2 < t3 && t3 < t5);
        assert!((t5 - 0.72).abs() < 1e-12);
    }

    #[test]
    fn symmetric_utilization_balances_rates() {
        // ū = λ·w̄/(N·μ) = 0.25·0.02·7200/10 = 3.6 (an infeasible
        // state — the helper reports it rather than clamping).
        let u = symmetric_utilization(0.25, 1.0 / 7200.0, 0.02, 10);
        assert!((u - 3.6).abs() < 1e-9);
    }

    #[test]
    fn ode_confirms_instability_below_threshold() {
        // ū = 0.3 < 0.6: perturbations must grow.
        let fa = AssignmentFunction::paper();
        let mu = 1.0 / 3600.0;
        let n = 10;
        let u_bar = 0.3;
        let lambda = u_bar * n as f64 * mu / 0.02;
        let rate = measure_growth_rate(fa, lambda, mu, 0.02, n, 2.0 * 3600.0);
        assert!(rate > 0.0, "expected growth, measured {rate}");
        // Prediction: σ = μ (p − u/(Ta−u) − 1) = μ (3 − 0.5 − 1) = 1.5 μ.
        let predicted = mu * instability_indicator(&fa, u_bar);
        assert!(
            (rate - predicted).abs() < 0.35 * predicted,
            "measured {rate} vs predicted {predicted}"
        );
    }

    #[test]
    fn ode_confirms_stability_above_threshold() {
        // ū = 0.75 > 0.6: perturbations must shrink.
        let fa = AssignmentFunction::paper();
        let mu = 1.0 / 3600.0;
        let n = 10;
        let u_bar = 0.75;
        let lambda = u_bar * n as f64 * mu / 0.02;
        let rate = measure_growth_rate(fa, lambda, mu, 0.02, n, 2.0 * 3600.0);
        assert!(rate < 0.0, "expected decay, measured {rate}");
    }

    #[test]
    fn consolidates_helper_end_to_end() {
        let fa = AssignmentFunction::paper();
        let mu = 1.0 / 3600.0;
        // 20 servers, total load 6 equivalents → ū = 0.3 < 0.6.
        let lambda = 6.0 * mu / 0.02;
        assert!(consolidates(&fa, lambda, mu, 0.02, 20));
        // 8 servers for the same load → ū = 0.75 > 0.6.
        assert!(!consolidates(&fa, lambda, mu, 0.02, 8));
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn indicator_rejects_boundary() {
        instability_indicator(&AssignmentFunction::paper(), 0.9);
    }
}
