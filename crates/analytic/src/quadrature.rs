//! Gauss–Legendre quadrature on [0, 1].
//!
//! The exact assignment share `A_s` (paper Eqs. 6–9) reduces to the
//! integral `∫₀¹ Π_{i≠s}(1 − f_i + f_i x) dx` (see [`crate::share`]);
//! an `n`-node Gauss–Legendre rule integrates polynomials of degree
//! `≤ 2n − 1` *exactly*, so the combinatorial sum is evaluated without
//! enumerating subsets and without any approximation error.

/// Nodes and weights of an `n`-point Gauss–Legendre rule mapped to
/// `[0, 1]`.
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    /// Quadrature nodes in (0, 1).
    pub nodes: Vec<f64>,
    /// Quadrature weights (summing to 1, the interval length).
    pub weights: Vec<f64>,
}

impl GaussLegendre {
    /// Builds the `n`-point rule by Newton iteration on the Legendre
    /// polynomial `P_n` (standard Golub-free construction; `n` up to a
    /// few thousand converges in < 10 iterations per root).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one node");
        let mut nodes = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for i in 0..n {
            // Chebyshev-like initial guess for the i-th root of P_n.
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            for _ in 0..100 {
                let (p, dp) = legendre_and_derivative(n, x);
                let dx = p / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            let (_, dp) = legendre_and_derivative(n, x);
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            // Map from [-1, 1] to [0, 1].
            nodes.push(0.5 * (x + 1.0));
            weights.push(0.5 * w);
        }
        // Roots come out in decreasing order; sort ascending for
        // cache-friendly, reproducible iteration.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| nodes[a].total_cmp(&nodes[b]));
        Self {
            nodes: idx.iter().map(|&i| nodes[i]).collect(),
            weights: idx.iter().map(|&i| weights[i]).collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the rule has no nodes (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Integrates `f` over [0, 1].
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

/// Evaluates `(P_n(x), P_n'(x))` by the three-term recurrence.
fn legendre_and_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0; // P_0
    let mut p1 = x; // P_1
    if n == 0 {
        return (p0, 0.0);
    }
    for k in 2..=n {
        let k = k as f64;
        let p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
    }
    // P_n'(x) = n (x P_n − P_{n−1}) / (x² − 1)
    let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
    (p1, dp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weights_sum_to_interval_length() {
        for n in [1, 2, 5, 16, 50, 101] {
            let q = GaussLegendre::new(n);
            let sum: f64 = q.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "n={n}: weights sum {sum}");
            assert!(q.nodes.iter().all(|&x| (0.0..1.0).contains(&x)));
            assert!(q.nodes.windows(2).all(|w| w[0] < w[1]), "unsorted nodes");
        }
    }

    #[test]
    fn integrates_monomials_exactly() {
        // n nodes are exact through degree 2n − 1.
        let q = GaussLegendre::new(6);
        for k in 0..=11usize {
            let exact = 1.0 / (k as f64 + 1.0);
            let got = q.integrate(|x| x.powi(k as i32));
            assert!(
                (got - exact).abs() < 1e-13,
                "x^{k}: got {got}, expected {exact}"
            );
        }
    }

    #[test]
    fn high_degree_products() {
        // ∫₀¹ x^99 dx with 50 nodes (degree 99 = 2·50 − 1: exact).
        let q = GaussLegendre::new(50);
        let got = q.integrate(|x| x.powi(99));
        assert!((got - 0.01).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn integrates_smooth_non_polynomial_well() {
        let q = GaussLegendre::new(20);
        let got = q.integrate(f64::exp);
        let exact = std::f64::consts::E - 1.0;
        assert!((got - exact).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_linear_functions_exact(a in -10.0f64..10.0, b in -10.0f64..10.0) {
            let q = GaussLegendre::new(3);
            let got = q.integrate(|x| a * x + b);
            let exact = a / 2.0 + b;
            prop_assert!((got - exact).abs() < 1e-12);
        }
    }
}
