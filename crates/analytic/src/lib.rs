//! Mathematical analysis of the ecoCloud assignment procedure —
//! the paper's §IV fluid model.
//!
//! * [`quadrature`] — Gauss–Legendre rules (exact for the polynomial
//!   integrands the share computation produces).
//! * [`share`] — the assignment share `A_s`: exact combinatorial form
//!   (corrected Eqs. 6–9, evaluated in `O(N)` per server via an
//!   integral identity) and the simplified proportional form (Eq. 11).
//! * [`fluid`] — the differential-equation model (Eq. 5) with RK4
//!   integration and the activation/hibernation controller, producing
//!   the per-server utilization trajectories of the paper's Fig. 13.

pub mod equilibrium;
pub mod fluid;
pub mod quadrature;
pub mod share;

pub use equilibrium::{consolidates, consolidation_threshold, instability_indicator};
pub use fluid::{FluidConfig, FluidModel, FluidSolution, ShareModel};
pub use quadrature::GaussLegendre;
pub use share::{exact_shares, exact_shares_bruteforce, pk_coefficients, simplified_shares};
