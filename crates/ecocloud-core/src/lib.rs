//! The ecoCloud algorithm — the primary contribution of
//! *"Analysis of a Self-Organizing Algorithm for Energy Saving in Data
//! Centers"* (Mastroianni, Meo & Papuzzo, IPDPSW 2013).
//!
//! ecoCloud consolidates Virtual Machines on as few servers as
//! possible so the remaining machines can hibernate. Unlike
//! centralized bin-packing heuristics, every decision is a local
//! Bernoulli trial run by an individual server on its own CPU
//! utilization; the data-center manager only coordinates (broadcasts
//! invitations, picks among volunteers, wakes sleeping machines). This
//! makes the approach self-organizing, naturally scalable and smooth:
//! VMs relocate gradually, one at a time, instead of in bulk
//! reshuffles.
//!
//! Crate layout:
//!
//! * [`functions`] — the probability functions of Eqs. 1–4 (pure math,
//!   no simulator dependency).
//! * [`config`] — the full parameter set with the paper's §III values.
//! * [`policy`] — [`EcoCloudPolicy`], the algorithm wired into the
//!   [`dcsim`] policy interface (assignment, migration, wake-up,
//!   newcomer grace period, anti-ping-pong).
//! * [`multiresource`] — the §V multi-resource extension (per-resource
//!   trials, critical-resource + constraints).

pub mod config;
pub mod functions;
pub mod multiresource;
pub mod policy;

pub use config::EcoCloudConfig;
pub use functions::{AssignmentFunction, MigrationFunctions};
pub use multiresource::{CombineStrategy, MultiResourceAssignment};
pub use policy::EcoCloudPolicy;
