//! The ecoCloud placement policy — the paper's two probabilistic
//! procedures wired into the `dcsim` policy interface.
//!
//! * **Assignment** (§II): the manager broadcasts an invitation to all
//!   powered servers; each runs a Bernoulli trial with success
//!   probability `f_a(u)` on its *local* utilization and declares
//!   availability; the manager picks uniformly among the available
//!   servers; if none is available it wakes a hibernated server (which
//!   then answers positively for a 30-minute grace period).
//! * **Migration** (§II): each server monitors its utilization; below
//!   `T_l` it requests a low migration with probability `f_l(u)`,
//!   above `T_h` a high migration with probability `f_h(u)`. The
//!   destination is chosen with the assignment procedure, with the
//!   anti-ping-pong threshold `0.9 × u_source` for high migrations and
//!   the never-wake rule for low migrations.
//!
//! One refinement over the paper text is made explicit here: a server
//! also checks that the offered VM actually *fits* under the effective
//! threshold before declaring availability. `f_a(u) = 0` for
//! `u > T_a` alone does not prevent a large VM accepted at
//! `u = T_a − ε` from overshooting the threshold; the fit check closes
//! that gap (and is what the paper's "no further VMs can be assigned
//! when u reaches this threshold" guarantee requires in a discrete
//! system).

use crate::config::EcoCloudConfig;
use crate::functions::AssignmentFunction;
use dcsim::{
    ClusterView, MigrationKind, MigrationRequest, PlaceOutcome, PlacementKind, PlacementRequest,
    Policy, ServerId, ServerRef,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ecoCloud policy. One instance drives one simulation run.
pub struct EcoCloudPolicy {
    cfg: EcoCloudConfig,
    rng: StdRng,
    /// Per-server end of the newcomer grace period (seconds); lazily
    /// grown to the fleet size.
    grace_until: Vec<f64>,
    /// Per-server time of the last low-migration trial (seconds).
    last_low_trial: Vec<f64>,
    /// Scratch buffer of acceptors (reused across calls to avoid
    /// allocating on every invitation round).
    acceptors: Vec<ServerId>,
}

impl EcoCloudPolicy {
    /// Creates the policy from a validated configuration.
    pub fn new(cfg: EcoCloudConfig) -> Self {
        cfg.validate();
        let seed = cfg.seed;
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            grace_until: Vec::new(),
            last_low_trial: Vec::new(),
            acceptors: Vec::new(),
        }
    }

    /// The paper's §III parameterization.
    pub fn paper(seed: u64) -> Self {
        Self::new(EcoCloudConfig::paper(seed))
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &EcoCloudConfig {
        &self.cfg
    }

    fn ensure_grace_len(&mut self, n: usize) {
        if self.grace_until.len() < n {
            self.grace_until.resize(n, f64::NEG_INFINITY);
        }
        if self.last_low_trial.len() < n {
            self.last_low_trial.resize(n, f64::NEG_INFINITY);
        }
    }

    fn in_grace(&self, sid: ServerId, now: f64) -> bool {
        self.grace_until.get(sid.index()).is_some_and(|&t| now < t)
    }

    /// The acceptance function effective for `req`: lowered threshold
    /// for high migrations so the VM lands on a strictly less loaded
    /// server (anti-ping-pong, §II).
    fn effective_fa(&self, req: &PlacementRequest) -> AssignmentFunction {
        match req.kind {
            PlacementKind::MigrationHigh { source_utilization } => {
                let ta = (self.cfg.high_migration_ta_factor * source_utilization)
                    .min(self.cfg.assignment.ta);
                self.cfg.assignment.with_threshold(ta)
            }
            _ => self.cfg.assignment,
        }
    }

    /// Whether `server` can actually host the offered VM under the
    /// effective threshold — the CPU fit check plus the §V memory
    /// constraint. This is the deterministic part of a server's local
    /// admission test (no RNG draw), so it doubles as the commit-time
    /// re-check in the phased protocol.
    fn offer_fits(
        &self,
        server: &ServerRef<'_>,
        req: &PlacementRequest,
        fa: &AssignmentFunction,
    ) -> bool {
        let u = server.decision_utilization();
        let fits = u + req.demand_mhz / server.capacity_mhz() <= fa.ta + 1e-12;
        // §V: other resources act as constraints to be satisfied —
        // memory must stay under its threshold.
        let ram_fits = !self.cfg.ram_aware
            || req.ram_mb <= 0.0
            || server.decision_ram_utilization() + req.ram_mb / server.spec.ram_mb
                <= self.cfg.ram_threshold + 1e-12;
        fits && ram_fits
    }

    /// One invitation broadcast: every powered server (minus the
    /// exclusion) runs its local admission test — the fit check, then
    /// the Bernoulli `f_a(u)` trial, bypassed during the §IV newcomer
    /// grace. Fills `self.acceptors` in fleet order.
    fn invite_round(
        &mut self,
        view: &ClusterView<'_>,
        req: &PlacementRequest,
        fa: &AssignmentFunction,
    ) {
        self.acceptors.clear();
        let m_p = fa.m_p();
        for (sid, server) in view.powered() {
            if Some(sid) == req.exclude {
                continue;
            }
            if !self.offer_fits(&server, req, fa) {
                continue;
            }
            let accepts = if self.in_grace(sid, req.now_secs) {
                // §IV: a newly activated server always responds
                // positively for a limited interval of time.
                true
            } else {
                let p = fa.eval_normalized(server.decision_utilization(), m_p);
                p > 0.0 && self.rng.gen_bool(p)
            };
            if accepts {
                self.acceptors.push(sid);
            }
        }
    }

    /// §II fallback once every invitation round came up empty: for a
    /// low migration "the VM is not migrated at all"; otherwise the
    /// manager wakes up a fitting hibernated server, if any.
    fn wake_fallback(
        &mut self,
        view: &ClusterView<'_>,
        req: &PlacementRequest,
        fa: &AssignmentFunction,
    ) -> PlaceOutcome {
        let may_wake = match req.kind {
            PlacementKind::MigrationLow => false,
            PlacementKind::NewVm => self.cfg.wake_on_assignment_exhaustion,
            PlacementKind::MigrationHigh { .. } => self.cfg.wake_on_high_migration,
        };
        if may_wake {
            let hibernated: Vec<ServerId> = view
                .hibernated()
                .filter(|&(sid, s)| {
                    Some(sid) != req.exclude
                        && req.demand_mhz <= fa.ta * s.capacity_mhz()
                        && (!self.cfg.ram_aware
                            || req.ram_mb <= 0.0
                            || req.ram_mb <= self.cfg.ram_threshold * s.spec.ram_mb)
                })
                .map(|(sid, _)| sid)
                .collect();
            if !hibernated.is_empty() {
                let pick = hibernated[self.rng.gen_range(0..hibernated.len())];
                // Grace starts immediately so the server keeps
                // accepting while it wakes; `on_server_woken` restarts
                // the clock once it is actually up.
                self.grace_until[pick.index()] = req.now_secs + self.cfg.grace_secs;
                return PlaceOutcome::WakeThenPlace(pick);
            }
        }
        PlaceOutcome::Reject
    }
}

impl Policy for EcoCloudPolicy {
    fn name(&self) -> &'static str {
        "ecocloud"
    }

    fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
        self.ensure_grace_len(view.n_servers());
        let fa = self.effective_fa(req);

        // Invitation broadcast: every powered server runs its local
        // Bernoulli trial. Re-broadcast up to `assignment_rounds`
        // times before concluding that nobody can host the VM.
        for _ in 0..self.cfg.assignment_rounds {
            self.invite_round(view, req, &fa);
            if !self.acceptors.is_empty() {
                let pick = self.rng.gen_range(0..self.acceptors.len());
                return PlaceOutcome::Place(self.acceptors[pick]);
            }
        }
        self.wake_fallback(view, req, &fa)
    }

    fn invite(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> Option<Vec<ServerId>> {
        self.ensure_grace_len(view.n_servers());
        let fa = self.effective_fa(req);
        self.invite_round(view, req, &fa);
        Some(self.acceptors.clone())
    }

    fn choose_acceptor(&mut self, acceptors: &[ServerId]) -> usize {
        self.rng.gen_range(0..acceptors.len())
    }

    fn admission_recheck(
        &mut self,
        view: &ClusterView<'_>,
        server: ServerId,
        req: &PlacementRequest,
    ) -> bool {
        // The server already won its Bernoulli trial at broadcast
        // time; the commit-time re-check is the deterministic part
        // only — does the VM still fit under the (possibly lowered)
        // threshold on the server's *current* load?
        let fa = self.effective_fa(req);
        self.offer_fits(&view.server(server), req, &fa)
    }

    fn place_exhausted(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
        self.ensure_grace_len(view.n_servers());
        let fa = self.effective_fa(req);
        self.wake_fallback(view, req, &fa)
    }

    fn monitor(
        &mut self,
        view: &ClusterView<'_>,
        sid: ServerId,
        now_secs: f64,
    ) -> Option<MigrationRequest> {
        self.ensure_grace_len(view.n_servers());
        let server = view.server(sid);
        if server.vms.is_empty() {
            return None;
        }
        let u_raw = server.utilization();
        let m = &self.cfg.migration;

        if u_raw > m.th {
            // High migration: Bernoulli on f_h, then pick among the VMs
            // big enough to bring the server back under T_h.
            let p = m.f_high(u_raw);
            if p <= 0.0 || !self.rng.gen_bool(p.min(1.0)) {
                return None;
            }
            let cap = server.capacity_mhz();
            let need = u_raw - m.th;
            let candidates: Vec<(dcsim::VmId, f64)> = view
                .migratable_vms(sid)
                .filter(|&(_, d)| d / cap > need)
                .collect();
            let vm = if !candidates.is_empty() {
                candidates[self.rng.gen_range(0..candidates.len())].0
            } else {
                // Footnote 3: no VM matches → take the largest, gated
                // by one more Bernoulli trial.
                let largest = view
                    .migratable_vms(sid)
                    .max_by(|a, b| a.1.total_cmp(&b.1))?;
                if !self.rng.gen_bool(p.min(1.0)) {
                    return None;
                }
                largest.0
            };
            return Some(MigrationRequest {
                vm,
                kind: MigrationKind::High,
            });
        }

        if u_raw < m.tl {
            if self.cfg.grace_suppresses_low_migration && self.in_grace(sid, now_secs) {
                // A freshly woken server is still filling up; shedding
                // its first VMs would undo the wake-up it was woken for.
                return None;
            }
            if now_secs - self.last_low_trial[sid.index()] < self.cfg.low_migration_backoff_secs {
                return None;
            }
            self.last_low_trial[sid.index()] = now_secs;
            let p = m.f_low(u_raw);
            if p <= 0.0 || !self.rng.gen_bool(p.min(1.0)) {
                return None;
            }
            // Pick a VM uniformly at random (the paper does not
            // prescribe the choice for low migrations).
            let candidates: Vec<dcsim::VmId> = view.migratable_vms(sid).map(|(id, _)| id).collect();
            if candidates.is_empty() {
                return None;
            }
            let vm = candidates[self.rng.gen_range(0..candidates.len())];
            return Some(MigrationRequest {
                vm,
                kind: MigrationKind::Low,
            });
        }
        None
    }

    fn on_server_woken(&mut self, server: ServerId, now_secs: f64) {
        self.ensure_grace_len(server.index() + 1);
        self.grace_until[server.index()] = now_secs + self.cfg.grace_secs;
    }

    fn on_server_failed(&mut self, server: ServerId, _now_secs: f64) {
        // A crashed (or wake-abandoned) server loses its soft state: no
        // lingering grace window when it comes back, and a fresh
        // low-migration backoff clock.
        self.ensure_grace_len(server.index() + 1);
        self.grace_until[server.index()] = f64::NEG_INFINITY;
        self.last_low_trial[server.index()] = f64::NEG_INFINITY;
    }

    fn checkpoint_state(&self) -> Vec<u64> {
        // Layout: [rng, n, grace_until[0..n], m, last_low_trial[0..m]],
        // floats as raw bits (grace windows can be NEG_INFINITY). The
        // acceptors scratch buffer is rebuilt per invitation round and
        // carries no state. Lazily-grown lengths are part of the state:
        // restoring them exactly keeps later `ensure_grace_len` calls
        // no-ops in both the original and the resumed run.
        let mut words = Vec::with_capacity(3 + self.grace_until.len() + self.last_low_trial.len());
        words.push(self.rng.state_u64());
        words.push(self.grace_until.len() as u64);
        words.extend(self.grace_until.iter().map(|g| g.to_bits()));
        words.push(self.last_low_trial.len() as u64);
        words.extend(self.last_low_trial.iter().map(|t| t.to_bits()));
        words
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let err = || format!("malformed ecocloud policy state ({} words)", state.len());
        let (&rng_word, rest) = state.split_first().ok_or_else(err)?;
        let (&n, rest) = rest.split_first().ok_or_else(err)?;
        let n = usize::try_from(n).map_err(|_| err())?;
        if rest.len() < n {
            return Err(err());
        }
        let (grace, rest) = rest.split_at(n);
        let (&m, rest) = rest.split_first().ok_or_else(err)?;
        let m = usize::try_from(m).map_err(|_| err())?;
        if rest.len() != m {
            return Err(err());
        }
        self.rng = StdRng::from_state_u64(rng_word);
        self.grace_until = grace.iter().map(|&b| f64::from_bits(b)).collect();
        self.last_low_trial = rest.iter().map(|&b| f64::from_bits(b)).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::vm::VmState;
    use dcsim::{Cluster, Fleet, ServerState, Vm, VmId};

    /// Builds a cluster of `n` active 6-core servers with the given
    /// per-server utilizations (one synthetic VM per server carrying
    /// the whole load).
    fn cluster_with_utils(utils: &[f64]) -> Cluster {
        let fleet = Fleet::uniform(utils.len(), 6);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for (i, &u) in utils.iter().enumerate() {
            if u > 0.0 {
                let vm = VmId(c.vms.len() as u32);
                c.vms.push(Vm {
                    id: vm,
                    trace_idx: 0,
                    demand_mhz: u * 12_000.0,
                    ram_mb: 0.0,
                    state: VmState::Departed,
                    arrived_secs: 0.0,
                    priority: Default::default(),
                    migration_seq: 0,
                    lifetime_secs: None,
                    started: false,
                    evictable: false,
                });
                c.attach(vm, dcsim::ServerId(i as u32), 0.0);
            }
        }
        c
    }

    fn new_vm_req(demand_mhz: f64) -> PlacementRequest {
        PlacementRequest {
            demand_mhz,
            ram_mb: 0.0,
            kind: PlacementKind::NewVm,
            exclude: None,
            now_secs: 0.0,
        }
    }

    #[test]
    fn prefers_intermediate_utilization() {
        // One server at u* (acceptance prob 1), others at 0 (prob 0):
        // the placement must always hit the intermediate server.
        let c = cluster_with_utils(&[0.0, 0.675, 0.0]);
        let mut p = EcoCloudPolicy::paper(1);
        for _ in 0..20 {
            match p.place(&c.view(), &new_vm_req(100.0)) {
                PlaceOutcome::Place(sid) => assert_eq!(sid.0, 1),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn never_places_above_threshold() {
        // Both servers at 0.88: a VM of 5 % of capacity would push
        // them to 0.93 > T_a = 0.9 → must not be placed there; no
        // hibernated server exists → Reject.
        let c = cluster_with_utils(&[0.88, 0.88]);
        let mut p = EcoCloudPolicy::paper(2);
        let out = p.place(&c.view(), &new_vm_req(0.05 * 12_000.0));
        assert_eq!(out, PlaceOutcome::Reject);
    }

    #[test]
    fn wakes_hibernated_server_when_nobody_accepts() {
        let mut c = cluster_with_utils(&[0.89, 0.89, 0.0]);
        c.set_server_state(ServerId(2), ServerState::Hibernated);
        let mut p = EcoCloudPolicy::paper(3);
        let out = p.place(&c.view(), &new_vm_req(0.3 * 12_000.0));
        assert_eq!(out, PlaceOutcome::WakeThenPlace(ServerId(2)));
        // The engine would now start the wake; emulate it.
        c.set_server_state(ServerId(2), ServerState::Waking { until_secs: 120.0 });
        // The woken server is in grace: it accepts the next VM
        // deterministically even though its utilization is 0.
        let out2 = p.place(&c.view(), &new_vm_req(0.3 * 12_000.0));
        assert_eq!(out2, PlaceOutcome::Place(ServerId(2)));
    }

    #[test]
    fn low_migration_never_wakes() {
        let mut c = cluster_with_utils(&[0.2, 0.0]);
        c.set_server_state(ServerId(1), ServerState::Hibernated);
        let mut p = EcoCloudPolicy::paper(4);
        let req = PlacementRequest {
            demand_mhz: 0.2 * 12_000.0,
            ram_mb: 0.0,
            kind: PlacementKind::MigrationLow,
            exclude: Some(ServerId(0)),
            now_secs: 0.0,
        };
        // Only candidate host is hibernated → §II forbids waking it.
        assert_eq!(p.place(&c.view(), &req), PlaceOutcome::Reject);
    }

    #[test]
    fn high_migration_uses_lowered_threshold() {
        // Source at u = 1.0 → effective T_a' = 0.9. A destination at
        // 0.88 is under T_a but a 0.04 VM would reach 0.92 > 0.864...
        // Use a destination whose post-placement utilization lands
        // between T_a' and T_a to prove the lowered threshold applies.
        let c = cluster_with_utils(&[1.0, 0.85]);
        let mut p = EcoCloudPolicy::paper(5);
        let req = PlacementRequest {
            demand_mhz: 0.1 * 12_000.0, // would reach 0.95 > T_a' = 0.9
            ram_mb: 0.0,
            kind: PlacementKind::MigrationHigh {
                source_utilization: 1.0,
            },
            exclude: Some(ServerId(0)),
            now_secs: 0.0,
        };
        for _ in 0..10 {
            // No fit under T_a' = 0.9 on server 1 (0.85+0.1 = 0.95),
            // and no hibernated server → reject every time.
            assert_eq!(p.place(&c.view(), &req), PlaceOutcome::Reject);
        }
    }

    #[test]
    fn monitor_silent_between_thresholds() {
        let c = cluster_with_utils(&[0.7]);
        let mut p = EcoCloudPolicy::paper(6);
        for _ in 0..50 {
            assert!(p.monitor(&c.view(), ServerId(0), 0.0).is_none());
        }
    }

    #[test]
    fn monitor_requests_high_migration_when_overloaded() {
        // u = 1.0 → f_h = 1: the request must fire on the first tick.
        let c = cluster_with_utils(&[1.0]);
        let mut p = EcoCloudPolicy::paper(7);
        let req = p.monitor(&c.view(), ServerId(0), 0.0).expect("no request");
        assert_eq!(req.kind, MigrationKind::High);
    }

    #[test]
    fn monitor_requests_low_migration_when_underloaded() {
        // u = 0.05 → f_l = (1 - 0.1)^0.25 ≈ 0.974: fires almost surely
        // within a few ticks.
        let c = cluster_with_utils(&[0.05]);
        let mut p = EcoCloudPolicy::paper(8);
        let got = (0..50).any(|_| {
            p.monitor(&c.view(), ServerId(0), 0.0)
                .is_some_and(|r| r.kind == MigrationKind::Low)
        });
        assert!(got, "low migration never requested at u=0.05");
    }

    #[test]
    fn grace_suppresses_low_migrations() {
        let c = cluster_with_utils(&[0.05]);
        let mut p = EcoCloudPolicy::paper(9);
        p.on_server_woken(ServerId(0), 0.0);
        for _ in 0..50 {
            assert!(
                p.monitor(&c.view(), ServerId(0), 100.0).is_none(),
                "low migration fired during grace"
            );
        }
        // After the grace period the server behaves normally again.
        let got = (0..50).any(|_| p.monitor(&c.view(), ServerId(0), 2000.0).is_some());
        assert!(got);
    }

    #[test]
    fn monitor_ignores_empty_servers() {
        let c = cluster_with_utils(&[0.0]);
        let mut p = EcoCloudPolicy::paper(10);
        assert!(p.monitor(&c.view(), ServerId(0), 0.0).is_none());
    }

    #[test]
    fn high_migration_picks_vm_large_enough() {
        // Server with 3 VMs: 0.02, 0.03 and 0.5 of capacity, total
        // u = 0.55... make it overloaded: 0.5+0.3+0.25 = 1.05.
        let fleet = Fleet::uniform(1, 6);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for (i, frac) in [0.5, 0.3, 0.25].iter().enumerate() {
            let vm = VmId(i as u32);
            c.vms.push(Vm {
                id: vm,
                trace_idx: 0,
                demand_mhz: frac * 12_000.0,
                ram_mb: 0.0,
                state: VmState::Departed,
                arrived_secs: 0.0,
                priority: Default::default(),
                migration_seq: 0,
                lifetime_secs: None,
                started: false,
                evictable: false,
            });
            c.attach(vm, ServerId(0), 0.0);
        }
        // u = 1.05 (clamped to 1 for f_h → fires surely); need =
        // u − T_h = 1.05 − 0.95 = 0.10: every VM qualifies here, so
        // just check a request fires and targets a hosted VM.
        let mut p = EcoCloudPolicy::paper(11);
        let req = p.monitor(&c.view(), ServerId(0), 0.0).expect("no request");
        assert!(req.vm.0 < 3);
        assert_eq!(req.kind, MigrationKind::High);
    }

    #[test]
    fn ram_constraint_vetoes_acceptance() {
        // One server at the assignment sweet spot for CPU (fa ≈ 1) but
        // memory-full: a RAM-carrying VM must be rejected by the aware
        // policy and accepted by the oblivious one.
        let mut c = cluster_with_utils(&[0.675]);
        c.servers[0].used_ram_mb = 0.89 * c.servers[0].spec.ram_mb;
        let req = PlacementRequest {
            demand_mhz: 10.0,
            ram_mb: 0.05 * c.servers[0].spec.ram_mb, // would exceed 90 %
            kind: PlacementKind::NewVm,
            exclude: None,
            now_secs: 0.0,
        };
        let mut aware = EcoCloudPolicy::new(EcoCloudConfig {
            wake_on_assignment_exhaustion: false,
            ..EcoCloudConfig::paper(20)
        });
        for _ in 0..20 {
            assert_eq!(aware.place(&c.view(), &req), PlaceOutcome::Reject);
        }
        let mut blind = EcoCloudPolicy::new(EcoCloudConfig {
            wake_on_assignment_exhaustion: false,
            ram_aware: false,
            ..EcoCloudConfig::paper(20)
        });
        let accepted =
            (0..20).any(|_| matches!(blind.place(&c.view(), &req), PlaceOutcome::Place(_)));
        assert!(accepted, "oblivious policy never accepted at fa(u*) ≈ 1");
    }

    #[test]
    fn ram_constraint_filters_wake_targets() {
        // The only hibernated server is too small for the VM's memory.
        let mut c = cluster_with_utils(&[0.89, 0.0]);
        c.set_server_state(ServerId(1), ServerState::Hibernated);
        let req = PlacementRequest {
            demand_mhz: 10.0,
            ram_mb: 0.95 * c.servers[1].spec.ram_mb,
            kind: PlacementKind::NewVm,
            exclude: None,
            now_secs: 0.0,
        };
        let mut p = EcoCloudPolicy::paper(21);
        assert_eq!(p.place(&c.view(), &req), PlaceOutcome::Reject);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cluster_with_utils(&[0.4, 0.5, 0.6, 0.7]);
        let run = |seed| {
            let mut p = EcoCloudPolicy::paper(seed);
            (0..30)
                .map(|_| match p.place(&c.view(), &new_vm_req(120.0)) {
                    PlaceOutcome::Place(s) => s.0 as i64,
                    PlaceOutcome::WakeThenPlace(s) => 1000 + s.0 as i64,
                    PlaceOutcome::Reject => -1,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn acceptance_rate_tracks_fa() {
        // Statistical check: a single server at utilization u should
        // accept a tiny VM with empirical frequency ≈ f_a(u).
        let u = 0.5;
        let c = cluster_with_utils(&[u]);
        let mut p = EcoCloudPolicy::new(EcoCloudConfig {
            wake_on_assignment_exhaustion: false,
            assignment_rounds: 1, // measure a single trial, not 1-(1-f)^r
            ..EcoCloudConfig::paper(12)
        });
        let trials = 4000;
        let mut accepted = 0;
        for _ in 0..trials {
            if matches!(p.place(&c.view(), &new_vm_req(1.0)), PlaceOutcome::Place(_)) {
                accepted += 1;
            }
        }
        let expect = p.config().assignment.eval(u);
        let got = accepted as f64 / trials as f64;
        assert!(
            (got - expect).abs() < 0.03,
            "empirical acceptance {got} vs f_a({u}) = {expect}"
        );
    }
}
