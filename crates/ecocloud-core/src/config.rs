//! ecoCloud policy configuration.

use crate::functions::{AssignmentFunction, MigrationFunctions};
use serde::{Deserialize, Serialize};

/// All parameters of the ecoCloud policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EcoCloudConfig {
    /// Assignment function parameters (Eq. 1–2).
    pub assignment: AssignmentFunction,
    /// Migration function parameters (Eq. 3–4).
    pub migration: MigrationFunctions,
    /// Newcomer grace period in seconds: a just-woken server "always
    /// responds positively to new assignment requests for a limited
    /// interval of time, set to 30 minutes" (§IV).
    pub grace_secs: f64,
    /// Anti-ping-pong factor: a VM leaving an overloaded server is
    /// offered with threshold `T_a' = factor × u_source` (§II: 0.9).
    pub high_migration_ta_factor: f64,
    /// Whether the manager wakes a hibernated server when no active
    /// server accepts a *new* VM (§II; always true in the paper — the
    /// toggle exists for ablation).
    pub wake_on_assignment_exhaustion: bool,
    /// Whether an overloaded server may trigger a wake-up when nobody
    /// accepts its migrating VM. The paper's low-migration rule ("the
    /// VM is not migrated at all") explicitly never wakes; for high
    /// migrations relieving an overload is worth a switch-on.
    pub wake_on_high_migration: bool,
    /// Whether servers in their grace period suppress low-migration
    /// requests (prevents a freshly woken, still lightly loaded server
    /// from immediately shedding its first VMs).
    pub grace_suppresses_low_migration: bool,
    /// Minimum spacing between two low-migration *trials* of the same
    /// server, seconds. The monitor samples utilization every few
    /// seconds, but `f_l` with the paper's `α = 0.25` is large over
    /// most of `[0, T_l)`; re-rolling it at monitor frequency would
    /// drain servers orders of magnitude faster than the migration
    /// rates of the paper's Fig. 9. One trial per CoMon epoch (300 s)
    /// reproduces the reported gradual, smooth drain. High migrations
    /// keep the fast cadence — overloads must clear within seconds
    /// (Fig. 11's "98 % of violations shorter than 30 s").
    pub low_migration_backoff_secs: f64,
    /// Whether servers check memory at all before volunteering. The
    /// paper's published procedure is CPU-only (`false` reproduces it);
    /// `true` enables the §V "critical resource + constraints"
    /// strategy with CPU as the trial resource and memory as a hard
    /// feasibility constraint.
    pub ram_aware: bool,
    /// Maximum RAM commitment fraction a server accepts when
    /// `ram_aware` is set and the VM carries a RAM demand.
    pub ram_threshold: f64,
    /// Number of invitation rounds the manager broadcasts before
    /// declaring that no server is available (each round re-rolls every
    /// server's Bernoulli trial). One round is the paper's literal
    /// text; with a single round the small per-arrival probability that
    /// *every* trial fails by chance (≈ `Π(1 − f_a(u_i))`, often a few
    /// per mille with tens of busy servers) triggers spurious wake-ups
    /// hundreds of times per day at realistic arrival rates, inflating
    /// the active-server count well beyond the paper's Figs. 7/12. Two
    /// rounds square that probability and make wake-ups track genuine
    /// capacity shortage.
    pub assignment_rounds: u32,
    /// RNG seed for all Bernoulli trials and uniform selections.
    pub seed: u64,
}

impl EcoCloudConfig {
    /// The paper's §III parameterization: `T_a = 0.90`, `p = 3`,
    /// `T_l = 0.50`, `T_h = 0.95`, `α = β = 0.25`, 30-minute grace.
    pub fn paper(seed: u64) -> Self {
        Self {
            assignment: AssignmentFunction::paper(),
            migration: MigrationFunctions::paper(),
            grace_secs: 1800.0,
            high_migration_ta_factor: 0.9,
            wake_on_assignment_exhaustion: true,
            wake_on_high_migration: true,
            grace_suppresses_low_migration: true,
            low_migration_backoff_secs: 300.0,
            ram_aware: true,
            ram_threshold: 0.9,
            assignment_rounds: 2,
            seed,
        }
    }

    /// Validates cross-parameter constraints (the §III sensitivity
    /// analysis: "the threshold T_h must be higher than the assignment
    /// threshold T_a, otherwise VM migrations would not allow the CPU
    /// to be exploited to the desired extent").
    pub fn validate(&self) {
        assert!(
            self.migration.th > self.assignment.ta,
            "T_h ({}) must exceed T_a ({}) — see §III sensitivity discussion",
            self.migration.th,
            self.assignment.ta
        );
        assert!(self.grace_secs >= 0.0, "grace must be non-negative");
        assert!(
            self.high_migration_ta_factor > 0.0 && self.high_migration_ta_factor <= 1.0,
            "anti-ping-pong factor must be in (0, 1]"
        );
        assert!(self.assignment_rounds >= 1, "need at least one round");
        assert!(
            self.ram_threshold > 0.0 && self.ram_threshold <= 1.0,
            "RAM threshold must be in (0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_section_3() {
        let c = EcoCloudConfig::paper(1);
        c.validate();
        assert_eq!(c.assignment.ta, 0.9);
        assert_eq!(c.assignment.p, 3.0);
        assert_eq!(c.migration.tl, 0.5);
        assert_eq!(c.migration.th, 0.95);
        assert_eq!(c.migration.alpha, 0.25);
        assert_eq!(c.migration.beta, 0.25);
        assert_eq!(c.grace_secs, 1800.0);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_th_below_ta() {
        let mut c = EcoCloudConfig::paper(1);
        c.migration = MigrationFunctions::new(0.3, 0.8, 0.25, 0.25); // T_h < T_a = 0.9
        c.validate();
    }
}
