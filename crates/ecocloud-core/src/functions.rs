//! The ecoCloud probability functions (paper Eqs. 1–4).
//!
//! All decisions in ecoCloud are Bernoulli trials whose success
//! probability is a function of the local CPU utilization `u ∈ [0, 1]`:
//!
//! * [`AssignmentFunction`] — Eq. 1–2: `f_a(u) = u^p (T_a − u) / M_p`,
//!   zero above `T_a`, normalized so its maximum (at
//!   `u* = p/(p+1)·T_a`) equals 1. Servers with intermediate
//!   utilization accept new VMs; nearly idle and nearly full servers
//!   refuse (the three §II guidelines).
//! * [`MigrationFunctions`] — Eq. 3: `f_l(u) = (1 − u/T_l)^α` triggers
//!   *low migrations* below `T_l`; Eq. 4:
//!   `f_h(u) = (1 + (u−1)/(1−T_h))^β` triggers *high migrations* above
//!   `T_h`.

use serde::{Deserialize, Serialize};

/// Eq. 1–2: the assignment probability function.
///
/// ```
/// use ecocloud_core::AssignmentFunction;
/// let fa = AssignmentFunction::paper(); // Ta = 0.9, p = 3
/// assert_eq!(fa.eval(0.0), 0.0);        // idle servers refuse
/// assert_eq!(fa.eval(0.95), 0.0);       // saturated servers refuse
/// assert!((fa.eval(fa.u_star()) - 1.0).abs() < 1e-12); // sweet spot
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AssignmentFunction {
    /// Maximum allowed utilization `T_a` (paper default 0.9).
    pub ta: f64,
    /// Shape parameter `p` (paper default 3): larger `p` pushes the
    /// most-likely-to-accept point towards `T_a`, strengthening
    /// consolidation.
    pub p: f64,
}

impl AssignmentFunction {
    /// Creates the function, validating `0 < ta ≤ 1` and `p > 0`.
    pub fn new(ta: f64, p: f64) -> Self {
        assert!(ta > 0.0 && ta <= 1.0, "T_a must be in (0, 1], got {ta}");
        assert!(p > 0.0, "p must be positive, got {p}");
        Self { ta, p }
    }

    /// The paper's §III parameterization: `T_a = 0.9`, `p = 3`.
    pub fn paper() -> Self {
        Self::new(0.9, 3.0)
    }

    /// The normalization factor `M_p` of Eq. 2, which scales the
    /// maximum of `u^p (T_a − u)` to 1.
    #[inline]
    pub fn m_p(&self) -> f64 {
        let p = self.p;
        p.powf(p) / (p + 1.0).powf(p + 1.0) * self.ta.powf(p + 1.0)
    }

    /// Utilization at which acceptance is most likely:
    /// `u* = p/(p+1) · T_a`.
    #[inline]
    pub fn u_star(&self) -> f64 {
        self.p / (self.p + 1.0) * self.ta
    }

    /// `f_a(u)`: acceptance probability at utilization `u`.
    ///
    /// Defined as 0 outside `[0, T_a]` (a server above the threshold
    /// never accepts; negative utilizations cannot occur but are mapped
    /// to 0 for robustness).
    #[inline]
    pub fn eval(&self, u: f64) -> f64 {
        self.eval_normalized(u, self.m_p())
    }

    /// [`Self::eval`] with the normalization factor hoisted out: `m_p`
    /// must be `self.m_p()`. The invitation broadcast evaluates `f_a`
    /// once per fitting server, and `m_p` costs three `powf` calls —
    /// computing it once per round instead of once per server removes
    /// most of the transcendental work from the placement hot loop.
    /// The result is bit-identical to [`Self::eval`]: the same divisor
    /// value feeds the same division.
    #[inline]
    pub fn eval_normalized(&self, u: f64, m_p: f64) -> f64 {
        if !(0.0..=self.ta).contains(&u) {
            return 0.0;
        }
        let v = u.powf(self.p) * (self.ta - u) / m_p;
        // Guard the float dust at the maximum.
        v.clamp(0.0, 1.0)
    }

    /// Re-parameterizes with a different threshold, keeping `p`. Used
    /// by the anti-ping-pong rule of §II, which runs the assignment
    /// procedure with `T_a' = 0.9 × u_source` when relocating a VM off
    /// an overloaded server.
    pub fn with_threshold(&self, ta: f64) -> Self {
        Self::new(ta.clamp(f64::MIN_POSITIVE, 1.0), self.p)
    }
}

/// Eq. 3–4: the migration probability functions.
///
/// ```
/// use ecocloud_core::MigrationFunctions;
/// let m = MigrationFunctions::paper(); // Tl = 0.5, Th = 0.95
/// assert_eq!(m.f_low(0.0), 1.0);   // empty servers want to drain
/// assert_eq!(m.f_low(0.7), 0.0);   // dead zone between the thresholds
/// assert_eq!(m.f_high(0.7), 0.0);
/// assert_eq!(m.f_high(1.0), 1.0);  // saturated servers must shed
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MigrationFunctions {
    /// Lower utilization threshold `T_l` (paper §III: 0.5).
    pub tl: f64,
    /// Upper utilization threshold `T_h` (paper §III: 0.95).
    pub th: f64,
    /// Shape `α` of the low-migration function (paper §III: 0.25).
    pub alpha: f64,
    /// Shape `β` of the high-migration function (paper §III: 0.25).
    pub beta: f64,
}

impl MigrationFunctions {
    /// Creates the functions, validating `0 < tl < th < 1` and positive
    /// shapes.
    pub fn new(tl: f64, th: f64, alpha: f64, beta: f64) -> Self {
        assert!(tl > 0.0, "T_l must be positive, got {tl}");
        assert!(th < 1.0, "T_h must be below 1, got {th}");
        assert!(tl < th, "T_l ({tl}) must be below T_h ({th})");
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        assert!(beta > 0.0, "beta must be positive, got {beta}");
        Self {
            tl,
            th,
            alpha,
            beta,
        }
    }

    /// The paper's §III parameterization:
    /// `T_l = 0.5, T_h = 0.95, α = β = 0.25`.
    pub fn paper() -> Self {
        Self::new(0.5, 0.95, 0.25, 0.25)
    }

    /// The parameterization of the paper's Fig. 3 illustration
    /// (`T_l = 0.3, T_h = 0.8`).
    pub fn fig3(alpha: f64, beta: f64) -> Self {
        Self::new(0.3, 0.8, alpha, beta)
    }

    /// `f_l(u)`: probability of requesting a low migration. Non-zero
    /// only below `T_l`; equals 1 at `u = 0`.
    #[inline]
    pub fn f_low(&self, u: f64) -> f64 {
        let u = u.max(0.0);
        if u >= self.tl {
            return 0.0;
        }
        (1.0 - u / self.tl).powf(self.alpha)
    }

    /// `f_h(u)`: probability of requesting a high migration. Non-zero
    /// only above `T_h`; equals 1 at `u = 1`. Utilizations above 1
    /// (demand exceeding capacity) saturate at 1.
    #[inline]
    pub fn f_high(&self, u: f64) -> f64 {
        let u = u.min(1.0);
        if u <= self.th {
            return 0.0;
        }
        (1.0 + (u - 1.0) / (1.0 - self.th)).powf(self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mp_normalizes_maximum_to_one() {
        for p in [1.0, 2.0, 3.0, 5.0, 10.0] {
            for ta in [0.5, 0.8, 0.9, 1.0] {
                let f = AssignmentFunction::new(ta, p);
                let at_star = f.eval(f.u_star());
                assert!(
                    (at_star - 1.0).abs() < 1e-12,
                    "fa(u*) = {at_star} for p={p}, ta={ta}"
                );
            }
        }
    }

    #[test]
    fn fa_is_zero_at_boundaries_and_outside() {
        let f = AssignmentFunction::paper();
        assert_eq!(f.eval(0.0), 0.0);
        assert!(f.eval(0.9) < 1e-12);
        assert_eq!(f.eval(0.95), 0.0);
        assert_eq!(f.eval(-0.1), 0.0);
        assert_eq!(f.eval(1.5), 0.0);
    }

    #[test]
    fn u_star_moves_towards_ta_with_p() {
        // §II: "the value at which assignment attempts succeed with the
        // highest probability is p/(p+1)·Ta, which increases and
        // approaches Ta as p increases".
        let ta = 0.9;
        let u2 = AssignmentFunction::new(ta, 2.0).u_star();
        let u3 = AssignmentFunction::new(ta, 3.0).u_star();
        let u5 = AssignmentFunction::new(ta, 5.0).u_star();
        assert!(u2 < u3 && u3 < u5 && u5 < ta);
        assert!((u3 - 0.675).abs() < 1e-12);
    }

    #[test]
    fn fa_unimodal_shape() {
        let f = AssignmentFunction::paper();
        let us = f.u_star();
        let mut prev = f.eval(0.0);
        let mut u = 0.01;
        while u < us {
            let v = f.eval(u);
            assert!(v >= prev - 1e-12, "fa not increasing before u* at {u}");
            prev = v;
            u += 0.01;
        }
        prev = f.eval(us);
        u = us + 0.01;
        while u < f.ta {
            let v = f.eval(u);
            assert!(v <= prev + 1e-12, "fa not decreasing after u* at {u}");
            prev = v;
            u += 0.01;
        }
    }

    #[test]
    fn f_low_boundary_values() {
        let m = MigrationFunctions::fig3(0.25, 0.25);
        assert_eq!(m.f_low(0.0), 1.0);
        assert_eq!(m.f_low(0.3), 0.0);
        assert_eq!(m.f_low(0.5), 0.0);
        assert!(m.f_low(0.15) > 0.0 && m.f_low(0.15) < 1.0);
    }

    #[test]
    fn f_high_boundary_values() {
        let m = MigrationFunctions::fig3(0.25, 1.0);
        assert_eq!(m.f_high(0.5), 0.0);
        assert_eq!(m.f_high(0.8), 0.0);
        assert!((m.f_high(1.0) - 1.0).abs() < 1e-12);
        assert!((m.f_high(0.9) - 0.5).abs() < 1e-12); // linear for β=1
        assert_eq!(m.f_high(1.7), m.f_high(1.0)); // saturates
    }

    #[test]
    fn alpha_beta_modulate_shape() {
        // Smaller exponents make the functions steeper near the
        // thresholds (Fig. 3: the 0.25 curves dominate the 1.0 curves).
        let gentle = MigrationFunctions::fig3(1.0, 1.0);
        let eager = MigrationFunctions::fig3(0.25, 0.25);
        assert!(eager.f_low(0.2) > gentle.f_low(0.2));
        assert!(eager.f_high(0.9) > gentle.f_high(0.9));
    }

    #[test]
    fn with_threshold_anti_ping_pong() {
        let f = AssignmentFunction::paper();
        let g = f.with_threshold(0.9 * 0.96);
        assert!((g.ta - 0.864).abs() < 1e-12);
        assert_eq!(g.p, f.p);
        assert_eq!(g.eval(0.87), 0.0); // above the lowered threshold
    }

    #[test]
    #[should_panic(expected = "T_l")]
    fn rejects_inverted_thresholds() {
        MigrationFunctions::new(0.9, 0.5, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "T_h")]
    fn rejects_th_of_one() {
        MigrationFunctions::new(0.5, 1.0, 1.0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_fa_in_unit_interval(u in -0.5f64..1.5, p in 0.5f64..8.0, ta in 0.1f64..1.0) {
            let f = AssignmentFunction::new(ta, p);
            let v = f.eval(u);
            prop_assert!((0.0..=1.0).contains(&v), "fa({u}) = {v}");
        }

        #[test]
        fn prop_f_low_in_unit_interval_and_decreasing(
            u1 in 0.0f64..1.0, u2 in 0.0f64..1.0,
            tl in 0.05f64..0.6, alpha in 0.1f64..3.0,
        ) {
            let m = MigrationFunctions::new(tl, 0.95, alpha, 1.0);
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            let a = m.f_low(lo);
            let b = m.f_low(hi);
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!(a >= b - 1e-12, "f_low not decreasing: f({lo})={a} < f({hi})={b}");
        }

        #[test]
        fn prop_f_high_in_unit_interval_and_increasing(
            u1 in 0.0f64..1.2, u2 in 0.0f64..1.2,
            th in 0.6f64..0.99, beta in 0.1f64..3.0,
        ) {
            let m = MigrationFunctions::new(0.3, th, 1.0, beta);
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            let a = m.f_high(lo);
            let b = m.f_high(hi);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(b >= a - 1e-12, "f_high not increasing");
        }

        #[test]
        fn prop_dead_zone_between_thresholds(
            u in 0.0f64..1.0, tl in 0.1f64..0.4, th in 0.6f64..0.95,
        ) {
            // §II: "when the utilization is in between the thresholds,
            // migrations are inhibited".
            let m = MigrationFunctions::new(tl, th, 0.25, 0.25);
            if u >= tl && u <= th {
                prop_assert_eq!(m.f_low(u), 0.0);
                prop_assert_eq!(m.f_high(u), 0.0);
            }
        }
    }
}
