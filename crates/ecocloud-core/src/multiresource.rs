//! The multi-resource extension sketched in the paper's §V.
//!
//! The paper proposes two avenues for extending ecoCloud beyond CPU:
//!
//! 1. **Independent trials** — "define assignment and migration
//!    functions for each resource type. A server executes a Bernoulli
//!    trial for each resource, and declares its availability … only
//!    when all trials are successful." The probability of availability
//!    is then the *product* of the per-resource probabilities.
//! 2. **Critical resource + constraints** — "execute a single Bernoulli
//!    trial for the most critical resource and use the other resources
//!    as constraints to be satisfied."
//!
//! Both strategies are implemented here over an arbitrary resource
//! vector; the `ext_multiresource` experiment exercises them on a
//! CPU + RAM scenario.

use crate::functions::AssignmentFunction;
use serde::{Deserialize, Serialize};

/// Which §V combination strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombineStrategy {
    /// One Bernoulli trial per resource; accept only if all succeed
    /// (acceptance probability = product of per-resource `f_a`).
    AllTrials,
    /// One trial on the most critical (highest-utilization) resource;
    /// every other resource only needs to stay under its threshold.
    CriticalResource,
}

/// Multi-resource assignment: one [`AssignmentFunction`] per resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiResourceAssignment {
    /// Per-resource assignment functions (same order as the
    /// utilization vectors passed to [`Self::acceptance_probability`]).
    pub functions: Vec<AssignmentFunction>,
    /// Combination strategy.
    pub strategy: CombineStrategy,
}

impl MultiResourceAssignment {
    /// Creates the extension over `functions.len()` resources.
    pub fn new(functions: Vec<AssignmentFunction>, strategy: CombineStrategy) -> Self {
        assert!(!functions.is_empty(), "need at least one resource");
        Self {
            functions,
            strategy,
        }
    }

    /// Number of resources.
    pub fn n_resources(&self) -> usize {
        self.functions.len()
    }

    /// Probability that a server with per-resource utilizations `u`
    /// declares availability.
    ///
    /// # Panics
    /// Panics if `u.len()` differs from the number of resources.
    pub fn acceptance_probability(&self, u: &[f64]) -> f64 {
        assert_eq!(
            u.len(),
            self.functions.len(),
            "utilization vector has {} entries for {} resources",
            u.len(),
            self.functions.len()
        );
        match self.strategy {
            CombineStrategy::AllTrials => self
                .functions
                .iter()
                .zip(u)
                .map(|(f, &ui)| f.eval(ui))
                .product(),
            CombineStrategy::CriticalResource => {
                // Criticality = utilization relative to the resource's
                // own threshold.
                let (critical, _) = self
                    .functions
                    .iter()
                    .zip(u)
                    .enumerate()
                    .map(|(i, (f, &ui))| (i, ui / f.ta))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty");
                // Constraints: every non-critical resource must be
                // under its threshold.
                for (i, (f, &ui)) in self.functions.iter().zip(u).enumerate() {
                    if i != critical && ui > f.ta {
                        return 0.0;
                    }
                }
                self.functions[critical].eval(u[critical])
            }
        }
    }

    /// True when a VM with per-resource demands `demand` (as fractions
    /// of the server's capacity in each resource) fits under every
    /// threshold at current utilizations `u` — the multi-resource
    /// analogue of the single-resource fit check.
    pub fn fits(&self, u: &[f64], demand: &[f64]) -> bool {
        assert_eq!(u.len(), self.functions.len());
        assert_eq!(demand.len(), self.functions.len());
        self.functions
            .iter()
            .zip(u)
            .zip(demand)
            .all(|((f, &ui), &d)| ui + d <= f.ta + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_resources(strategy: CombineStrategy) -> MultiResourceAssignment {
        MultiResourceAssignment::new(
            vec![
                AssignmentFunction::new(0.9, 3.0),
                AssignmentFunction::new(0.8, 2.0),
            ],
            strategy,
        )
    }

    #[test]
    fn all_trials_is_product() {
        let m = two_resources(CombineStrategy::AllTrials);
        let u = [0.5, 0.4];
        let expect = m.functions[0].eval(0.5) * m.functions[1].eval(0.4);
        assert!((m.acceptance_probability(&u) - expect).abs() < 1e-12);
    }

    #[test]
    fn all_trials_zero_when_any_resource_saturated() {
        let m = two_resources(CombineStrategy::AllTrials);
        assert_eq!(m.acceptance_probability(&[0.5, 0.95]), 0.0);
        assert_eq!(m.acceptance_probability(&[0.95, 0.5]), 0.0);
    }

    #[test]
    fn critical_resource_picks_relative_max() {
        let m = two_resources(CombineStrategy::CriticalResource);
        // 0.6/0.9 = 0.67 < 0.6/0.8 = 0.75 → resource 1 is critical.
        let p = m.acceptance_probability(&[0.6, 0.6]);
        assert!((p - m.functions[1].eval(0.6)).abs() < 1e-12);
    }

    #[test]
    fn critical_resource_respects_constraints() {
        let m = two_resources(CombineStrategy::CriticalResource);
        // Resource 0 over threshold makes it critical (ratio > 1):
        // trial runs on resource 0 where f_a = 0.
        assert_eq!(m.acceptance_probability(&[0.95, 0.1]), 0.0);
        // Non-critical resource over threshold vetoes the acceptance.
        // (Here resource 1 is over threshold AND critical, same
        // result.)
        assert_eq!(m.acceptance_probability(&[0.1, 0.85]), 0.0);
    }

    #[test]
    fn fit_check_vectorized() {
        let m = two_resources(CombineStrategy::AllTrials);
        assert!(m.fits(&[0.5, 0.5], &[0.3, 0.2]));
        assert!(!m.fits(&[0.5, 0.5], &[0.3, 0.4])); // 0.9 > T_a(1)=0.8
    }

    #[test]
    #[should_panic(expected = "utilization vector")]
    fn rejects_dimension_mismatch() {
        two_resources(CombineStrategy::AllTrials).acceptance_probability(&[0.5]);
    }

    proptest! {
        #[test]
        fn prop_probabilities_in_unit_interval(
            u0 in 0.0f64..1.2, u1 in 0.0f64..1.2,
        ) {
            for strategy in [CombineStrategy::AllTrials, CombineStrategy::CriticalResource] {
                let m = two_resources(strategy);
                let p = m.acceptance_probability(&[u0, u1]);
                prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
            }
        }

        #[test]
        fn prop_all_trials_never_exceeds_critical(
            u0 in 0.0f64..0.9, u1 in 0.0f64..0.8,
        ) {
            // Demanding *all* trials succeed is at most as permissive
            // as demanding only the critical one.
            let all = two_resources(CombineStrategy::AllTrials);
            let crit = two_resources(CombineStrategy::CriticalResource);
            let pa = all.acceptance_probability(&[u0, u1]);
            let pc = crit.acceptance_probability(&[u0, u1]);
            prop_assert!(pa <= pc + 1e-12, "all={pa} > critical={pc}");
        }
    }
}
