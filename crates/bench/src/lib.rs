//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches cover each layer the paper's evaluation leans on:
//!
//! | bench        | covers |
//! |--------------|--------|
//! | `functions`  | the Eq. 1–4 probability functions (Figs. 2–3) |
//! | `traces`     | synthetic trace generation (Figs. 4–5) |
//! | `placement`  | one assignment round vs fleet size — the paper's decentralization/scalability argument, ecoCloud vs Best Fit |
//! | `simulation` | full simulated hours of the Figs. 6–11 engine |
//! | `large_fleet`| 5 000-server / 48 h event-loop throughput — the O(affected) accounting's headline case |
//! | `shares`     | exact (Eqs. 6–9) vs simplified (Eq. 11) share evaluation (Fig. 13) |
//! | `fluid`      | RK4 integration of the ODE model (Fig. 13) |

use ecocloud::prelude::*;

/// A deterministic scenario of the given size for throughput benches.
pub fn bench_scenario(n_servers: usize, n_vms: usize, hours: u64, seed: u64) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::small(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

/// The fleet ladder shared by the Criterion `large_fleet` bench and
/// the `event_loop_snapshot` engine grid: every rung runs
/// [`large_fleet_scenario`] (2 VMs per server, 48 h), so a Criterion
/// rung and the snapshot's engine point at the same size are the
/// *same* fixed-seed simulation — one measured statistically, one
/// committed as `BENCH_event_loop.json`. Criterion covers the first
/// two rungs (statistics get slow above 5 000); the snapshot covers
/// them all, with a `reference_event_queue` heap baseline at the
/// mid-size rungs.
pub const LARGE_FLEET_LADDER: [usize; 5] = [1_000, 5_000, 20_000, 50_000, 100_000];

/// Rungs of [`LARGE_FLEET_LADDER`] the Criterion bench runs.
pub const CRITERION_RUNGS: usize = 2;

/// Fleet sizes for the snapshot's queue micro-benchmarks (pure
/// [`ecocloud::dcsim::events::EventQueue`] throughput, no engine).
pub const QUEUE_FLEET_GRID: [u64; 7] = [
    5_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
];

/// The large-fleet stress scenario: `n_servers` paper-mix machines
/// hosting `2 × n_servers` VMs for 48 simulated hours — an order of
/// magnitude past the paper's 400-server evaluation, where full-fleet
/// scans dominated the event loop before the incremental accounting.
pub fn large_fleet_scenario(n_servers: usize, seed: u64) -> Scenario {
    bench_scenario(n_servers, 2 * n_servers, 48, seed)
}

/// Summary of one run of a large-fleet seed sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Seed the replica ran with.
    pub seed: u64,
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Time-weighted mean of powered servers.
    pub mean_active_servers: f64,
    /// Events popped from the calendar.
    pub events_processed: u64,
}

/// Runs `replicas` large-fleet simulations (seeds `base_seed..`) on
/// all available cores via [`ecocloud::parallel::run_seeds`] and
/// returns one [`SweepPoint`] per seed, in seed order. This is the
/// multi-replica form of the `large_fleet` bench and doubles as a
/// determinism stress: each replica is bit-identical to a lone run of
/// the same seed.
pub fn large_fleet_seed_sweep(
    n_servers: usize,
    base_seed: u64,
    replicas: usize,
) -> Vec<SweepPoint> {
    ecocloud::parallel::run_seeds(base_seed, replicas, |seed| {
        let res = large_fleet_scenario(n_servers, seed).run(EcoCloudPolicy::paper(seed));
        SweepPoint {
            seed,
            energy_kwh: res.summary.energy_kwh,
            mean_active_servers: res.summary.mean_active_servers,
            events_processed: res.summary.events_processed,
        }
    })
}

/// Acceptance-probability vector with a realistic operating-point mix
/// (some drained, some near threshold, some intermediate).
pub fn mixed_probabilities(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match i % 4 {
            0 => 0.05,
            1 => 0.35,
            2 => 0.7,
            _ => 0.95,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: the sweep machinery runs end to end at a CI-friendly
    /// size and each replica matches a lone run of the same seed.
    #[test]
    fn seed_sweep_matches_lone_runs() {
        let points = large_fleet_seed_sweep(30, 5, 2);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.events_processed > 0);
            let lone = large_fleet_scenario(30, p.seed).run(EcoCloudPolicy::paper(p.seed));
            assert_eq!(p.energy_kwh, lone.summary.energy_kwh, "seed {}", p.seed);
            assert_eq!(p.events_processed, lone.summary.events_processed);
        }
    }
}
