//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches cover each layer the paper's evaluation leans on:
//!
//! | bench        | covers |
//! |--------------|--------|
//! | `functions`  | the Eq. 1–4 probability functions (Figs. 2–3) |
//! | `traces`     | synthetic trace generation (Figs. 4–5) |
//! | `placement`  | one assignment round vs fleet size — the paper's decentralization/scalability argument, ecoCloud vs Best Fit |
//! | `simulation` | full simulated hours of the Figs. 6–11 engine |
//! | `shares`     | exact (Eqs. 6–9) vs simplified (Eq. 11) share evaluation (Fig. 13) |
//! | `fluid`      | RK4 integration of the ODE model (Fig. 13) |

use ecocloud::prelude::*;

/// A deterministic scenario of the given size for throughput benches.
pub fn bench_scenario(n_servers: usize, n_vms: usize, hours: u64, seed: u64) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms,
        duration_secs: hours * 3600,
        ..TraceConfig::small(seed)
    });
    let mut config = SimConfig::paper_48h(seed);
    config.duration_secs = (hours * 3600) as f64;
    config.record_server_utilization = false;
    Scenario {
        fleet: Fleet::thirds(n_servers),
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

/// Acceptance-probability vector with a realistic operating-point mix
/// (some drained, some near threshold, some intermediate).
pub fn mixed_probabilities(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match i % 4 {
            0 => 0.05,
            1 => 0.35,
            2 => 0.7,
            _ => 0.95,
        })
        .collect()
}
