//! Regenerates `BENCH_event_loop.json` — the committed event-loop
//! performance snapshot (ROADMAP item 1, PR 6).
//!
//! Two layers are measured:
//!
//! * **Queue throughput** (`queue_throughput`): events/sec through
//!   [`EventQueue`] under the simulator's characteristic mix — a large
//!   standing population of far-future departures plus a high rate of
//!   near-term ticks and completions — for the bucketed calendar queue
//!   vs. the retained `BinaryHeap` reference. This is where the
//!   calendar's O(1) wheel pays off: the heap pays `log(pending)`
//!   sift-downs on *every* near-term pop because the departures sit in
//!   the same array, while the calendar keeps them in the overflow
//!   heap it never touches.
//! * **Engine runs** (`engine_runs`): full fixed-seed simulations on a
//!   servers × hours grid (events/sec, wall seconds, peak RSS), with a
//!   `reference_event_queue` (BinaryHeap) baseline at selected sizes.
//!   Each point runs in a child process so peak RSS is per-run, not
//!   the max over the whole grid.
//!
//! * **Shard runs** (`shard_runs`): the same fixed-seed scenarios
//!   through the deterministic shard engine (`dcsim::shard`) on a
//!   shard-count × fleet-size grid. Output is byte-identical at every
//!   `K` — `--check` verifies that, machine-independently — so these
//!   rows measure pure engine overhead/speedup. Wall-clock gains
//!   require real cores: the committed numbers record
//!   `measured_cores`, and a single-core box (like the one that wrote
//!   the current snapshot) shows overhead, not speedup.
//!
//! Usage:
//!   event_loop_snapshot                 # full grid → BENCH_event_loop.json
//!   event_loop_snapshot --quick         # queue benches + small engine point
//!   event_loop_snapshot --check FILE    # re-measure, fail if calendar/heap
//!                                       # speedup drops >20 % vs FILE or the
//!                                       # shard engine breaks K-invariance
//!   event_loop_snapshot --queue FLEET [MIX]   # one queue point, stdout only
//!   event_loop_snapshot --engine N VMS HOURS SEED QUEUE [SHARDS]  # child

use ecocloud::dcsim::events::{Event, EventQueue};
use ecocloud::dcsim::ids::ServerId;
use ecocloud::dcsim::ShardConfig;
use ecocloud::prelude::EcoCloudPolicy;
use ecocloud_bench::bench_scenario;
use std::fmt::Write as _;
use std::time::Instant;

/// Pops measured per queue-bench point (after warm-up).
const QUEUE_OPS: u64 = 2_000_000;
/// Allowed events/sec regression before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// SplitMix64 — a self-contained deterministic stream for the bench
/// schedule (the bench must not perturb, or depend on, the simulator's
/// seeded RNG).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct QueuePoint {
    fleet: u64,
    mix: &'static str,
    pending: u64,
    calendar_eps: f64,
    heap_eps: f64,
}

struct EnginePoint {
    servers: u64,
    vms: u64,
    hours: u64,
    queue: &'static str,
    shards: u64,
    events: u64,
    wall_secs: f64,
    eps: f64,
    peak_rss_mb: f64,
    /// Exact bit pattern of the run's energy total — the cheap
    /// cross-`K` byte-determinism witness.
    energy_bits: u64,
}

/// One queue-throughput measurement at fleet size `fleet` under one of
/// two pending-event mixes, `QUEUE_OPS` pop/reschedule pairs each:
///
/// * `"hold"` — the classic hold-model throughput benchmark (Brown,
///   CACM 1988): a population of `2.25 × fleet` events, each popped
///   and rescheduled with an increment drawn uniformly from the
///   engine's near-term event horizon (1–600 s: monitor ticks, demand
///   steps, migration completions, wake latencies). Every pending
///   event churns, so the heap pays a cold `log(pending)` sift on
///   every operation while the calendar's wheel stays O(1). This is
///   the standard priority-queue methodology and the headline number.
/// * `"standing"` — `2 × fleet` far-future departures (uniform over
///   2–48 h) parked as a standing population, with `fleet / 4`
///   near-term chains (1–60 s) doing the churn, as in a snapshot of a
///   real run. The standing events settle into the heap's bottom
///   levels (or the calendar's overflow) and are never touched, so
///   this mix flatters the heap: only the cache-hot top is exercised.
///
/// Both mixes reschedule via the engine's `schedule_chain` fast path,
/// and both pick chain counts high enough that the simulated clock
/// advances only milliseconds per pop — as in a real 48 h run — so the
/// population composition is stable across the measured window.
/// Returns popped events per wall second.
fn queue_bench(fleet: u64, mix_name: &str, heap: bool) -> f64 {
    let (cycling, standing) = match mix_name {
        "hold" => (2 * fleet + fleet / 4, 0),
        "standing" => ((fleet / 4).max(64), 2 * fleet),
        other => panic!("unknown queue mix {other}"),
    };
    let dt = |mix: &mut Mix| match mix_name {
        "hold" => 1.0 + 599.0 * mix.unit(),
        _ => 1.0 + 59.0 * mix.unit(),
    };
    let mut q = if heap {
        EventQueue::reference_heap()
    } else {
        EventQueue::with_capacity((cycling + standing) as usize)
    };
    let mut mix = Mix(fleet ^ 0xec0c_10d5);
    for i in 0..standing {
        let t = 7200.0 + 165_600.0 * mix.unit();
        q.schedule(t, Event::Departure(ecocloud::dcsim::ids::VmId(i as u32)));
    }
    for i in 0..cycling {
        q.schedule(dt(&mut mix), Event::MonitorTick(ServerId(i as u32)));
    }
    // Warm-up out of the initial transient, then best-of-three
    // measured windows: the box runs other tenants, and taking the
    // least-disturbed window (for *both* queue variants equally) is
    // the standard way to strip scheduler interference from a
    // throughput number.
    for _ in 0..10_000 {
        let (t, ev) = q.pop().expect("cycling event");
        q.advance_to(t);
        q.schedule_chain(t + dt(&mut mix), ev);
    }
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..QUEUE_OPS {
            let (t, ev) = q.pop().expect("cycling event");
            q.advance_to(t);
            q.schedule_chain(t + dt(&mut mix), ev);
        }
        best = best.max(QUEUE_OPS as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Peak resident set of this process, MB (`VmHWM` from
/// `/proc/self/status`); 0.0 when unavailable (non-Linux).
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Child mode: run one engine point and print its metrics as a single
/// `key=value` line on stdout.
fn run_engine_child(servers: u64, vms: u64, hours: u64, seed: u64, queue: &str, shards: u64) {
    let mut scenario = bench_scenario(servers as usize, vms as usize, hours, seed);
    scenario.config.reference_event_queue = queue == "heap";
    scenario.config.shard = ShardConfig::with_shards(shards as usize);
    let start = Instant::now();
    let result = scenario.run(EcoCloudPolicy::paper(seed));
    let wall = start.elapsed().as_secs_f64();
    println!(
        "events={} wall_secs={:.3} peak_rss_mb={:.1} energy_kwh={:.6} energy_bits={}",
        result.summary.events_processed,
        wall,
        peak_rss_mb(),
        result.summary.energy_kwh,
        result.summary.energy_kwh.to_bits(),
    );
}

/// Runs one engine point in a child process (for per-run RSS) and
/// parses its metrics line.
fn run_engine_point(
    servers: u64,
    vms: u64,
    hours: u64,
    queue: &'static str,
    shards: u64,
) -> EnginePoint {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args([
            "--engine",
            &servers.to_string(),
            &vms.to_string(),
            &hours.to_string(),
            "42",
            queue,
            &shards.to_string(),
        ])
        .output()
        .expect("spawn engine child");
    assert!(
        out.status.success(),
        "engine child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("child stdout utf8");
    let field = |k: &str| -> f64 {
        text.split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{k}=")))
            .unwrap_or_else(|| panic!("missing {k} in child output: {text}"))
            .parse()
            .expect("numeric field")
    };
    // `energy_bits` is a full 64-bit pattern; routing it through the
    // f64 field parser would round away the low mantissa bits.
    let energy_bits: u64 = text
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("energy_bits="))
        .unwrap_or_else(|| panic!("missing energy_bits in child output: {text}"))
        .parse()
        .expect("u64 energy_bits");
    let events = field("events") as u64;
    let wall = field("wall_secs");
    EnginePoint {
        servers,
        vms,
        hours,
        queue,
        shards,
        events,
        wall_secs: wall,
        eps: events as f64 / wall,
        peak_rss_mb: field("peak_rss_mb"),
        energy_bits,
    }
}

fn measure_queue(fleets: &[u64]) -> Vec<QueuePoint> {
    let mut points = Vec::new();
    for &fleet in fleets {
        for mix in ["hold", "standing"] {
            eprintln!("queue bench: fleet {fleet} ({mix}) ...");
            points.push(QueuePoint {
                fleet,
                mix,
                pending: match mix {
                    "hold" => 2 * fleet + fleet / 4,
                    _ => 2 * fleet + (fleet / 4).max(64),
                },
                calendar_eps: queue_bench(fleet, mix, false),
                heap_eps: queue_bench(fleet, mix, true),
            });
        }
    }
    points
}

/// Shard counts the committed grid walks.
const SHARD_GRID: [u64; 4] = [1, 2, 4, 8];

/// Measures the shard grid: every `K` in [`SHARD_GRID`] at each fleet
/// size, asserting cross-`K` byte-determinism (via the energy bit
/// pattern and the event count) as it goes.
fn measure_shards(fleets: &[u64]) -> Vec<EnginePoint> {
    let mut points = Vec::new();
    for &servers in fleets {
        let mut k1: Option<(u64, u64)> = None;
        for &k in &SHARD_GRID {
            eprintln!("shard grid: {servers} servers x 48 h, K={k} ...");
            let p = run_engine_point(servers, 2 * servers, 48, "calendar", k);
            match k1 {
                None => k1 = Some((p.events, p.energy_bits)),
                Some((ev, bits)) => {
                    assert_eq!((p.events, p.energy_bits), (ev, bits),
                        "K={k} at {servers} servers diverged from K=1 — shard determinism broken");
                }
            }
            points.push(p);
        }
    }
    points
}

fn render_json(queue: &[QueuePoint], engine: &[EnginePoint]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n  \"queue_throughput\": [\n");
    for (i, p) in queue.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"servers\": {}, \"mix\": \"{}\", \"pending_events\": {}, \
             \"calendar_events_per_sec\": {:.0}, \"heap_events_per_sec\": {:.0}, \
             \"speedup\": {:.2}}}{}\n",
            p.fleet,
            p.mix,
            p.pending,
            p.calendar_eps,
            p.heap_eps,
            p.calendar_eps / p.heap_eps,
            if i + 1 < queue.len() { "," } else { "" },
        );
    }
    s.push_str("  ],\n  \"engine_runs\": [\n");
    for (i, p) in engine.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"servers\": {}, \"vms\": {}, \"hours\": {}, \"queue\": \"{}\", \
             \"events_processed\": {}, \"wall_secs\": {:.1}, \
             \"events_per_sec\": {:.0}, \"peak_rss_mb\": {:.0}}}{}\n",
            p.servers,
            p.vms,
            p.hours,
            p.queue,
            p.events,
            p.wall_secs,
            p.eps,
            p.peak_rss_mb,
            if i + 1 < engine.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the full snapshot including the shard grid. Kept separate
/// from [`render_json`] so `--quick` keeps its historical shape.
fn render_json_with_shards(
    queue: &[QueuePoint],
    engine: &[EnginePoint],
    shard: &[EnginePoint],
) -> String {
    let mut s = render_json(queue, engine);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Splice the shard section in before the closing brace. Speedup is
    // relative to the K=1 row of the same fleet size; on a single-core
    // box every K>1 row measures pure engine overhead (disclosed by
    // `measured_cores`), while the determinism witness (`energy_bits`,
    // asserted equal across K during measurement) is machine-independent.
    s.truncate(s.rfind("  ]\n}\n").expect("render_json closing") + 3);
    s.push_str(",\n  \"shard_runs\": {\n");
    let _ = write!(s, "    \"measured_cores\": {cores},\n    \"rows\": [\n");
    for (i, p) in shard.iter().enumerate() {
        let base = shard
            .iter()
            .find(|b| b.servers == p.servers && b.shards == 1)
            .expect("K=1 baseline row");
        let _ = write!(
            s,
            "      {{\"servers\": {}, \"vms\": {}, \"hours\": {}, \"shards\": {}, \
             \"events_processed\": {}, \"wall_secs\": {:.1}, \
             \"events_per_sec\": {:.0}, \"peak_rss_mb\": {:.0}, \
             \"speedup_vs_k1\": {:.2}, \"energy_bits\": \"{:#018x}\"}}{}\n",
            p.servers,
            p.vms,
            p.hours,
            p.shards,
            p.events,
            p.wall_secs,
            p.eps,
            p.peak_rss_mb,
            base.wall_secs / p.wall_secs,
            p.energy_bits,
            if i + 1 < shard.len() { "," } else { "" },
        );
    }
    s.push_str("    ]\n  }\n}\n");
    s
}

/// Extracts every value of `key` from the flat snapshot JSON (the
/// offline serde stub cannot deserialize, so the check parses by
/// string scan — the format above is committed and flat).
fn extract_values(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\": ");
    json.match_indices(&needle)
        .map(|(at, _)| {
            json[at + needle.len()..]
                .split(|c: char| c == ',' || c == '}')
                .next()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("unparsable value for {key}"))
        })
        .collect()
}

/// Extracts every string value of `key` from the snapshot JSON.
fn extract_strings(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\": \"");
    json.match_indices(&needle)
        .map(|(at, _)| {
            json[at + needle.len()..]
                .split('"')
                .next()
                .expect("unterminated string value")
                .to_string()
        })
        .collect()
}

/// `--check`: re-measure the queue points and fail on a >20 %
/// regression vs. the committed snapshot.
///
/// Absolute events/sec is machine-specific (the committed snapshot
/// was taken on one particular box), so the gated quantity is the
/// *speedup* — calendar vs. the reference heap measured back-to-back
/// on the same machine. A drop of more than [`REGRESSION_TOLERANCE`]
/// in that ratio relative to the committed ratio is an algorithmic
/// regression in the calendar, not clock-speed noise.
fn check(path: &str) {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read snapshot {path}: {e}"));
    let base_cal = extract_values(&committed, "calendar_events_per_sec");
    let base_heap = extract_values(&committed, "heap_events_per_sec");
    let mixes = extract_strings(&committed, "mix");
    let fleets: Vec<u64> = extract_values(&committed, "servers")
        .iter()
        .take(base_cal.len())
        .map(|&f| f as u64)
        .collect();
    assert_eq!(
        fleets.len(),
        base_cal.len(),
        "snapshot queue_throughput rows are malformed"
    );
    assert_eq!(base_heap.len(), base_cal.len(), "heap column missing");
    assert_eq!(mixes.len(), base_cal.len(), "mix field missing from rows");
    let mut failed = false;
    for (i, (&fleet, mix)) in fleets.iter().zip(&mixes).enumerate() {
        let committed_speedup = base_cal[i] / base_heap[i];
        let now_cal = queue_bench(fleet, mix, false);
        let now_heap = queue_bench(fleet, mix, true);
        let now_speedup = now_cal / now_heap;
        let ratio = now_speedup / committed_speedup;
        let verdict = if ratio < 1.0 - REGRESSION_TOLERANCE {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "fleet {fleet} ({mix}): committed speedup {committed_speedup:.2}x, \
             measured {now_speedup:.2}x ({now_cal:.0} vs {now_heap:.0} ev/s, \
             {:+.1} %) {verdict}",
            (ratio - 1.0) * 100.0
        );
    }
    if failed {
        eprintln!(
            "calendar/heap speedup regressed more than {:.0} % vs {path}",
            REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    check_shard_determinism();
}

/// The machine-independent half of `--check`: a small fixed-seed run
/// must produce bit-identical energy and event counts at K = 1, 4 and
/// 8. Absolute shard wall-clock is not gated (it is a function of the
/// core count of whatever box runs the check); K-invariance is the
/// property the shard engine exists to preserve and the one a
/// regression here would silently corrupt.
fn check_shard_determinism() {
    let run = |k: usize| {
        let mut scenario = bench_scenario(2_000, 4_000, 6, 42);
        scenario.config.shard = ShardConfig::with_shards(k);
        let res = scenario.run(EcoCloudPolicy::paper(42));
        (
            res.summary.events_processed,
            res.summary.energy_kwh.to_bits(),
        )
    };
    let reference = run(1);
    for k in [4usize, 8] {
        let got = run(k);
        if got != reference {
            eprintln!(
                "shard determinism REGRESSION: K={k} produced {got:?}, K=1 produced \
                 {reference:?} on the 2000-server fixed-seed check scenario"
            );
            std::process::exit(1);
        }
        println!("shard K={k}: byte-identical to K=1 (events={}, energy bits {:#018x}) ok",
            reference.0, reference.1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--engine") => {
            let n = |i: usize| args[i].parse::<u64>().expect("numeric arg");
            let shards = args.get(7).map_or(1, |s| s.parse().expect("numeric shards"));
            run_engine_child(n(2), n(3), n(4), n(5), &args[6], shards);
        }
        Some("--check") => check(args.get(2).map_or("BENCH_event_loop.json", String::as_str)),
        Some("--queue") => {
            let fleet: u64 = args[2].parse().expect("numeric fleet");
            let mix = args.get(3).map_or("hold", String::as_str);
            let cal = queue_bench(fleet, mix, false);
            let heap = queue_bench(fleet, mix, true);
            println!(
                "fleet {fleet} ({mix}): calendar {cal:.0} ev/s, heap {heap:.0} ev/s, {:.2}x",
                cal / heap
            );
        }
        Some("--quick") => {
            let queue = measure_queue(&[50_000, 100_000]);
            let engine = vec![run_engine_point(5_000, 10_000, 48, "calendar", 1)];
            print!("{}", render_json(&queue, &engine));
        }
        None => {
            let queue = measure_queue(&ecocloud_bench::QUEUE_FLEET_GRID);
            // The engine grid walks the shared large-fleet ladder
            // (same 2-VMs-per-server 48 h scenarios as the Criterion
            // bench), skipping the 1 000-server Criterion smoke rung
            // and adding a heap baseline at the mid-size rungs (the
            // heap at 100 k × 48 h is too slow to re-run routinely).
            let mut engine = Vec::new();
            for &servers in ecocloud_bench::LARGE_FLEET_LADDER[1..].iter() {
                let servers = servers as u64;
                let queues: &[&str] = if servers == 20_000 || servers == 50_000 {
                    &["calendar", "heap"]
                } else {
                    &["calendar"]
                };
                for &q in queues {
                    eprintln!("engine: {servers} servers x 48 h ({q}) ...");
                    engine.push(run_engine_point(servers, 2 * servers, 48, q, 1));
                }
            }
            let shard = measure_shards(&[20_000, 100_000]);
            let json = render_json_with_shards(&queue, &engine, &shard);
            std::fs::write("BENCH_event_loop.json", &json).expect("write snapshot");
            print!("{json}");
            eprintln!("wrote BENCH_event_loop.json");
        }
        Some(other) => {
            eprintln!("unknown mode {other}; see module docs");
            std::process::exit(2);
        }
    }
}
