//! Fluid-model integration cost (the Fig. 13 pipeline): one simulated
//! hour of RK4 at the paper's 100-server size and at 400 servers,
//! exact vs simplified shares.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecocloud::analytic::{FluidConfig, FluidModel, ShareModel};

fn bench_fluid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid");
    g.sample_size(10);
    for n in [100usize, 400] {
        let u0: Vec<f64> = (0..n).map(|i| 0.1 + 0.5 * (i as f64 / n as f64)).collect();
        for (label, model) in [
            ("simplified", ShareModel::Simplified),
            ("exact", ShareModel::Exact),
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("solve_1h_{label}"), n),
                &u0,
                |b, u0| {
                    b.iter(|| {
                        let fm = FluidModel::new(
                            FluidConfig::paper(model, 0.02),
                            |_| 0.2,
                            |_| 1.0 / 7200.0,
                        );
                        black_box(fm.solve(black_box(u0), 3600.0))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fluid);
criterion_main!(benches);
