//! Benchmarks of the Eq. 1–4 probability functions (the curves of the
//! paper's Figs. 2–3). These sit on the monitor hot path — every
//! server evaluates them every few seconds — so they must stay in the
//! low-nanosecond range.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecocloud::core::{AssignmentFunction, MigrationFunctions};

fn bench_functions(c: &mut Criterion) {
    let mut g = c.benchmark_group("functions");
    let fa = AssignmentFunction::paper();
    let m = MigrationFunctions::paper();

    g.bench_function("fa_eval", |b| {
        let mut u = 0.0f64;
        b.iter(|| {
            u = (u + 0.013) % 1.0;
            black_box(fa.eval(black_box(u)))
        })
    });
    g.bench_function("fa_eval_sweep_p", |b| {
        // Re-parameterized evaluation (the anti-ping-pong path builds
        // a new threshold per high migration).
        let mut u = 0.0f64;
        b.iter(|| {
            u = (u + 0.017) % 0.9;
            let f = fa.with_threshold(black_box(0.9 * (0.9 + u / 10.0)));
            black_box(f.eval(black_box(u)))
        })
    });
    g.bench_function("f_low", |b| {
        let mut u = 0.0f64;
        b.iter(|| {
            u = (u + 0.011) % 1.0;
            black_box(m.f_low(black_box(u)))
        })
    });
    g.bench_function("f_high", |b| {
        let mut u = 0.0f64;
        b.iter(|| {
            u = (u + 0.011) % 1.2;
            black_box(m.f_high(black_box(u)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_functions);
criterion_main!(benches);
