//! Trace-generation throughput (the Figs. 4–5 substrate): how fast the
//! calibrated synthetic CoMon workload can be produced, and the cost
//! of the binary trace codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecocloud::traces::{io, TraceConfig, TraceSet};

fn bench_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("traces");
    g.sample_size(10);
    for n_vms in [500usize, 6000] {
        g.bench_with_input(BenchmarkId::new("generate_24h", n_vms), &n_vms, |b, &n| {
            b.iter(|| {
                black_box(TraceSet::generate(TraceConfig {
                    n_vms: n,
                    duration_secs: 24 * 3600,
                    ..TraceConfig::paper_48h(3)
                }))
            })
        });
    }
    let set = TraceSet::generate(TraceConfig {
        n_vms: 1000,
        duration_secs: 12 * 3600,
        ..TraceConfig::paper_48h(3)
    });
    g.bench_function("binary_encode_1000vms", |b| {
        b.iter(|| black_box(io::to_binary(black_box(&set))))
    });
    let bin = io::to_binary(&set);
    g.bench_function("binary_decode_1000vms", |b| {
        b.iter(|| black_box(io::from_binary(black_box(bin.clone()))).expect("decodes"))
    });
    g.finish();
}

criterion_group!(benches, bench_traces);
criterion_main!(benches);
