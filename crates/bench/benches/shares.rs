//! Benchmarks of the assignment-share computation (paper Eqs. 6–11,
//! the Fig. 13 substrate): exact combinatorial vs simplified
//! proportional, across system sizes — quantifying the cost the paper
//! avoids by proposing the simplified model ("the computation of the
//! terms A_s becomes costly as the number of servers increases").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecocloud::analytic::{exact_shares, exact_shares_bruteforce, simplified_shares};
use ecocloud_bench::mixed_probabilities;

fn bench_shares(c: &mut Criterion) {
    let mut g = c.benchmark_group("shares");
    for n in [10usize, 50, 100, 400, 1000] {
        let f = mixed_probabilities(n);
        g.bench_with_input(BenchmarkId::new("exact", n), &f, |b, f| {
            b.iter(|| black_box(exact_shares(black_box(f))))
        });
        g.bench_with_input(BenchmarkId::new("simplified", n), &f, |b, f| {
            b.iter(|| black_box(simplified_shares(black_box(f))))
        });
    }
    // The exponential reference implementation only fits tiny systems.
    for n in [8usize, 12, 16] {
        let f = mixed_probabilities(n);
        g.bench_with_input(BenchmarkId::new("bruteforce", n), &f, |b, f| {
            b.iter(|| black_box(exact_shares_bruteforce(black_box(f))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shares);
criterion_main!(benches);
