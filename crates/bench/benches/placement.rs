//! Placement-decision scalability: one assignment round (invitation →
//! Bernoulli trials → uniform pick) vs fleet size, for the
//! decentralized ecoCloud procedure and the centralized Best Fit scan.
//!
//! This is the paper's core systems argument quantified: ecoCloud's
//! per-decision work stays a linear scan of constant-time local trials
//! (and in a real deployment is fully parallel across servers — the
//! scan here is the *simulated* sum of 400 independent decisions),
//! while centralized algorithms must both scan and maintain global
//! state.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecocloud::dcsim::{
    Cluster, Fleet, PlacementKind, PlacementRequest, Policy, ServerId, ServerState, Vm, VmId,
};
use ecocloud::prelude::{BestFitPolicy, EcoCloudPolicy};

/// Builds an active cluster with a realistic utilization mix.
fn cluster(n: usize) -> Cluster {
    let fleet = Fleet::thirds(n);
    let mut c = Cluster::new(&fleet, ServerState::Active);
    for i in 0..n {
        let u = match i % 4 {
            0 => 0.15,
            1 => 0.45,
            2 => 0.7,
            _ => 0.88,
        };
        let vm = VmId(c.vms.len() as u32);
        let demand = u * c.servers[i].capacity_mhz();
        c.vms.push(Vm {
            id: vm,
            trace_idx: 0,
            demand_mhz: demand,
            ram_mb: 0.0,
            state: ecocloud::dcsim::VmState::Departed,
            arrived_secs: 0.0,
            priority: Default::default(),
            migration_seq: 0,
            lifetime_secs: None,
            started: false,
            evictable: false,
        });
        c.attach(vm, ServerId(i as u32), 0.0);
    }
    c
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    for n in [100usize, 400, 1600, 6400] {
        let cl = cluster(n);
        let req = PlacementRequest {
            demand_mhz: 300.0,
            ram_mb: 0.0,
            kind: PlacementKind::NewVm,
            exclude: None,
            now_secs: 0.0,
        };
        g.bench_with_input(BenchmarkId::new("ecocloud", n), &n, |b, _| {
            let mut p = EcoCloudPolicy::paper(1);
            b.iter(|| black_box(p.place(&cl.view(), black_box(&req))))
        });
        g.bench_with_input(BenchmarkId::new("best_fit", n), &n, |b, _| {
            let mut p = BestFitPolicy::paper();
            b.iter(|| black_box(p.place(&cl.view(), black_box(&req))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
