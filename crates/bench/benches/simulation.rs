//! Whole-simulator throughput: simulated hours of the Figs. 6–11
//! engine per wall-clock second, for ecoCloud and the Best Fit
//! baseline, at two data-center sizes (including the paper's full
//! 400-server fleet).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecocloud::prelude::{BestFitPolicy, EcoCloudPolicy};
use ecocloud_bench::bench_scenario;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    for (n_servers, n_vms) in [(50usize, 750usize), (400, 6000)] {
        let scenario = bench_scenario(n_servers, n_vms, 2, 7);
        g.bench_with_input(
            BenchmarkId::new("ecocloud_2h", n_servers),
            &scenario,
            |b, s| b.iter(|| black_box(s.run(EcoCloudPolicy::paper(7)))),
        );
        g.bench_with_input(
            BenchmarkId::new("best_fit_2h", n_servers),
            &scenario,
            |b, s| b.iter(|| black_box(s.run(BestFitPolicy::paper()))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
