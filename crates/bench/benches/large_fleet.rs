//! Large-fleet event-loop throughput: 48 simulated hours at sizes up
//! to 5 000 servers / 10 000 VMs — the scenario the incremental
//! cluster accounting (O(affected) instead of O(fleet) per event) is
//! aimed at. `cargo bench --bench large_fleet` runs the full ladder;
//! the 1 000-server rung is the CI smoke point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecocloud::prelude::EcoCloudPolicy;
use ecocloud_bench::large_fleet_scenario;

fn bench_large_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("large_fleet");
    g.sample_size(10);
    for n_servers in [1_000usize, 5_000] {
        let scenario = large_fleet_scenario(n_servers, 42);
        g.bench_with_input(
            BenchmarkId::new("ecocloud_48h", n_servers),
            &scenario,
            |b, s| b.iter(|| black_box(s.run(EcoCloudPolicy::paper(42)))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_large_fleet);
criterion_main!(benches);
