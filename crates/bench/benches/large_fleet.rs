//! Large-fleet event-loop throughput: 48 simulated hours at sizes up
//! to 5 000 servers / 10 000 VMs — the scenario the incremental
//! cluster accounting (O(affected) instead of O(fleet) per event) is
//! aimed at. `cargo bench --bench large_fleet` runs the full ladder;
//! the 1 000-server rung is the CI smoke point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecocloud::prelude::EcoCloudPolicy;
use ecocloud_bench::{large_fleet_scenario, CRITERION_RUNGS, LARGE_FLEET_LADDER};

fn bench_large_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("large_fleet");
    g.sample_size(10);
    // The same ladder (and thus the same fixed-seed scenarios) the
    // event_loop_snapshot engine grid measures; Criterion takes the
    // small rungs where repeated sampling is affordable.
    for n_servers in LARGE_FLEET_LADDER.into_iter().take(CRITERION_RUNGS) {
        let scenario = large_fleet_scenario(n_servers, 42);
        g.bench_with_input(
            BenchmarkId::new("ecocloud_48h", n_servers),
            &scenario,
            |b, s| b.iter(|| black_box(s.run(EcoCloudPolicy::paper(42)))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_large_fleet);
criterion_main!(benches);
