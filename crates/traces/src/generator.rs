//! Trace generation: turns a [`TraceConfig`] into concrete per-VM demand
//! series.

use crate::config::TraceConfig;
use crate::profile::{standard_normal, VmProfile};
use crate::units::frac_to_mhz;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One VM's demand trace: its generating profile plus the sampled
/// series, as fractions of the reference host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmTrace {
    /// The stochastic profile the series was generated from.
    pub profile: VmProfile,
    /// Demand samples (fraction of the reference host), one per step.
    pub samples: Vec<f32>,
}

impl VmTrace {
    /// Sample index covering time `t_secs` (hold-last beyond the end).
    #[inline]
    fn step_at(&self, t_secs: f64, step_secs: u64) -> usize {
        let idx = (t_secs / step_secs as f64) as usize;
        idx.min(self.samples.len().saturating_sub(1))
    }

    /// Demand at `t_secs` as a fraction of the reference host
    /// (piecewise constant between samples).
    #[inline]
    pub fn demand_frac_at(&self, t_secs: f64, step_secs: u64) -> f64 {
        self.samples[self.step_at(t_secs, step_secs)] as f64
    }

    /// Demand at `t_secs` in MHz.
    #[inline]
    pub fn demand_mhz_at(&self, t_secs: f64, step_secs: u64) -> f64 {
        frac_to_mhz(self.demand_frac_at(t_secs, step_secs))
    }

    /// Sample index covering time `t_secs`, wrapping modulo the trace
    /// length so the series repeats instead of flatlining. Open-system
    /// churn VMs can arrive late and outlive the generated horizon;
    /// wrapping replays the diurnal days rather than holding the final
    /// sample forever.
    #[inline]
    fn step_at_wrapped(&self, t_secs: f64, step_secs: u64) -> usize {
        let idx = (t_secs / step_secs as f64) as usize;
        idx % self.samples.len().max(1)
    }

    /// Demand at `t_secs` as a fraction of the reference host, with the
    /// series repeated past its end (see `Self::step_at_wrapped`).
    #[inline]
    pub fn demand_frac_at_wrapped(&self, t_secs: f64, step_secs: u64) -> f64 {
        self.samples[self.step_at_wrapped(t_secs, step_secs)] as f64
    }

    /// Demand at `t_secs` in MHz, with the series repeated past its end.
    #[inline]
    pub fn demand_mhz_at_wrapped(&self, t_secs: f64, step_secs: u64) -> f64 {
        frac_to_mhz(self.demand_frac_at_wrapped(t_secs, step_secs))
    }

    /// Empirical mean of the series (fraction of the reference host) —
    /// the quantity binned by the paper's Fig. 4.
    pub fn measured_mean_frac(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
    }
}

/// A generated collection of VM traces plus the config that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSet {
    /// Generation parameters (kept for provenance and for `step_secs`).
    pub config: TraceConfig,
    /// One trace per VM.
    pub vms: Vec<VmTrace>,
}

impl TraceSet {
    /// Generates the full trace set deterministically from the config.
    ///
    /// ```
    /// use ecocloud_traces::{TraceConfig, TraceSet};
    /// let set = TraceSet::generate(TraceConfig::small(1));
    /// assert_eq!(set.len(), 200);
    /// let again = TraceSet::generate(TraceConfig::small(1));
    /// assert_eq!(set.vms[0].samples, again.vms[0].samples);
    /// ```
    ///
    /// Each VM gets an independent RNG stream derived from
    /// `(config.seed, vm_index)` so the trace of VM *i* does not change
    /// when `n_vms` changes — experiments that subset VMs (the paper's
    /// Fig. 12 uses 1,500 of the 6,000) stay comparable.
    pub fn generate(config: TraceConfig) -> Self {
        config.validate();
        let steps = config.steps();
        let vms = (0..config.n_vms)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(
                    config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                );
                let profile = VmProfile::sample(&mut rng, &config.mixture);
                let samples = generate_series(&profile, &config, steps, &mut rng);
                VmTrace { profile, samples }
            })
            .collect();
        Self { config, vms }
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// True when the set holds no traces.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Total demand of all VMs at `t_secs`, in MHz.
    pub fn total_demand_mhz_at(&self, t_secs: f64) -> f64 {
        self.vms
            .iter()
            .map(|vm| vm.demand_mhz_at(t_secs, self.config.step_secs))
            .sum()
    }

    /// Returns a new set containing the first `n` traces (the Fig. 12
    /// experiment loads 1,500 of the 6,000 VMs).
    pub fn take(&self, n: usize) -> TraceSet {
        let mut config = self.config.clone();
        config.n_vms = n.min(self.vms.len());
        TraceSet {
            config,
            vms: self.vms[..n.min(self.vms.len())].to_vec(),
        }
    }
}

/// Generates one VM's series: AR(1) deviation around the profile mean,
/// multiplicative bursts, diurnal envelope, clamped to [0, 1].
fn generate_series(
    profile: &VmProfile,
    config: &TraceConfig,
    steps: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    assert!(profile.is_valid(), "invalid profile: {profile:?}");
    let phi = profile.ar_phi;
    // Innovation std chosen so the stationary std of x is rel_sigma.
    let innov = profile.rel_sigma * (1.0 - phi * phi).sqrt();
    // Start from the stationary distribution to avoid a warm-up ramp.
    let mut x = profile.rel_sigma * standard_normal(rng);
    let mut bursting = false;
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        let t = k as u64 * config.step_secs;
        // Burst state machine: geometric start / geometric stop.
        if bursting {
            if rng.gen_bool(profile.burst_end_prob) {
                bursting = false;
            }
        } else if profile.burst_prob > 0.0 && rng.gen_bool(profile.burst_prob) {
            bursting = true;
        }
        let burst = if bursting { profile.burst_mult } else { 1.0 };
        let envelope = config.envelope.at(t as f64);
        let demand = profile.mean_frac * envelope * (1.0 + x).max(0.0) * burst;
        out.push(demand.clamp(0.0, 1.0) as f32);
        x = phi * x + innov * standard_normal(rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalEnvelope;

    fn small_set(seed: u64) -> TraceSet {
        TraceSet::generate(TraceConfig::small(seed))
    }

    #[test]
    fn generates_requested_dimensions() {
        let ts = small_set(1);
        assert_eq!(ts.len(), 200);
        for vm in &ts.vms {
            assert_eq!(vm.samples.len(), ts.config.steps());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small_set(9);
        let b = small_set(9);
        for (x, y) in a.vms.iter().zip(&b.vms) {
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_set(1);
        let b = small_set(2);
        let same = a
            .vms
            .iter()
            .zip(&b.vms)
            .all(|(x, y)| x.samples == y.samples);
        assert!(!same, "different seeds produced identical traces");
    }

    #[test]
    fn vm_streams_stable_under_n_vms_change() {
        let big = TraceSet::generate(TraceConfig {
            n_vms: 50,
            ..TraceConfig::small(5)
        });
        let small = TraceSet::generate(TraceConfig {
            n_vms: 10,
            ..TraceConfig::small(5)
        });
        for i in 0..10 {
            assert_eq!(big.vms[i].samples, small.vms[i].samples, "vm {i}");
        }
    }

    #[test]
    fn samples_are_valid_fractions() {
        let ts = small_set(3);
        for vm in &ts.vms {
            for &s in &vm.samples {
                assert!((0.0..=1.0).contains(&(s as f64)), "sample {s} out of range");
            }
        }
    }

    #[test]
    fn demand_lookup_holds_last_sample() {
        let ts = small_set(4);
        let vm = &ts.vms[0];
        let last = *vm.samples.last().expect("non-empty") as f64;
        let beyond = vm.demand_frac_at(1e9, ts.config.step_secs);
        assert_eq!(beyond, last);
    }

    /// Regression for the open-system flatline bug: the clamped lookup
    /// holds the last sample forever, so a VM outliving its trace loses
    /// its diurnal shape. The wrapped lookup must replay the series.
    #[test]
    fn wrapped_lookup_repeats_series_beyond_boundary() {
        let ts = small_set(4);
        let step = ts.config.step_secs;
        let vm = &ts.vms[0];
        let n = vm.samples.len();
        let horizon = n as f64 * step as f64;
        // Exactly at the boundary: wraps back to sample 0.
        assert_eq!(
            vm.demand_frac_at_wrapped(horizon, step),
            vm.samples[0] as f64
        );
        // One full period later, every in-range sample repeats.
        for k in [0usize, 1, n / 2, n - 1] {
            let t = k as f64 * step as f64;
            assert_eq!(
                vm.demand_frac_at_wrapped(t + horizon, step),
                vm.demand_frac_at(t, step),
                "sample {k} did not repeat"
            );
        }
        // In range, wrapped and clamped lookups agree.
        for k in 0..n {
            let t = k as f64 * step as f64;
            assert_eq!(
                vm.demand_frac_at_wrapped(t, step),
                vm.demand_frac_at(t, step)
            );
        }
        // The clamped lookup flatlines there — pin the contrast so the
        // two paths cannot silently converge.
        assert_eq!(
            vm.demand_frac_at(horizon, step),
            *vm.samples.last().expect("non-empty") as f64
        );
    }

    #[test]
    fn constant_profile_yields_flat_series() {
        let config = TraceConfig {
            n_vms: 1,
            envelope: DiurnalEnvelope::flat(),
            ..TraceConfig::small(1)
        };
        let profile = VmProfile::constant(0.25);
        let mut rng = StdRng::seed_from_u64(0);
        let series = generate_series(&profile, &config, 10, &mut rng);
        for s in series {
            assert!((s as f64 - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn aggregate_load_follows_envelope() {
        // Total demand at the diurnal peak must exceed the trough.
        let ts = TraceSet::generate(TraceConfig {
            n_vms: 400,
            duration_secs: 24 * 3600,
            ..TraceConfig::small(11)
        });
        let peak = ts.total_demand_mhz_at(15.0 * 3600.0);
        let trough = ts.total_demand_mhz_at(3.0 * 3600.0);
        assert!(
            peak > 1.5 * trough,
            "diurnal swing missing: peak {peak}, trough {trough}"
        );
    }

    #[test]
    fn take_subsets_prefix() {
        let ts = small_set(6);
        let sub = ts.take(10);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub.vms[3].samples, ts.vms[3].samples);
        assert_eq!(sub.config.n_vms, 10);
    }

    #[test]
    fn measured_mean_tracks_profile_mean() {
        // Long stationary run: the measured mean should approach the
        // profile mean (envelope averages to 1 over whole days).
        let ts = TraceSet::generate(TraceConfig {
            n_vms: 50,
            duration_secs: 10 * 24 * 3600,
            ..TraceConfig::small(8)
        });
        let mut rel_err_sum = 0.0;
        let mut counted = 0;
        for vm in &ts.vms {
            // Bursts push the measured mean slightly above the profile
            // mean; only check VMs that stay away from the [0,1] clamps.
            if vm.profile.mean_frac < 0.2 {
                let measured = vm.measured_mean_frac();
                rel_err_sum += (measured / vm.profile.mean_frac - 1.0).abs();
                counted += 1;
            }
        }
        let mean_rel_err = rel_err_sum / counted as f64;
        assert!(
            mean_rel_err < 0.25,
            "measured means drift from profile means: {mean_rel_err}"
        );
    }
}
