//! Units and reference constants shared by the workload model.

/// CPU frequency of every core in the paper's data center (§III: "these
/// servers are all equipped with 2 GHz cores").
pub const MHZ_PER_CORE: f64 = 2000.0;

/// Convenience newtype for per-core frequency in MHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MhzPerCore(pub f64);

/// Capacity of the *reference host* against which trace utilization
/// percentages are expressed: the median server of the paper's fleet
/// (6 cores × 2 GHz). The paper's traces report VM CPU utilization "as a
/// percentage of the total CPU capacity of the hosting physical
/// machine"; using one fixed reference machine makes the per-VM numbers
/// host-independent, which is what the assignment procedure needs (a VM
/// demand must mean the same thing on every candidate server).
pub const REFERENCE_HOST_MHZ: f64 = 6.0 * MHZ_PER_CORE;

/// CoMon sampling cadence: one demand sample every 5 minutes.
pub const TRACE_STEP_SECS: u64 = 300;

/// Converts a demand expressed as a fraction of the reference host into
/// absolute MHz.
#[inline]
pub fn frac_to_mhz(frac: f64) -> f64 {
    frac * REFERENCE_HOST_MHZ
}

/// Converts an absolute MHz demand into a fraction of the reference host.
#[inline]
pub fn mhz_to_frac(mhz: f64) -> f64 {
    mhz / REFERENCE_HOST_MHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_host_is_six_two_ghz_cores() {
        assert_eq!(REFERENCE_HOST_MHZ, 12_000.0);
    }

    #[test]
    fn frac_mhz_roundtrip() {
        for frac in [0.0, 0.01, 0.2, 1.0] {
            assert!((mhz_to_frac(frac_to_mhz(frac)) - frac).abs() < 1e-12);
        }
    }

    #[test]
    fn five_minute_cadence() {
        assert_eq!(TRACE_STEP_SECS, 300);
    }
}
