//! Trace-generation configuration.

use crate::diurnal::DiurnalEnvelope;
use crate::profile::MeanMixture;
use crate::units::TRACE_STEP_SECS;
use serde::{Deserialize, Serialize};

/// Full configuration of a synthetic trace set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of VM traces to generate (paper: 6,000).
    pub n_vms: usize,
    /// Trace duration in seconds (paper's main experiment: 48 h).
    pub duration_secs: u64,
    /// Sampling step in seconds (CoMon: 300 s).
    pub step_secs: u64,
    /// RNG seed — the whole trace set is a pure function of the config.
    pub seed: u64,
    /// Mean-demand mixture parameters.
    pub mixture: MeanMixture,
    /// Shared day/night envelope.
    pub envelope: DiurnalEnvelope,
}

impl TraceConfig {
    /// The paper's §III scenario: 6,000 VMs, 48 hours, 5-minute samples.
    pub fn paper_48h(seed: u64) -> Self {
        Self {
            n_vms: 6000,
            duration_secs: 48 * 3600,
            step_secs: TRACE_STEP_SECS,
            seed,
            mixture: MeanMixture::default(),
            envelope: DiurnalEnvelope::paper_default(),
        }
    }

    /// The paper's §IV scenario: 1,500 VMs "randomly chosen among the
    /// 6,000", 18 hours, starting at midnight.
    pub fn paper_fig12(seed: u64) -> Self {
        Self {
            n_vms: 1500,
            duration_secs: 18 * 3600,
            step_secs: TRACE_STEP_SECS,
            seed,
            mixture: MeanMixture::default(),
            envelope: DiurnalEnvelope::paper_default(),
        }
    }

    /// A small fast configuration for tests and the quickstart example.
    pub fn small(seed: u64) -> Self {
        Self {
            n_vms: 200,
            duration_secs: 6 * 3600,
            step_secs: TRACE_STEP_SECS,
            seed,
            mixture: MeanMixture::default(),
            envelope: DiurnalEnvelope::paper_default(),
        }
    }

    /// Number of samples per VM (at least one; the sample at `t` covers
    /// `[t, t + step)`).
    pub fn steps(&self) -> usize {
        (self.duration_secs / self.step_secs).max(1) as usize
    }

    /// Panics with a descriptive message when the configuration is
    /// unusable (zero VMs, zero step, ...).
    pub fn validate(&self) {
        assert!(self.n_vms > 0, "n_vms must be positive");
        assert!(self.step_secs > 0, "step_secs must be positive");
        assert!(
            self.duration_secs >= self.step_secs,
            "duration must cover at least one step"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_paper_dimensions() {
        let c = TraceConfig::paper_48h(1);
        assert_eq!(c.n_vms, 6000);
        assert_eq!(c.steps(), 48 * 12);
        let f = TraceConfig::paper_fig12(1);
        assert_eq!(f.n_vms, 1500);
        assert_eq!(f.steps(), 18 * 12);
    }

    #[test]
    #[should_panic(expected = "n_vms")]
    fn rejects_zero_vms() {
        let mut c = TraceConfig::small(1);
        c.n_vms = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn rejects_subsample_duration() {
        let mut c = TraceConfig::small(1);
        c.duration_secs = 10;
        c.validate();
    }
}
