//! Trace persistence: JSON for interoperability, a compact binary
//! format for the 6,000-VM × 48-hour paper trace (~3.5 M samples, where
//! JSON would be tens of megabytes).

use crate::config::TraceConfig;
use crate::generator::{TraceSet, VmTrace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::io;
use std::path::Path;

/// Magic bytes identifying the binary trace format ("ECOT" + version).
const MAGIC: &[u8; 4] = b"ECOT";
const VERSION: u16 = 1;

/// Serializes a trace set to pretty JSON.
pub fn to_json(set: &TraceSet) -> serde_json::Result<String> {
    serde_json::to_string(set)
}

/// Deserializes a trace set from JSON.
pub fn from_json(s: &str) -> serde_json::Result<TraceSet> {
    serde_json::from_str(s)
}

/// Saves a trace set as JSON to `path`.
pub fn save_json(set: &TraceSet, path: &Path) -> io::Result<()> {
    let s = to_json(set).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, s)
}

/// Loads a trace set from a JSON file.
pub fn load_json(path: &Path) -> io::Result<TraceSet> {
    let s = fs::read_to_string(path)?;
    from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Encodes a trace set into the compact binary format:
/// header (magic, version, JSON-encoded config+profiles length + bytes),
/// then per-VM sample counts and raw little-endian `f32` samples.
pub fn to_binary(set: &TraceSet) -> Bytes {
    // Profiles and config are small; carry them as embedded JSON to
    // avoid hand-rolling their encoding.
    #[derive(serde::Serialize)]
    struct Meta<'a> {
        config: &'a TraceConfig,
        profiles: Vec<&'a crate::profile::VmProfile>,
    }
    let meta = Meta {
        config: &set.config,
        profiles: set.vms.iter().map(|v| &v.profile).collect(),
    };
    let meta_json = serde_json::to_vec(&meta).expect("profiles always serialize");

    let samples_total: usize = set.vms.iter().map(|v| v.samples.len()).sum();
    let mut buf = BytesMut::with_capacity(16 + meta_json.len() + 4 * set.len() + 4 * samples_total);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(meta_json.len() as u32);
    buf.put_slice(&meta_json);
    buf.put_u32_le(set.len() as u32);
    for vm in &set.vms {
        buf.put_u32_le(vm.samples.len() as u32);
        for &s in &vm.samples {
            buf.put_f32_le(s);
        }
    }
    buf.freeze()
}

/// Decodes the compact binary format.
pub fn from_binary(mut data: Bytes) -> io::Result<TraceSet> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.remaining() < 10 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(err("unsupported version"));
    }
    let meta_len = data.get_u32_le() as usize;
    if data.remaining() < meta_len {
        return Err(err("truncated metadata"));
    }
    let meta_bytes = data.copy_to_bytes(meta_len);
    #[derive(serde::Deserialize)]
    struct Meta {
        config: TraceConfig,
        profiles: Vec<crate::profile::VmProfile>,
    }
    let meta: Meta = serde_json::from_slice(&meta_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if data.remaining() < 4 {
        return Err(err("truncated vm count"));
    }
    let n_vms = data.get_u32_le() as usize;
    if n_vms != meta.profiles.len() {
        return Err(err("profile count mismatch"));
    }
    let mut vms = Vec::with_capacity(n_vms);
    for profile in meta.profiles {
        if data.remaining() < 4 {
            return Err(err("truncated sample count"));
        }
        let n = data.get_u32_le() as usize;
        if data.remaining() < 4 * n {
            return Err(err("truncated samples"));
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(data.get_f32_le());
        }
        vms.push(VmTrace { profile, samples });
    }
    Ok(TraceSet {
        config: meta.config,
        vms,
    })
}

/// Saves a trace set in the binary format.
pub fn save_binary(set: &TraceSet, path: &Path) -> io::Result<()> {
    fs::write(path, to_binary(set))
}

/// Loads a trace set from the binary format.
pub fn load_binary(path: &Path) -> io::Result<TraceSet> {
    let data = fs::read(path)?;
    from_binary(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;

    fn set() -> TraceSet {
        TraceSet::generate(TraceConfig {
            n_vms: 20,
            duration_secs: 2 * 3600,
            ..TraceConfig::small(33)
        })
    }

    #[test]
    #[ignore = "requires real serde_json; the offline stub serializes but cannot deserialize"]
    fn json_roundtrip() {
        let s = set();
        let json = to_json(&s).expect("serialize");
        let back = from_json(&json).expect("deserialize");
        assert_eq!(back.len(), s.len());
        for (a, b) in s.vms.iter().zip(&back.vms) {
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    #[ignore = "requires real serde_json; the offline stub serializes but cannot deserialize"]
    fn binary_roundtrip() {
        let s = set();
        let bin = to_binary(&s);
        let back = from_binary(bin).expect("decode");
        assert_eq!(back.len(), s.len());
        assert_eq!(back.config.n_vms, s.config.n_vms);
        for (a, b) in s.vms.iter().zip(&back.vms) {
            assert_eq!(a.samples, b.samples);
            // Profiles travel as embedded JSON, which may lose the last
            // ULP of a double.
            assert!((a.profile.mean_frac - b.profile.mean_frac).abs() < 1e-12);
        }
    }

    #[test]
    #[ignore = "requires real serde_json; the offline stub serializes but cannot deserialize"]
    fn binary_is_denser_than_json() {
        let s = set();
        let bin = to_binary(&s).len();
        let json = to_json(&s).expect("serialize").len();
        assert!(bin < json, "binary {bin} not smaller than JSON {json}");
    }

    #[test]
    fn rejects_corrupt_magic() {
        let s = set();
        let mut bin = to_binary(&s).to_vec();
        bin[0] = b'X';
        assert!(from_binary(Bytes::from(bin)).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let s = set();
        let bin = to_binary(&s);
        for cut in [0, 5, bin.len() / 2, bin.len() - 1] {
            let sliced = bin.slice(0..cut);
            assert!(from_binary(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    #[ignore = "requires real serde_json; the offline stub serializes but cannot deserialize"]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ecocloud_trace_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let s = set();
        let jp = dir.join("t.json");
        let bp = dir.join("t.ecot");
        save_json(&s, &jp).expect("save json");
        save_binary(&s, &bp).expect("save bin");
        assert_eq!(load_json(&jp).expect("load json").len(), s.len());
        assert_eq!(load_binary(&bp).expect("load bin").len(), s.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
