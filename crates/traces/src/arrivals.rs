//! VM arrival / departure processes and rate estimation.
//!
//! The paper's §IV experiment (Figs. 12–13) drives an assignment-only
//! system: VMs arrive at rate λ(t), live an exponential lifetime and
//! leave at per-core service rate μ(t). This module generates those
//! events (a non-homogeneous Poisson process modulated by the diurnal
//! envelope) and — in the other direction — estimates λ(t) and μ(t)
//! from an event list so the ODE model can be fed "the same values
//! computed from the traces" (§IV).

use crate::diurnal::DiurnalEnvelope;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A VM arrival or departure timestamp (used by rate estimation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalEvent {
    /// A VM entered the system at the given time (seconds).
    Arrival(f64),
    /// A VM left the system at the given time (seconds).
    Departure(f64),
}

/// A diurnally-modulated Poisson arrival process with exponential
/// lifetimes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Baseline arrival rate in VMs per second (before modulation).
    pub base_rate_per_sec: f64,
    /// Diurnal modulation of the arrival rate.
    pub envelope: DiurnalEnvelope,
    /// Mean VM lifetime in seconds.
    pub mean_lifetime_secs: f64,
}

impl ArrivalProcess {
    /// Process calibrated for the paper's Fig. 12 scenario: a steady
    /// population of ≈1,500 VMs with a 2-hour mean lifetime and a
    /// *flat* arrival rate.
    ///
    /// Churn is the only consolidation mechanism of the §IV experiment
    /// (migrations are inhibited): under-utilized servers drain because
    /// their VMs depart and the assignment function starves them of new
    /// ones. A ≈2-hour lifetime lets the spread initial population
    /// drain on the ~6-hour timescale the paper reports for reaching
    /// the steady state. The arrival rate is flat because the morning
    /// load ramp of Figs. 12–13 comes from the per-VM *demand*
    /// envelope; modulating arrivals as well would square the diurnal
    /// swing.
    pub fn paper_fig12() -> Self {
        let mean_lifetime_secs = 2.0 * 3600.0;
        Self {
            base_rate_per_sec: 1500.0 / mean_lifetime_secs,
            envelope: DiurnalEnvelope::flat(),
            mean_lifetime_secs,
        }
    }

    /// Instantaneous arrival rate at `t_secs` (VMs per second).
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        self.base_rate_per_sec * self.envelope.at(t_secs)
    }

    /// Generates arrival timestamps over `[0, duration_secs)` by
    /// thinning a homogeneous Poisson process at the envelope's peak
    /// rate.
    pub fn generate_arrivals(&self, duration_secs: f64, seed: u64) -> Vec<f64> {
        let peak = self.base_rate_per_sec * (1.0 + self.envelope.amplitude.max(0.0));
        if peak <= 0.0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            // Exponential inter-arrival at the majorizing rate.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / peak;
            if t >= duration_secs {
                break;
            }
            if rng.gen_bool((self.rate_at(t) / peak).clamp(0.0, 1.0)) {
                out.push(t);
            }
        }
        out
    }

    /// Draws one exponential lifetime (seconds).
    pub fn sample_lifetime<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * self.mean_lifetime_secs
    }
}

/// Piecewise-constant estimates of λ(t) (arrivals per second) and the
/// per-VM departure rate (1/second), measured over fixed windows of an
/// event list — the quantities the ODE model consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateEstimate {
    /// Estimation window width in seconds.
    pub window_secs: f64,
    /// Arrival rate per window (VMs/second).
    pub lambda: Vec<f64>,
    /// Per-VM departure rate per window (1/second).
    pub mu_per_vm: Vec<f64>,
    /// Mean VM population per window.
    pub population: Vec<f64>,
}

impl RateEstimate {
    /// Estimates rates from an event list.
    ///
    /// `initial_population` is the number of VMs present at t = 0 (the
    /// Fig. 12 run starts with 1,500 already placed).
    pub fn from_events(
        events: &[ArrivalEvent],
        initial_population: usize,
        duration_secs: f64,
        window_secs: f64,
    ) -> Self {
        assert!(window_secs > 0.0, "window must be positive");
        let n_windows = (duration_secs / window_secs).ceil().max(1.0) as usize;
        let mut arrivals = vec![0u64; n_windows];
        let mut departures = vec![0u64; n_windows];
        // Events outside the observation horizon are dropped — clamping
        // them into the last window would fabricate a departure (or
        // arrival) spike at the very end of the horizon.
        let mut sorted: Vec<(f64, bool)> = events
            .iter()
            .map(|e| match *e {
                ArrivalEvent::Arrival(t) => (t, true),
                ArrivalEvent::Departure(t) => (t, false),
            })
            .filter(|&(t, _)| (0.0..duration_secs).contains(&t))
            .collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Track population through time to average it per window.
        let mut pop = initial_population as f64;
        let mut pop_area = vec![0.0f64; n_windows];
        let mut last_t = 0.0f64;
        let clamp_w = |w: usize| w.min(n_windows - 1);
        for &(t, is_arrival) in &sorted {
            let t = t.clamp(0.0, duration_secs);
            // Accumulate population area across the windows between
            // last_t and t.
            let mut cursor = last_t;
            while cursor < t {
                let w = clamp_w((cursor / window_secs) as usize);
                let w_end = ((w + 1) as f64 * window_secs).min(t);
                pop_area[w] += pop * (w_end - cursor);
                cursor = w_end;
            }
            last_t = t;
            let w = clamp_w((t / window_secs) as usize);
            if is_arrival {
                arrivals[w] += 1;
                pop += 1.0;
            } else {
                departures[w] += 1;
                pop = (pop - 1.0).max(0.0);
            }
        }
        let mut cursor = last_t;
        while cursor < duration_secs {
            let w = clamp_w((cursor / window_secs) as usize);
            let w_end = ((w + 1) as f64 * window_secs).min(duration_secs);
            pop_area[w] += pop * (w_end - cursor);
            cursor = w_end;
        }

        let lambda: Vec<f64> = arrivals.iter().map(|&a| a as f64 / window_secs).collect();
        let population: Vec<f64> = pop_area.iter().map(|&a| a / window_secs).collect();
        let mu_per_vm: Vec<f64> = departures
            .iter()
            .zip(&population)
            .map(|(&d, &p)| {
                if p <= 0.0 {
                    0.0
                } else {
                    d as f64 / window_secs / p
                }
            })
            .collect();
        Self {
            window_secs,
            lambda,
            mu_per_vm,
            population,
        }
    }

    fn window_of(&self, t_secs: f64) -> usize {
        ((t_secs / self.window_secs) as usize).min(self.lambda.len().saturating_sub(1))
    }

    /// Arrival rate at `t_secs` (VMs/second).
    pub fn lambda_at(&self, t_secs: f64) -> f64 {
        self.lambda[self.window_of(t_secs)]
    }

    /// Per-VM departure rate at `t_secs` (1/second).
    pub fn mu_at(&self, t_secs: f64) -> f64 {
        self.mu_per_vm[self.window_of(t_secs)]
    }

    /// Mean VM population at `t_secs`.
    pub fn population_at(&self, t_secs: f64) -> f64 {
        self.population[self.window_of(t_secs)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_count_matches_rate() {
        let p = ArrivalProcess {
            base_rate_per_sec: 0.1,
            envelope: DiurnalEnvelope::flat(),
            mean_lifetime_secs: 100.0,
        };
        let arrivals = p.generate_arrivals(100_000.0, 1);
        let expected = 0.1 * 100_000.0;
        let n = arrivals.len() as f64;
        assert!(
            (n - expected).abs() < 4.0 * expected.sqrt(),
            "got {n}, expected ≈{expected}"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let p = ArrivalProcess::paper_fig12();
        let arrivals = p.generate_arrivals(3600.0, 2);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals.iter().all(|&t| (0.0..3600.0).contains(&t)));
    }

    #[test]
    fn arrivals_follow_envelope() {
        let p = ArrivalProcess {
            base_rate_per_sec: 0.05,
            envelope: DiurnalEnvelope::paper_default(),
            mean_lifetime_secs: 3600.0,
        };
        let arrivals = p.generate_arrivals(24.0 * 3600.0, 3);
        let in_window = |lo: f64, hi: f64| {
            arrivals
                .iter()
                .filter(|&&t| t >= lo * 3600.0 && t < hi * 3600.0)
                .count()
        };
        let day = in_window(13.0, 17.0);
        let night = in_window(1.0, 5.0);
        assert!(
            day > night,
            "day arrivals {day} not above night arrivals {night}"
        );
    }

    #[test]
    fn lifetimes_have_requested_mean() {
        let p = ArrivalProcess::paper_fig12();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample_lifetime(&mut rng)).sum::<f64>() / n as f64;
        let rel = (mean / p.mean_lifetime_secs - 1.0).abs();
        assert!(rel < 0.05, "lifetime mean off by {rel}");
    }

    #[test]
    fn rate_estimate_recovers_constant_rates() {
        // 2 arrivals/sec for 100 s, population pinned around 100,
        // 1 departure/sec → mu ≈ 0.01 per VM.
        let mut events = Vec::new();
        for i in 0..200 {
            events.push(ArrivalEvent::Arrival(i as f64 * 0.5));
        }
        for i in 0..100 {
            events.push(ArrivalEvent::Departure(i as f64 + 0.9));
        }
        let est = RateEstimate::from_events(&events, 100, 100.0, 10.0);
        assert_eq!(est.lambda.len(), 10);
        for w in 0..10 {
            assert!((est.lambda[w] - 2.0).abs() < 1e-9, "lambda[{w}]");
            assert!(est.mu_per_vm[w] > 0.0);
        }
        // Population grows by +1/sec net: window means increase.
        assert!(est.population[9] > est.population[0]);
    }

    #[test]
    fn rate_lookup_clamps() {
        let events = vec![ArrivalEvent::Arrival(1.0)];
        let est = RateEstimate::from_events(&events, 0, 10.0, 5.0);
        assert_eq!(est.lambda_at(-1.0), est.lambda[0]);
        assert_eq!(est.lambda_at(1e9), est.lambda[1]);
        let _ = est.mu_at(3.0);
        let _ = est.population_at(3.0);
    }

    #[test]
    fn empty_event_list_is_all_zero_rates() {
        let est = RateEstimate::from_events(&[], 10, 100.0, 10.0);
        assert!(est.lambda.iter().all(|&l| l == 0.0));
        assert!(est.mu_per_vm.iter().all(|&m| m == 0.0));
        assert!(est.population.iter().all(|&p| (p - 10.0).abs() < 1e-9));
    }
}
