//! Importer for real PlanetLab trace files.
//!
//! The paper's workload (CoMon monitoring of PlanetLab VMs, 5-minute
//! CPU-utilization samples) survives in the widely mirrored
//! `planetlab-workload-traces` dataset: one directory per day, one
//! plain-text file per VM, one integer CPU percentage (0–100) per
//! line, 288 lines per day. This module parses that layout into a
//! [`TraceSet`], so anyone holding the real data can swap it in for
//! the synthetic generator and run the exact reproduction:
//!
//! ```no_run
//! let set = ecocloud_traces::planetlab::import_dir(
//!     std::path::Path::new("planetlab/20110303"),
//!     ecocloud_traces::TRACE_STEP_SECS,
//! ).expect("trace directory");
//! println!("{} VMs imported", set.len());
//! ```
//!
//! Imported traces carry a [`VmProfile`] reconstructed from the
//! measured series (mean + deviation statistics), so everything
//! downstream — Fig. 4/5 characterization, the fluid model's `w̄` —
//! works identically for real and synthetic data.

use crate::config::TraceConfig;
use crate::diurnal::DiurnalEnvelope;
use crate::generator::{TraceSet, VmTrace};
use crate::profile::{MeanMixture, VmProfile};
use std::fs;
use std::io;
use std::path::Path;

/// Parses one PlanetLab trace file: one integer percentage per line.
/// Blank lines are skipped; anything non-numeric is an error.
pub fn parse_file(content: &str) -> Result<Vec<f32>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let pct: f64 = line
            .parse()
            .map_err(|e| format!("line {}: '{line}': {e}", lineno + 1))?;
        if !(0.0..=100.0).contains(&pct) {
            return Err(format!("line {}: {pct} outside 0–100", lineno + 1));
        }
        samples.push((pct / 100.0) as f32);
    }
    if samples.is_empty() {
        return Err("file contains no samples".to_string());
    }
    Ok(samples)
}

/// Reconstructs a descriptive profile from a measured series (the
/// stochastic parameters are estimates — they are only used for
/// reporting and for the fluid model's `w̄`, never to re-generate the
/// series).
fn profile_from_series(samples: &[f32]) -> VmProfile {
    let n = samples.len() as f64;
    let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|&s| (s as f64 - mean).powi(2))
        .sum::<f64>()
        / n.max(1.0);
    let rel_sigma = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    // Lag-1 autocorrelation as the AR(1) coefficient estimate.
    let mut ar_phi: f64 = 0.0;
    if samples.len() > 2 && var > 0.0 {
        let cov: f64 = samples
            .windows(2)
            .map(|w| (w[0] as f64 - mean) * (w[1] as f64 - mean))
            .sum::<f64>()
            / (n - 1.0);
        ar_phi = (cov / var).clamp(0.0, 0.999);
    }
    VmProfile {
        mean_frac: mean.clamp(0.0, 1.0),
        rel_sigma,
        ar_phi,
        burst_prob: 0.0,
        burst_mult: 1.0,
        burst_end_prob: 1.0,
    }
}

/// Imports every file of a PlanetLab day directory as one VM trace.
/// Files are read in lexicographic order so the import is
/// deterministic. `step_secs` is the sampling cadence (CoMon: 300 s).
pub fn import_dir(dir: &Path, step_secs: u64) -> io::Result<TraceSet> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no trace files in {}", dir.display()),
        ));
    }
    let mut vms = Vec::with_capacity(paths.len());
    let mut max_steps = 0usize;
    for path in &paths {
        let content = fs::read_to_string(path)?;
        let samples = parse_file(&content).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        max_steps = max_steps.max(samples.len());
        let profile = profile_from_series(&samples);
        vms.push(VmTrace { profile, samples });
    }
    let config = TraceConfig {
        n_vms: vms.len(),
        duration_secs: max_steps as u64 * step_secs,
        step_secs,
        seed: 0,
        mixture: MeanMixture::default(),
        envelope: DiurnalEnvelope::flat(), // the real data carries its own pattern
    };
    Ok(TraceSet { config, vms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_file() {
        let s = parse_file("0\n25\n100\n\n50\n").expect("parses");
        assert_eq!(s, vec![0.0, 0.25, 1.0, 0.5]);
    }

    #[test]
    fn rejects_garbage_and_out_of_range() {
        assert!(parse_file("1\nfoo\n").is_err());
        assert!(parse_file("120\n").is_err());
        assert!(parse_file("-3\n").is_err());
        assert!(parse_file("").is_err());
    }

    #[test]
    fn profile_reconstruction_matches_moments() {
        // A flat series: mean = value, zero variance, phi irrelevant.
        let flat = vec![0.2f32; 288];
        let p = profile_from_series(&flat);
        assert!((p.mean_frac - 0.2).abs() < 1e-6);
        assert_eq!(p.rel_sigma, 0.0);
        assert!(p.is_valid(), "reconstructed profile invalid: {p:?}");
        // A strongly autocorrelated ramp has phi near 1.
        let ramp: Vec<f32> = (0..288).map(|i| i as f32 / 288.0).collect();
        let p = profile_from_series(&ramp);
        assert!(p.ar_phi > 0.9, "ramp phi = {}", p.ar_phi);
    }

    #[test]
    fn imports_directory_deterministically() {
        let dir = std::env::temp_dir().join("ecocloud_planetlab_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        // Three fake VMs, 288 samples each, in the real format.
        for (name, base) in [("vm_a", 5u32), ("vm_b", 40), ("vm_c", 90)] {
            let content: String = (0..288)
                .map(|i| format!("{}\n", (base + (i % 7)).min(100)))
                .collect();
            fs::write(dir.join(name), content).expect("write");
        }
        let set = import_dir(&dir, 300).expect("imports");
        assert_eq!(set.len(), 3);
        assert_eq!(set.config.steps(), 288);
        assert_eq!(set.config.duration_secs, 288 * 300);
        // Lexicographic order: vm_a first, with the smallest mean.
        assert!(set.vms[0].profile.mean_frac < set.vms[2].profile.mean_frac);
        // Samples round-trip as fractions.
        assert!((set.vms[0].samples[0] - 0.05).abs() < 1e-6);
        // Demand lookup works like synthetic traces.
        assert!(set.vms[2].demand_mhz_at(0.0, 300) > 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = std::env::temp_dir().join("ecocloud_planetlab_empty");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        assert!(import_dir(&dir, 300).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
