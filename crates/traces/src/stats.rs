//! Trace characterization — the statistics behind the paper's Figs. 4–5.

use crate::generator::TraceSet;
use ecocloud_metrics::Histogram;

/// Distribution of per-VM *average* CPU utilization, in percent of the
/// reference host (the paper's Fig. 4: x from 0 to 100, bin width
/// `100 / bins`).
pub fn avg_utilization_histogram(set: &TraceSet, bins: usize) -> Histogram {
    let mut h = Histogram::new(0.0, 100.0, bins);
    for vm in &set.vms {
        h.push(vm.measured_mean_frac() * 100.0);
    }
    h
}

/// Distribution of the deviation between punctual and per-VM average
/// utilization, in percentage points (the paper's Fig. 5: x from -40 to
/// +40).
pub fn deviation_histogram(set: &TraceSet, bins: usize) -> Histogram {
    let mut h = Histogram::new(-40.0, 40.0, bins);
    for vm in &set.vms {
        let mean = vm.measured_mean_frac();
        for &s in &vm.samples {
            h.push((s as f64 - mean) * 100.0);
        }
    }
    h
}

/// Fraction of all deviation samples within ±`points` percentage points
/// of the per-VM mean (the paper reports ≈94 % within ±10).
pub fn fraction_within_deviation(set: &TraceSet, points: f64) -> f64 {
    let mut within = 0u64;
    let mut total = 0u64;
    for vm in &set.vms {
        let mean = vm.measured_mean_frac();
        for &s in &vm.samples {
            let dev = (s as f64 - mean).abs() * 100.0;
            if dev <= points {
                within += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        within as f64 / total as f64
    }
}

/// Overall load of the trace set relative to a given total capacity, at
/// each trace step — the black reference dots of the paper's Fig. 6.
pub fn overall_load_series(set: &TraceSet, total_capacity_mhz: f64) -> Vec<(f64, f64)> {
    let steps = set.config.steps();
    (0..steps)
        .map(|k| {
            let t = (k as u64 * set.config.step_secs) as f64;
            (t, set.total_demand_mhz_at(t) / total_capacity_mhz)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;

    fn set() -> TraceSet {
        TraceSet::generate(TraceConfig {
            n_vms: 500,
            duration_secs: 24 * 3600,
            ..TraceConfig::small(17)
        })
    }

    #[test]
    fn fig4_mass_is_below_20_percent() {
        let s = set();
        let h = avg_utilization_histogram(&s, 40);
        assert_eq!(h.total(), 500);
        let below20 = h.fraction_below(20.0);
        assert!(below20 > 0.85, "only {below20} below 20 %");
        // Mode is in the lowest bins, as in Fig. 4.
        let freqs = h.frequencies();
        let (max_center, _) = freqs
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        assert!(
            max_center < 10.0,
            "mode at {max_center}% — Fig. 4 peaks low"
        );
    }

    #[test]
    fn fig5_deviations_concentrate_near_zero() {
        let s = set();
        let within10 = fraction_within_deviation(&s, 10.0);
        assert!(
            within10 > 0.88,
            "deviations too wide: {within10} within ±10 points (paper: ≈0.94)"
        );
        let h = deviation_histogram(&s, 80);
        // The central bins hold the mode.
        let freqs = h.frequencies();
        let (center, _) = freqs
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        assert!(center.abs() < 5.0, "deviation mode at {center}");
    }

    #[test]
    fn overall_load_series_has_diurnal_shape() {
        let s = set();
        let capacity = 100.0 * 12_000.0;
        let series = overall_load_series(&s, capacity);
        assert_eq!(series.len(), s.config.steps());
        let at = |hour: f64| {
            series
                .iter()
                .min_by(|a, b| {
                    (a.0 - hour * 3600.0)
                        .abs()
                        .total_cmp(&(b.0 - hour * 3600.0).abs())
                })
                .expect("non-empty")
                .1
        };
        assert!(at(15.0) > at(3.0), "no diurnal pattern in overall load");
    }

    #[test]
    fn deviation_fraction_is_monotone_in_width() {
        let s = set();
        let a = fraction_within_deviation(&s, 5.0);
        let b = fraction_within_deviation(&s, 10.0);
        let c = fraction_within_deviation(&s, 40.0);
        assert!(a <= b && b <= c);
        assert!(c > 0.999);
    }
}
