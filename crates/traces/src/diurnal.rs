//! The shared diurnal load envelope.
//!
//! Figures 6–8 of the paper show the aggregate data-center load rising
//! through the morning, peaking in the afternoon and falling back at
//! night, over two consecutive days starting at midnight. The envelope
//! here multiplies every VM's mean demand; its 24-hour average is 1 so
//! per-VM long-run averages equal the profile mean.

use serde::{Deserialize, Serialize};

/// A raised-cosine day/night modulation with optional slow noise.
///
/// `envelope(t) = 1 + amplitude · cos(2π · (h − peak_hour)/24) + drift`,
/// where `h` is the hour-of-day. With the default amplitude of 0.45 the
/// peak-to-trough ratio is ≈ (1.45 / 0.55) ≈ 2.6×, matching the swing
/// visible in the paper's Fig. 6 overall-load dots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiurnalEnvelope {
    /// Half peak-to-trough relative swing (0 disables the daily pattern).
    pub amplitude: f64,
    /// Hour of day (0–24) at which the load peaks.
    pub peak_hour: f64,
}

impl Default for DiurnalEnvelope {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl DiurnalEnvelope {
    /// Envelope calibrated to the paper's Figs. 6–8: peak around 15:00,
    /// trough around 03:00, ≈2.5× swing.
    pub fn paper_default() -> Self {
        Self {
            amplitude: 0.45,
            peak_hour: 15.0,
        }
    }

    /// A flat envelope (constant 1) — used by experiments that need a
    /// stationary workload.
    pub fn flat() -> Self {
        Self {
            amplitude: 0.0,
            peak_hour: 0.0,
        }
    }

    /// Multiplier at simulated time `t_secs` (t = 0 is midnight).
    pub fn at(&self, t_secs: f64) -> f64 {
        let hour = (t_secs / 3600.0) % 24.0;
        let phase = 2.0 * std::f64::consts::PI * (hour - self.peak_hour) / 24.0;
        (1.0 + self.amplitude * phase.cos()).max(0.0)
    }

    /// Average of the envelope over one full day (analytically 1 for any
    /// amplitude < 1; exposed for tests and calibration reports).
    pub fn daily_mean(&self) -> f64 {
        let steps = 24 * 60;
        (0..steps).map(|i| self.at(i as f64 * 60.0)).sum::<f64>() / steps as f64
    }

    /// Ratio between the daily maximum and minimum of the envelope.
    pub fn peak_to_trough(&self) -> f64 {
        let hi = 1.0 + self.amplitude;
        let lo = (1.0 - self.amplitude).max(f64::EPSILON);
        hi / lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_at_peak_hour() {
        let e = DiurnalEnvelope::paper_default();
        let at_peak = e.at(15.0 * 3600.0);
        let at_trough = e.at(3.0 * 3600.0);
        assert!((at_peak - 1.45).abs() < 1e-9);
        assert!((at_trough - 0.55).abs() < 1e-9);
    }

    #[test]
    fn daily_mean_is_one() {
        let e = DiurnalEnvelope::paper_default();
        assert!((e.daily_mean() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn repeats_every_24_hours() {
        let e = DiurnalEnvelope::paper_default();
        for h in 0..24 {
            let t = h as f64 * 3600.0;
            assert!((e.at(t) - e.at(t + 24.0 * 3600.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn flat_envelope_is_constant_one() {
        let e = DiurnalEnvelope::flat();
        for h in 0..48 {
            assert_eq!(e.at(h as f64 * 1800.0), 1.0);
        }
    }

    #[test]
    fn never_negative_even_with_large_amplitude() {
        let e = DiurnalEnvelope {
            amplitude: 1.5,
            peak_hour: 12.0,
        };
        for h in 0..96 {
            assert!(e.at(h as f64 * 900.0) >= 0.0);
        }
    }

    #[test]
    fn swing_matches_paper_regime() {
        let e = DiurnalEnvelope::paper_default();
        let r = e.peak_to_trough();
        assert!(r > 2.0 && r < 3.0, "peak/trough {r} outside Fig.6 regime");
    }
}
