//! Per-VM workload profiles.
//!
//! A [`VmProfile`] holds the *parameters* of one VM's demand process;
//! the generator turns profiles into concrete sample series. Profiles
//! are drawn from a two-component lognormal mixture calibrated to the
//! paper's Fig. 4.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the mean-demand mixture distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeanMixture {
    /// Probability a VM belongs to the heavy tail.
    pub tail_weight: f64,
    /// Lognormal median of the body (fraction of the reference host).
    pub body_median: f64,
    /// Lognormal sigma of the body.
    pub body_sigma: f64,
    /// Lognormal median of the tail.
    pub tail_median: f64,
    /// Lognormal sigma of the tail.
    pub tail_sigma: f64,
    /// Hard cap on the mean demand (a VM cannot exceed a full host).
    pub max_frac: f64,
    /// Hard floor (CoMon never reports exactly idle VMs for long).
    pub min_frac: f64,
}

impl Default for MeanMixture {
    fn default() -> Self {
        // Calibrated so ~90 % of VMs average below 20 % of the host
        // (Fig. 4's mass), with a thin tail reaching towards 100 %, and
        // an overall mean of ≈2.2 % — which puts 6,000 VMs on 400
        // servers at the ≈0.33 average overall load of Fig. 6.
        Self {
            tail_weight: 0.06,
            body_median: 0.008,
            body_sigma: 0.85,
            tail_median: 0.12,
            tail_sigma: 0.80,
            max_frac: 1.0,
            min_frac: 0.001,
        }
    }
}

/// The complete stochastic description of one VM's CPU demand.
///
/// Demand at trace step `k` is
/// `mean · envelope(t_k) · max(0, 1 + x_k) · burst_k`, where `x` is an
/// AR(1) process with autocorrelation `ar_phi` and stationary relative
/// standard deviation `rel_sigma`, and `burst` is 1 except during rare
/// geometric-length bursts where it is `burst_mult`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmProfile {
    /// Long-run average demand as a fraction of the reference host.
    pub mean_frac: f64,
    /// Stationary relative std-dev of the AR(1) deviation process.
    pub rel_sigma: f64,
    /// AR(1) coefficient per 5-minute step (0 ≤ φ < 1).
    pub ar_phi: f64,
    /// Per-step probability of starting a demand burst.
    pub burst_prob: f64,
    /// Multiplier applied during a burst.
    pub burst_mult: f64,
    /// Per-step probability of ending an ongoing burst.
    pub burst_end_prob: f64,
}

impl VmProfile {
    /// Draws a random profile from the calibrated distribution.
    pub fn sample<R: Rng>(rng: &mut R, mix: &MeanMixture) -> Self {
        let mean_frac = sample_mean_frac(rng, mix);
        // Small VMs fluctuate relatively more; big VMs are steadier —
        // this keeps the *absolute* deviations (Fig. 5, percentage
        // points) dominated by the occasional mid-sized VM, with ~94 %
        // of all samples within ±10 points.
        let rel_sigma = rng.gen_range(0.05..0.25);
        let ar_phi = rng.gen_range(0.60..0.95);
        Self {
            mean_frac,
            rel_sigma,
            ar_phi,
            burst_prob: 0.001,
            burst_mult: rng.gen_range(1.3..2.2),
            burst_end_prob: 0.35,
        }
    }

    /// A deterministic steady profile (tests and micro-examples).
    pub fn constant(mean_frac: f64) -> Self {
        Self {
            mean_frac,
            rel_sigma: 0.0,
            ar_phi: 0.0,
            burst_prob: 0.0,
            burst_mult: 1.0,
            burst_end_prob: 1.0,
        }
    }

    /// Validates parameter ranges; the generator asserts this.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.mean_frac)
            && self.rel_sigma >= 0.0
            && (0.0..1.0).contains(&self.ar_phi)
            && (0.0..=1.0).contains(&self.burst_prob)
            && self.burst_mult >= 1.0
            && (0.0..=1.0).contains(&self.burst_end_prob)
    }
}

/// Draws one mean demand from the mixture.
pub fn sample_mean_frac<R: Rng>(rng: &mut R, mix: &MeanMixture) -> f64 {
    let (median, sigma) = if rng.gen_bool(mix.tail_weight) {
        (mix.tail_median, mix.tail_sigma)
    } else {
        (mix.body_median, mix.body_sigma)
    };
    // Box–Muller standard normal; lognormal = median * exp(sigma * z).
    let z = standard_normal(rng);
    (median * (sigma * z).exp()).clamp(mix.min_frac, mix.max_frac)
}

/// One standard-normal variate via Box–Muller (avoids pulling in
/// `rand_distr`; two uniforms per call, second half discarded for
/// simplicity — profile sampling is not a hot path).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_profiles_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = MeanMixture::default();
        for _ in 0..1000 {
            let p = VmProfile::sample(&mut rng, &mix);
            assert!(p.is_valid(), "invalid profile: {p:?}");
        }
    }

    #[test]
    fn mean_distribution_matches_fig4_regime() {
        let mut rng = StdRng::seed_from_u64(42);
        let mix = MeanMixture::default();
        let means: Vec<f64> = (0..20_000)
            .map(|_| sample_mean_frac(&mut rng, &mix))
            .collect();
        let avg = means.iter().sum::<f64>() / means.len() as f64;
        let below_20 = means.iter().filter(|&&m| m < 0.20).count() as f64 / means.len() as f64;
        let above_50 = means.iter().filter(|&&m| m > 0.50).count() as f64 / means.len() as f64;
        // Fig. 4: "average CPU utilization is under 20 % for most VMs,
        // even though there are a few VMs with very high requirements".
        assert!(avg > 0.010 && avg < 0.035, "overall mean {avg} off regime");
        assert!(below_20 > 0.90, "only {below_20} of VMs below 20 %");
        assert!(above_50 > 0.0005, "tail missing: {above_50} above 50 %");
        assert!(above_50 < 0.02, "tail too fat: {above_50} above 50 %");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let zs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = zs.iter().sum::<f64>() / n as f64;
        let var = zs.iter().map(|z| (z - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn constant_profile_is_valid_and_flat() {
        let p = VmProfile::constant(0.1);
        assert!(p.is_valid());
        assert_eq!(p.rel_sigma, 0.0);
    }

    #[test]
    fn mean_respects_clamps() {
        let mut rng = StdRng::seed_from_u64(3);
        let mix = MeanMixture {
            body_median: 10.0, // absurd median to force clamping
            ..MeanMixture::default()
        };
        for _ in 0..100 {
            let m = sample_mean_frac(&mut rng, &mix);
            assert!(m <= mix.max_frac && m >= mix.min_frac);
        }
    }
}
