//! Synthetic VM workload traces for the ecoCloud reproduction.
//!
//! The paper drives its simulator with CoMon logs of 6,000 real
//! PlanetLab VMs (CPU utilization, sampled every 5 minutes over
//! March–April 2012). Those traces are not redistributable and the
//! CoMon service no longer exists, so this crate generates *synthetic*
//! traces calibrated to every statistic the paper publishes about the
//! real ones:
//!
//! * **Fig. 4** — the distribution of per-VM *average* CPU utilization:
//!   strongly skewed towards small VMs, most below 20 % of the hosting
//!   machine's capacity, with a thin heavy tail of CPU-hungry VMs.
//! * **Fig. 5** — the distribution of the *deviation* between punctual
//!   and average utilization: concentrated around zero, with about 94 %
//!   of samples within ±10 percentage points.
//! * **Figs. 6–8** — the aggregate load follows the normal daily
//!   pattern (rising in the morning, falling in the evening), spanning
//!   roughly a 2–2.5× swing between the nightly trough and the daily
//!   peak.
//!
//! The generator composes three processes:
//!
//! 1. a per-VM **mean demand** drawn from a two-component lognormal
//!    mixture (small-VM body + heavy tail),
//! 2. a per-VM mean-reverting **AR(1) deviation** process with
//!    occasional multiplicative bursts (the source of overload events),
//! 3. a shared **diurnal envelope** modulating all VMs.
//!
//! Demands are expressed as a fraction of a *reference host*
//! (6 cores × 2 GHz = 12 000 MHz, the median server of the paper's data
//! center); [`units`] converts to absolute MHz.

pub mod arrivals;
pub mod churn;
pub mod config;
pub mod diurnal;
pub mod generator;
pub mod io;
pub mod planetlab;
pub mod profile;
pub mod stats;
pub mod units;

pub use arrivals::{ArrivalEvent, ArrivalProcess, RateEstimate};
pub use churn::{Archetype, ChurnArrival, ChurnClass, OpenSystemSpec};
pub use config::TraceConfig;
pub use diurnal::DiurnalEnvelope;
pub use generator::{TraceSet, VmTrace};
pub use profile::VmProfile;
pub use units::{MhzPerCore, REFERENCE_HOST_MHZ, TRACE_STEP_SECS};
