//! Open-system workload specification for the main §III experiment.
//!
//! The paper's data center is an *open* system: VMs arrive, run and
//! leave, and a large part of the diurnal load swing of Fig. 6 comes
//! from the population breathing, not from resident VMs ramping their
//! demand. The closed-system reproduction (all 6,000 VMs resident from
//! t = 0) forces every watt of diurnal growth through relocation, which
//! is the Note-1 fidelity gap of EXPERIMENTS.md.
//!
//! [`OpenSystemSpec`] fixes this by splitting the total diurnal
//! envelope between two mechanisms with a single `churn_share` knob:
//!
//! * the **per-VM demand envelope** (share `1 − churn_share` of the
//!   swing), applied at trace generation, and
//! * the **population envelope** (share `churn_share`), realized by a
//!   diurnally-modulated arrival process with exponential lifetimes.
//!
//! The split is exact in peak:trough terms: demand ratio × population
//! ratio = the total Fig. 6 ratio (≈2.6× at the paper amplitude), so
//! total offered load keeps the same swing regardless of the knob.
//!
//! Because an M/M/∞-like population low-pass-filters its arrival rate
//! (a VM that arrived hours ago is still here), driving arrivals with
//! the desired *population* envelope would under-shoot the swing and
//! lag the peak. [`OpenSystemSpec::arrival_process`] pre-compensates
//! analytically (amplitude ×√(1+(ωτ)²), peak advanced by atan(ωτ)/ω)
//! and [`OpenSystemSpec::calibrated_process`] closes the loop with one
//! [`RateEstimate`]-measured correction round on a trial stream.

use crate::arrivals::{ArrivalEvent, ArrivalProcess, RateEstimate};
use crate::diurnal::DiurnalEnvelope;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seconds in one diurnal period.
const DAY_SECS: f64 = 24.0 * 3600.0;

/// Fixed diurnal amplitude of the churn pool's own population envelope.
/// The pool is sized so that this amplitude carries the whole target
/// population swing (`a_p = pool_fraction × CHURN_POOL_AMPLITUDE`);
/// the rest of the population is *resident* (runs to the end of the
/// simulation), matching the long-running PlanetLab services of §III.
/// 0.7 leaves headroom below the 0.95 clamp once the M/M/∞
/// pre-compensation gain is applied at the 2-hour paper lifetime.
const CHURN_POOL_AMPLITUDE: f64 = 0.7;

/// Seed salts: every stream the spec draws is derived from the caller's
/// seed XOR a distinct constant, so streams never alias each other.
const SALT_TRIAL: u64 = 0x5EED_CA1B;
const SALT_LIFETIMES: u64 = 0x11FE_71E5;
const SALT_INITIAL: u64 = 0x0C_EA11;
const SALT_EXTRAS: u64 = 0xF1A5_4C0D;

/// Service class of an open-system arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnClass {
    /// Ordinary interactive VM from the base churn stream.
    Standard,
    /// Member of a batch cohort (fixed lifetime, arrives in a wave).
    Batch,
    /// Spot / preemptible VM the consolidation policy may evict.
    Spot,
}

/// One open-system arrival: when the VM shows up, how long it runs and
/// what class it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnArrival {
    /// Arrival time, seconds from the start of the run.
    pub arrive_secs: f64,
    /// Lifetime in seconds (exponential for the base stream; fixed for
    /// batch cohorts and flash-crowd extras).
    pub lifetime_secs: f64,
    /// Service class.
    pub class: ChurnClass,
}

/// Workload archetypes layered on the base steady churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Archetype {
    /// Just the calibrated diurnal churn stream.
    Steady,
    /// Steady churn plus a short daily burst of extra arrivals.
    FlashCrowd {
        /// Hour of day the burst is centered on.
        peak_hour: f64,
        /// Burst window width in hours.
        width_hours: f64,
        /// Burst arrival rate as a multiple of the base rate.
        magnitude: f64,
        /// Fixed lifetime of burst VMs, seconds.
        lifetime_secs: f64,
    },
    /// Steady churn plus periodic same-instant cohorts of batch jobs.
    BatchCohorts {
        /// Hours between cohort launches.
        period_hours: f64,
        /// Cohort size as a fraction of the target population.
        cohort_frac: f64,
        /// Fixed batch-job lifetime, hours.
        lifetime_hours: f64,
    },
    /// Steady churn with a fraction of arrivals marked preemptible.
    Spot {
        /// Probability an arrival is a spot VM.
        fraction: f64,
    },
}

impl Archetype {
    /// Stable token used in cache keys and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            Archetype::Steady => "steady",
            Archetype::FlashCrowd { .. } => "flash",
            Archetype::BatchCohorts { .. } => "batch",
            Archetype::Spot { .. } => "spot",
        }
    }
}

/// Open-system workload spec: target population, lifetime, diurnal
/// split and archetype. See the module docs for the calibration story.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenSystemSpec {
    /// Daily-mean VM population the stream sustains.
    pub target_population: f64,
    /// Mean exponential VM lifetime, seconds.
    pub mean_lifetime_secs: f64,
    /// Share of the diurnal swing carried by population churn
    /// (0 = all in per-VM demand, 1 = all in churn). The knob of the
    /// Note-1 fix.
    pub churn_share: f64,
    /// The total offered-load envelope both mechanisms must compose to.
    pub total_envelope: DiurnalEnvelope,
    /// Extra structure layered on the base stream.
    pub archetype: Archetype,
}

impl OpenSystemSpec {
    /// The §III open-system scenario: 6,000 VMs on average with the
    /// fig12 2-hour mean lifetime, under the paper's Fig. 6 envelope.
    pub fn paper(churn_share: f64, archetype: Archetype) -> Self {
        Self {
            target_population: 6_000.0,
            mean_lifetime_secs: 2.0 * 3600.0,
            churn_share,
            total_envelope: DiurnalEnvelope::paper_default(),
            archetype,
        }
    }

    /// Panics when the spec is out of range (bad knob or dimensions).
    pub fn validate(&self) {
        assert!(
            self.target_population > 0.0 && self.target_population.is_finite(),
            "target_population must be positive, got {}",
            self.target_population
        );
        assert!(
            self.mean_lifetime_secs > 0.0 && self.mean_lifetime_secs.is_finite(),
            "mean_lifetime_secs must be positive, got {}",
            self.mean_lifetime_secs
        );
        assert!(
            (0.0..=1.0).contains(&self.churn_share),
            "churn_share must be in [0, 1], got {}",
            self.churn_share
        );
    }

    /// Splits the total amplitude into `(demand, population)` halves
    /// whose peak:trough ratios multiply back to the total ratio
    /// exactly: `a_d = A(1 − share)` and `a_p` solved from
    /// `R_p = R_total / R_d` with `R = (1+a)/(1−a)`.
    pub fn split_amplitudes(&self) -> (f64, f64) {
        let a = self.total_envelope.amplitude.clamp(0.0, 0.95);
        let a_d = a * (1.0 - self.churn_share);
        let r_total = (1.0 + a) / (1.0 - a);
        let r_d = (1.0 + a_d) / (1.0 - a_d);
        let r_p = r_total / r_d;
        let a_p = (r_p - 1.0) / (r_p + 1.0);
        (a_d, a_p)
    }

    /// Per-VM demand envelope (the reduced-amplitude trace modulation).
    pub fn demand_envelope(&self) -> DiurnalEnvelope {
        let (a_d, _) = self.split_amplitudes();
        DiurnalEnvelope {
            amplitude: a_d,
            peak_hour: self.total_envelope.peak_hour,
        }
    }

    /// Target *population* envelope the churn must realize.
    pub fn population_envelope(&self) -> DiurnalEnvelope {
        let (_, a_p) = self.split_amplitudes();
        DiurnalEnvelope {
            amplitude: a_p,
            peak_hour: self.total_envelope.peak_hour,
        }
    }

    /// Fraction of the daily-mean population that churns; the
    /// complement is resident. The pool is exactly as large as needed
    /// to carry the population swing at `CHURN_POOL_AMPLITUDE`, so a
    /// small `churn_share` does not force the whole data center
    /// through 2-hour lifetimes.
    pub fn churn_fraction(&self) -> f64 {
        let (_, a_p) = self.split_amplitudes();
        (a_p / CHURN_POOL_AMPLITUDE).clamp(0.05, 1.0)
    }

    /// VMs that are present from t = 0 and never depart.
    pub fn resident_population(&self) -> usize {
        (self.target_population * (1.0 - self.churn_fraction())).round() as usize
    }

    /// Daily-mean size of the churning pool.
    pub fn churn_pool_mean(&self) -> f64 {
        self.target_population - self.resident_population() as f64
    }

    /// Diurnal envelope of the churn pool alone: its amplitude is the
    /// total population amplitude scaled up by the inverse pool
    /// fraction, so pool swing × pool size = total swing.
    pub fn churn_pool_envelope(&self) -> DiurnalEnvelope {
        let (_, a_p) = self.split_amplitudes();
        let pool = self.churn_pool_mean();
        let amplitude = if pool <= 0.0 {
            0.0
        } else {
            (a_p * self.target_population / pool).min(0.95)
        };
        DiurnalEnvelope {
            amplitude,
            peak_hour: self.total_envelope.peak_hour,
        }
    }

    /// Mean arrival rate sustaining the churn pool (Little's law:
    /// M = λτ on the pool).
    pub fn base_rate_per_sec(&self) -> f64 {
        self.churn_pool_mean() / self.mean_lifetime_secs
    }

    /// Arrival process with the analytic M/M/∞ pre-compensation: the
    /// population responds to a sinusoidal arrival rate attenuated by
    /// `1/√(1+(ωτ)²)` and delayed by `atan(ωτ)/ω`, so the arrivals are
    /// driven that much harder and earlier.
    pub fn arrival_process(&self) -> ArrivalProcess {
        let pool_amp = self.churn_pool_envelope().amplitude;
        let omega = 2.0 * std::f64::consts::PI / DAY_SECS;
        let wt = omega * self.mean_lifetime_secs;
        let gain = (1.0 + wt * wt).sqrt();
        let lead_hours = wt.atan() / omega / 3600.0;
        ArrivalProcess {
            base_rate_per_sec: self.base_rate_per_sec(),
            envelope: DiurnalEnvelope {
                amplitude: (pool_amp * gain).min(0.95),
                peak_hour: (self.total_envelope.peak_hour - lead_hours).rem_euclid(24.0),
            },
            mean_lifetime_secs: self.mean_lifetime_secs,
        }
    }

    /// Churn-pool size at t = 0 (midnight, the envelope trough side).
    pub fn initial_churn_population(&self) -> usize {
        (self.churn_pool_mean() * self.churn_pool_envelope().at(0.0)).round() as usize
    }

    /// Total VM population at t = 0: the resident base plus the churn
    /// pool at its midnight level.
    pub fn initial_population(&self) -> usize {
        self.resident_population() + self.initial_churn_population()
    }

    /// Residual lifetimes of the initial *churn* population (the
    /// resident base never departs) — exponential with the stream mean
    /// (memorylessness makes the residual of an in-progress exponential
    /// lifetime exponential again).
    pub fn initial_lifetimes(&self, seed: u64) -> Vec<f64> {
        let process = self.arrival_process();
        let mut rng = StdRng::seed_from_u64(seed ^ SALT_INITIAL);
        (0..self.initial_churn_population())
            .map(|_| process.sample_lifetime(&mut rng))
            .collect()
    }

    /// Arrival process after one measured correction round: generate a
    /// trial stream (a seed derived from — but distinct from — the
    /// production seed), measure the realized population swing with
    /// [`RateEstimate`], and rescale the arrival amplitude by the
    /// desired/measured ratio. Catches what the sinusoidal small-signal
    /// analysis misses (thinning bias, the `max(0)` envelope clamp,
    /// finite-horizon truncation).
    pub fn calibrated_process(&self, duration_secs: f64, seed: u64) -> ArrivalProcess {
        self.validate();
        let mut process = self.arrival_process();
        let (_, a_p) = self.split_amplitudes();
        if a_p < 1e-9 || duration_secs < DAY_SECS {
            // Flat target or too short a horizon to observe a swing.
            return process;
        }
        let trial_seed = seed ^ SALT_TRIAL;
        let trial = Self::events_from_stream(
            &process.generate_arrivals(duration_secs, trial_seed),
            &process,
            trial_seed,
            &self.initial_lifetimes(trial_seed),
        );
        let est = RateEstimate::from_events(
            &trial,
            self.initial_population(),
            duration_secs,
            3600.0,
        );
        // Measure the swing over the final full day (transients from the
        // initial population have washed out after a few lifetimes).
        let windows = est.population.len();
        let last_day = windows.saturating_sub(24);
        let day = &est.population[last_day..];
        let hi = day.iter().copied().fold(f64::MIN, f64::max);
        let lo = day.iter().copied().fold(f64::MAX, f64::min);
        if hi > lo && lo > 0.0 {
            let measured = (hi - lo) / (hi + lo);
            if measured > 1e-6 {
                let corrected = process.envelope.amplitude * (a_p / measured);
                process.envelope.amplitude = corrected.clamp(0.0, 0.95);
            }
        }
        process
    }

    /// Turns an arrival-time stream into the `ArrivalEvent` list
    /// (arrival + implied departure per VM, plus the initial
    /// population's departures) that [`RateEstimate`] consumes.
    fn events_from_stream(
        arrivals: &[f64],
        process: &ArrivalProcess,
        seed: u64,
        initial_lifetimes: &[f64],
    ) -> Vec<ArrivalEvent> {
        let mut rng = StdRng::seed_from_u64(seed ^ SALT_LIFETIMES);
        let mut events = Vec::with_capacity(arrivals.len() * 2 + initial_lifetimes.len());
        for &t in arrivals {
            let life = process.sample_lifetime(&mut rng);
            events.push(ArrivalEvent::Arrival(t));
            events.push(ArrivalEvent::Departure(t + life));
        }
        for &life in initial_lifetimes {
            events.push(ArrivalEvent::Departure(life));
        }
        events
    }

    /// Event list for verifying a generated stream against the target
    /// envelope (see the calibration tests and EXPERIMENTS.md).
    pub fn verification_events(
        arrivals: &[ChurnArrival],
        initial_lifetimes: &[f64],
    ) -> Vec<ArrivalEvent> {
        let mut events = Vec::with_capacity(arrivals.len() * 2 + initial_lifetimes.len());
        for a in arrivals {
            events.push(ArrivalEvent::Arrival(a.arrive_secs));
            events.push(ArrivalEvent::Departure(a.arrive_secs + a.lifetime_secs));
        }
        for &life in initial_lifetimes {
            events.push(ArrivalEvent::Departure(life));
        }
        events
    }

    /// Generates the full open-system arrival stream over
    /// `[0, duration_secs)`: the calibrated base churn plus whatever
    /// the archetype layers on top, sorted by arrival time.
    pub fn generate(&self, duration_secs: f64, seed: u64) -> Vec<ChurnArrival> {
        self.validate();
        let process = self.calibrated_process(duration_secs, seed);
        let mut lifetime_rng = StdRng::seed_from_u64(seed ^ SALT_LIFETIMES);
        let mut extras_rng = StdRng::seed_from_u64(seed ^ SALT_EXTRAS);
        let mut out: Vec<ChurnArrival> = process
            .generate_arrivals(duration_secs, seed)
            .into_iter()
            .map(|t| ChurnArrival {
                arrive_secs: t,
                lifetime_secs: process.sample_lifetime(&mut lifetime_rng),
                class: ChurnClass::Standard,
            })
            .collect();
        match self.archetype {
            Archetype::Steady => {}
            Archetype::FlashCrowd {
                peak_hour,
                width_hours,
                magnitude,
                lifetime_secs,
            } => {
                // One burst per simulated day: `magnitude` times the
                // base rate, uniformly over the burst window.
                let width_secs = width_hours * 3600.0;
                let n_per_burst =
                    (magnitude * process.base_rate_per_sec * width_secs).round() as usize;
                let mut day_start = 0.0;
                while day_start < duration_secs {
                    let center = day_start + peak_hour * 3600.0;
                    let lo = center - width_secs / 2.0;
                    for _ in 0..n_per_burst {
                        let t = lo + extras_rng.gen_range(0.0..1.0) * width_secs;
                        if (0.0..duration_secs).contains(&t) {
                            out.push(ChurnArrival {
                                arrive_secs: t,
                                lifetime_secs,
                                class: ChurnClass::Standard,
                            });
                        }
                    }
                    day_start += DAY_SECS;
                }
            }
            Archetype::BatchCohorts {
                period_hours,
                cohort_frac,
                lifetime_hours,
            } => {
                let period_secs = (period_hours * 3600.0).max(1.0);
                let cohort = (cohort_frac * self.target_population).round() as usize;
                let lifetime = lifetime_hours * 3600.0;
                // First cohort launches one period in, not at t = 0 —
                // the initial population already covers the start.
                let mut t = period_secs;
                while t < duration_secs {
                    for _ in 0..cohort {
                        out.push(ChurnArrival {
                            arrive_secs: t,
                            lifetime_secs: lifetime,
                            class: ChurnClass::Batch,
                        });
                    }
                    t += period_secs;
                }
            }
            Archetype::Spot { fraction } => {
                let fraction = fraction.clamp(0.0, 1.0);
                for a in &mut out {
                    if fraction > 0.0 && extras_rng.gen_bool(fraction) {
                        a.class = ChurnClass::Spot;
                    }
                }
            }
        }
        // Stable sort keeps the intra-instant order (batch cohorts)
        // deterministic.
        out.sort_by(|a, b| a.arrive_secs.total_cmp(&b.arrive_secs));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_spec(share: f64, archetype: Archetype) -> OpenSystemSpec {
        OpenSystemSpec {
            target_population: 300.0,
            mean_lifetime_secs: 2.0 * 3600.0,
            churn_share: share,
            total_envelope: DiurnalEnvelope::paper_default(),
            archetype,
        }
    }

    #[test]
    fn split_preserves_total_peak_trough_ratio() {
        for share in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let spec = OpenSystemSpec::paper(share, Archetype::Steady);
            let (a_d, a_p) = spec.split_amplitudes();
            let r_d = (1.0 + a_d) / (1.0 - a_d);
            let r_p = (1.0 + a_p) / (1.0 - a_p);
            let r_total = spec.total_envelope.peak_to_trough();
            assert!(
                (r_d * r_p - r_total).abs() < 1e-9,
                "share {share}: {r_d} × {r_p} ≠ {r_total}"
            );
        }
    }

    #[test]
    fn split_endpoints_put_all_swing_on_one_side() {
        let all_demand = OpenSystemSpec::paper(0.0, Archetype::Steady);
        let (a_d, a_p) = all_demand.split_amplitudes();
        assert!((a_d - 0.45).abs() < 1e-12);
        assert!(a_p.abs() < 1e-12);
        let all_churn = OpenSystemSpec::paper(1.0, Archetype::Steady);
        let (a_d, a_p) = all_churn.split_amplitudes();
        assert!(a_d.abs() < 1e-12);
        assert!((a_p - 0.45).abs() < 1e-12);
    }

    #[test]
    fn arrival_envelope_is_precompensated() {
        let spec = OpenSystemSpec::paper(0.5, Archetype::Steady);
        let (_, a_p) = spec.split_amplitudes();
        let p = spec.arrival_process();
        // Amplitude boosted for the M/M/∞ attenuation…
        assert!(p.envelope.amplitude > a_p);
        // …and the peak advanced (arrivals lead the population).
        assert!(p.envelope.peak_hour < spec.total_envelope.peak_hour);
        // Little's law on the mean rate of the churn pool.
        let n = p.base_rate_per_sec * p.mean_lifetime_secs;
        assert!((n - spec.churn_pool_mean()).abs() < 1e-9);
    }

    #[test]
    fn churn_pool_is_sized_to_carry_the_population_swing() {
        for share in [0.1, 0.5, 1.0] {
            let spec = OpenSystemSpec::paper(share, Archetype::Steady);
            let (_, a_p) = spec.split_amplitudes();
            let resident = spec.resident_population() as f64;
            let pool = spec.churn_pool_mean();
            // Partition of the daily mean…
            assert!((resident + pool - spec.target_population).abs() < 1e-9);
            // …and pool swing × pool size reproduces the total swing.
            let realized = spec.churn_pool_envelope().amplitude * pool
                / spec.target_population;
            assert!(
                (realized - a_p).abs() < 1e-2,
                "share {share}: realized {realized} vs a_p {a_p}"
            );
        }
        // The all-demand endpoint keeps a minimal pool so the open
        // machinery still exercises arrivals.
        let flat = OpenSystemSpec::paper(0.0, Archetype::Steady);
        assert!(flat.churn_pool_mean() > 0.0);
    }

    #[test]
    fn generate_is_seed_deterministic() {
        let spec = small_spec(0.5, Archetype::Steady);
        let a = spec.generate(DAY_SECS, 7);
        let b = spec.generate(DAY_SECS, 7);
        assert_eq!(a, b);
        let c = spec.generate(DAY_SECS, 8);
        assert_ne!(a, c, "different seeds produced identical streams");
    }

    #[test]
    fn calibrated_population_swing_matches_target() {
        // The acceptance check of the tentpole's calibration: drive the
        // paper spec for 48 h and verify the realized population swing
        // matches the target envelope to within Poisson noise.
        let spec = OpenSystemSpec::paper(0.5, Archetype::Steady);
        let (_, a_p) = spec.split_amplitudes();
        let duration = 2.0 * DAY_SECS;
        let seed = 42;
        let arrivals = spec.generate(duration, seed);
        let events =
            OpenSystemSpec::verification_events(&arrivals, &spec.initial_lifetimes(seed));
        let est = RateEstimate::from_events(
            &events,
            spec.initial_population(),
            duration,
            3600.0,
        );
        let day = &est.population[24..];
        let hi = day.iter().copied().fold(f64::MIN, f64::max);
        let lo = day.iter().copied().fold(f64::MAX, f64::min);
        let measured = (hi - lo) / (hi + lo);
        assert!(
            (measured - a_p).abs() < 0.05,
            "population swing {measured:.3} vs target {a_p:.3}"
        );
        // Mean population near the target (within a few percent).
        let mean = day.iter().sum::<f64>() / day.len() as f64;
        let rel = (mean / spec.target_population - 1.0).abs();
        assert!(rel < 0.10, "mean population off by {rel:.3}");
        // Population peaks in the afternoon, not at night.
        let peak_w = 24 + day
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let peak_hour = (peak_w % 24) as f64;
        assert!(
            (10.0..=20.0).contains(&peak_hour),
            "population peaked at hour {peak_hour}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_window() {
        let spec = small_spec(
            0.5,
            Archetype::FlashCrowd {
                peak_hour: 20.0,
                width_hours: 1.0,
                magnitude: 6.0,
                lifetime_secs: 1800.0,
            },
        );
        let arrivals = spec.generate(DAY_SECS, 9);
        let count_in = |lo_h: f64, hi_h: f64| {
            arrivals
                .iter()
                .filter(|a| a.arrive_secs >= lo_h * 3600.0 && a.arrive_secs < hi_h * 3600.0)
                .count()
        };
        let burst = count_in(19.5, 20.5);
        let control = count_in(17.0, 18.0);
        assert!(
            burst > 3 * control,
            "burst window {burst} not above control hour {control}"
        );
    }

    #[test]
    fn batch_cohorts_arrive_in_waves_with_fixed_lifetime() {
        let spec = small_spec(
            0.5,
            Archetype::BatchCohorts {
                period_hours: 6.0,
                cohort_frac: 0.1,
                lifetime_hours: 2.0,
            },
        );
        let arrivals = spec.generate(DAY_SECS, 10);
        let batch: Vec<_> = arrivals
            .iter()
            .filter(|a| a.class == ChurnClass::Batch)
            .collect();
        // Cohorts at 6 h, 12 h, 18 h — 3 waves of 30 VMs.
        assert_eq!(batch.len(), 3 * 30);
        for b in &batch {
            assert_eq!(b.lifetime_secs, 2.0 * 3600.0);
            let h = b.arrive_secs / 3600.0;
            assert!((h / 6.0 - (h / 6.0).round()).abs() < 1e-9, "wave at {h}");
        }
    }

    #[test]
    fn spot_fraction_is_respected() {
        let spec = small_spec(0.5, Archetype::Spot { fraction: 0.3 });
        let arrivals = spec.generate(2.0 * DAY_SECS, 11);
        let spot = arrivals
            .iter()
            .filter(|a| a.class == ChurnClass::Spot)
            .count() as f64;
        let frac = spot / arrivals.len() as f64;
        assert!(
            (frac - 0.3).abs() < 0.05,
            "spot fraction {frac:.3} far from 0.3"
        );
    }

    #[test]
    fn initial_population_sits_on_the_envelope() {
        let spec = OpenSystemSpec::paper(1.0, Archetype::Steady);
        // At midnight the paper envelope is well below its mean.
        let n = spec.initial_population() as f64;
        assert!(n < spec.target_population);
        assert!(n > 0.3 * spec.target_population);
        assert_eq!(
            spec.initial_lifetimes(3).len(),
            spec.initial_churn_population()
        );
        assert_eq!(
            spec.initial_population(),
            spec.resident_population() + spec.initial_churn_population()
        );
    }

    proptest! {
        /// Satellite: arrival/lifetime streams are seed-stable, sorted,
        /// in range and positive, for any share/seed/archetype choice.
        #[test]
        fn prop_generate_streams_are_stable_and_well_formed(
            seed in 0u64..1_000,
            share_pct in 0u32..=100,
            arch_idx in 0usize..4,
        ) {
            let archetype = [
                Archetype::Steady,
                Archetype::FlashCrowd {
                    peak_hour: 20.0,
                    width_hours: 1.0,
                    magnitude: 4.0,
                    lifetime_secs: 1800.0,
                },
                Archetype::BatchCohorts {
                    period_hours: 6.0,
                    cohort_frac: 0.05,
                    lifetime_hours: 2.0,
                },
                Archetype::Spot { fraction: 0.25 },
            ][arch_idx];
            let spec = OpenSystemSpec {
                target_population: 50.0,
                mean_lifetime_secs: 3600.0,
                churn_share: share_pct as f64 / 100.0,
                total_envelope: DiurnalEnvelope::paper_default(),
                archetype,
            };
            let duration = DAY_SECS / 2.0;
            let a = spec.generate(duration, seed);
            let b = spec.generate(duration, seed);
            prop_assert_eq!(&a, &b);
            for w in a.windows(2) {
                prop_assert!(w[0].arrive_secs <= w[1].arrive_secs);
            }
            for x in &a {
                prop_assert!((0.0..duration).contains(&x.arrive_secs));
                prop_assert!(x.lifetime_secs > 0.0);
                if !matches!(archetype, Archetype::Spot { .. }) {
                    prop_assert!(x.class != ChurnClass::Spot);
                }
            }
        }
    }
}
