//! Online baseline policies behind the [`dcsim::Policy`] interface.

use dcsim::{
    ClusterView, MigrationKind, MigrationRequest, PlaceOutcome, PlacementKind, PlacementRequest,
    Policy, ServerId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks the feasible powered server with the *tightest* residual
/// capacity (classic Best Fit), preferring already-started servers so
/// empty machines can hibernate. Migration control is a centralized,
/// deterministic double-threshold rule in the style of VMware DPM /
/// Beloglazov & Buyya: every monitor tick outside `[tl, th]` fires a
/// migration — no Bernoulli smoothing, which is exactly the
/// behavioural contrast the paper draws with ecoCloud.
pub struct BestFitPolicy {
    /// Utilization cap for placements.
    pub ta: f64,
    /// Lower migration threshold (server drain).
    pub tl: f64,
    /// Upper migration threshold (overload relief).
    pub th: f64,
    /// Enables the migration controller (disable to get pure BFD
    /// placement).
    pub migrations: bool,
}

impl BestFitPolicy {
    /// Thresholds matched to the paper's ecoCloud parameterization so
    /// comparisons vary only the *mechanism*, not the operating point.
    pub fn paper() -> Self {
        Self {
            ta: 0.9,
            tl: 0.5,
            th: 0.95,
            migrations: true,
        }
    }

    fn best_fit(
        &self,
        view: &ClusterView<'_>,
        demand_mhz: f64,
        ram_mb: f64,
        ta: f64,
        exclude: Option<ServerId>,
    ) -> Option<ServerId> {
        let mut best: Option<(ServerId, f64)> = None;
        for (sid, s) in view.powered() {
            if Some(sid) == exclude {
                continue;
            }
            let cap = s.capacity_mhz();
            let after = s.used_mhz() + s.reserved_mhz() + demand_mhz;
            let ram_ok = ram_mb <= 0.0
                || s.used_ram_mb + s.reserved_ram_mb + ram_mb <= 0.9 * s.spec.ram_mb + 1e-9;
            if after <= ta * cap + 1e-9 && ram_ok {
                let residual = ta * cap - after;
                let started = !s.vms.is_empty() || s.reserved_mhz() > 0.0;
                let key = residual + if started { 0.0 } else { 1e12 };
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((sid, key));
                }
            }
        }
        best.map(|(sid, _)| sid)
    }
}

impl Policy for BestFitPolicy {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
        // For high migrations, require the destination to be strictly
        // less loaded than the source (mirrors ecoCloud's
        // anti-ping-pong rule so the baselines do not thrash).
        let ta = match req.kind {
            PlacementKind::MigrationHigh { source_utilization } => {
                (0.9 * source_utilization).min(self.ta)
            }
            _ => self.ta,
        };
        if let Some(sid) = self.best_fit(view, req.demand_mhz, req.ram_mb, ta, req.exclude) {
            return PlaceOutcome::Place(sid);
        }
        if req.kind == PlacementKind::MigrationLow {
            return PlaceOutcome::Reject;
        }
        // Wake the smallest hibernated server that fits the VM (least
        // added idle power).
        let mut best: Option<(ServerId, f64)> = None;
        for (sid, s) in view.hibernated() {
            let cap = s.capacity_mhz();
            if req.demand_mhz <= self.ta * cap && best.is_none_or(|(_, c)| cap < c) {
                best = Some((sid, cap));
            }
        }
        match best {
            Some((sid, _)) => PlaceOutcome::WakeThenPlace(sid),
            None => PlaceOutcome::Reject,
        }
    }

    fn monitor(
        &mut self,
        view: &ClusterView<'_>,
        sid: ServerId,
        _now_secs: f64,
    ) -> Option<MigrationRequest> {
        if !self.migrations {
            return None;
        }
        let s = view.server(sid);
        if s.vms.is_empty() {
            return None;
        }
        let cap = s.capacity_mhz();
        let u = s.used_mhz() / cap;
        if u > self.th {
            // Minimization-of-migrations choice (Beloglazov's MM): the
            // smallest VM that brings the server back under T_h; the
            // largest VM when none is big enough alone.
            let need = u - self.th;
            let enough = view
                .migratable_vms(sid)
                .filter(|&(_, d)| d / cap > need)
                .min_by(|a, b| a.1.total_cmp(&b.1));
            let vm = match enough {
                Some((vm, _)) => vm,
                None => {
                    view.migratable_vms(sid)
                        .max_by(|a, b| a.1.total_cmp(&b.1))?
                        .0
                }
            };
            return Some(MigrationRequest {
                vm,
                kind: MigrationKind::High,
            });
        }
        if u < self.tl {
            // Drain: move the largest VM first (fewest total moves).
            let vm = view
                .migratable_vms(sid)
                .max_by(|a, b| a.1.total_cmp(&b.1))?
                .0;
            return Some(MigrationRequest {
                vm,
                kind: MigrationKind::Low,
            });
        }
        None
    }
}

/// First Fit: the lowest-index feasible powered server.
pub struct FirstFitPolicy {
    /// Utilization cap for placements.
    pub ta: f64,
}

impl FirstFitPolicy {
    /// Cap matched to the paper's `T_a`.
    pub fn paper() -> Self {
        Self { ta: 0.9 }
    }
}

impl Policy for FirstFitPolicy {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
        for (sid, s) in view.powered() {
            if Some(sid) == req.exclude {
                continue;
            }
            let after = s.used_mhz() + s.reserved_mhz() + req.demand_mhz;
            let ram_ok = req.ram_mb <= 0.0
                || s.used_ram_mb + s.reserved_ram_mb + req.ram_mb <= 0.9 * s.spec.ram_mb + 1e-9;
            if after <= self.ta * s.capacity_mhz() + 1e-9 && ram_ok {
                return PlaceOutcome::Place(sid);
            }
        }
        if req.kind == PlacementKind::MigrationLow {
            return PlaceOutcome::Reject;
        }
        match view
            .hibernated()
            .find(|(_, s)| req.demand_mhz <= self.ta * s.capacity_mhz())
        {
            Some((sid, _)) => PlaceOutcome::WakeThenPlace(sid),
            None => PlaceOutcome::Reject,
        }
    }
}

/// Uniform random placement among feasible powered servers — the
/// no-consolidation strawman that spreads load and keeps every server
/// busy.
pub struct RandomPolicy {
    /// Utilization cap for placements.
    pub ta: f64,
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates the policy with the given cap and seed.
    pub fn new(ta: f64, seed: u64) -> Self {
        Self {
            ta,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
        let feasible: Vec<ServerId> = view
            .powered()
            .filter(|&(sid, s)| {
                Some(sid) != req.exclude
                    && s.used_mhz() + s.reserved_mhz() + req.demand_mhz
                        <= self.ta * s.capacity_mhz() + 1e-9
                    && (req.ram_mb <= 0.0
                        || s.used_ram_mb + s.reserved_ram_mb + req.ram_mb
                            <= 0.9 * s.spec.ram_mb + 1e-9)
            })
            .map(|(sid, _)| sid)
            .collect();
        if !feasible.is_empty() {
            return PlaceOutcome::Place(feasible[self.rng.gen_range(0..feasible.len())]);
        }
        if req.kind == PlacementKind::MigrationLow {
            return PlaceOutcome::Reject;
        }
        let hibernated: Vec<ServerId> = view
            .hibernated()
            .filter(|(_, s)| req.demand_mhz <= self.ta * s.capacity_mhz())
            .map(|(sid, _)| sid)
            .collect();
        if hibernated.is_empty() {
            PlaceOutcome::Reject
        } else {
            PlaceOutcome::WakeThenPlace(hibernated[self.rng.gen_range(0..hibernated.len())])
        }
    }

    fn checkpoint_state(&self) -> Vec<u64> {
        vec![self.rng.state_u64()]
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        match state {
            [rng_word] => {
                self.rng = StdRng::from_state_u64(*rng_word);
                Ok(())
            }
            _ => Err(format!(
                "random policy expects 1 state word, checkpoint carries {}",
                state.len()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::vm::VmState;
    use dcsim::{Cluster, Fleet, ServerState, Vm, VmId};

    fn cluster_with_utils(utils: &[f64]) -> Cluster {
        let fleet = Fleet::uniform(utils.len(), 6);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for (i, &u) in utils.iter().enumerate() {
            if u > 0.0 {
                let vm = VmId(c.vms.len() as u32);
                c.vms.push(Vm {
                    id: vm,
                    trace_idx: 0,
                    demand_mhz: u * 12_000.0,
                    ram_mb: 0.0,
                    state: VmState::Departed,
                    arrived_secs: 0.0,
                    priority: Default::default(),
                    migration_seq: 0,
                    lifetime_secs: None,
                    started: false,
                    evictable: false,
                });
                c.attach(vm, ServerId(i as u32), 0.0);
            }
        }
        c
    }

    fn req(demand_mhz: f64) -> PlacementRequest {
        PlacementRequest {
            demand_mhz,
            ram_mb: 0.0,
            kind: PlacementKind::NewVm,
            exclude: None,
            now_secs: 0.0,
        }
    }

    #[test]
    fn best_fit_picks_tightest() {
        let c = cluster_with_utils(&[0.2, 0.7, 0.5]);
        let mut p = BestFitPolicy::paper();
        // 0.1 more fits everywhere; tightest residual is server 1
        // (0.7 + 0.1 → residual 0.1).
        assert_eq!(
            p.place(&c.view(), &req(0.1 * 12_000.0)),
            PlaceOutcome::Place(ServerId(1))
        );
    }

    #[test]
    fn best_fit_prefers_started_servers() {
        let c = cluster_with_utils(&[0.0, 0.1]);
        let mut p = BestFitPolicy::paper();
        // The empty server would be a tighter... no: residuals are
        // 0.9 vs 0.8 — and empties are penalized anyway.
        assert_eq!(
            p.place(&c.view(), &req(0.1 * 12_000.0)),
            PlaceOutcome::Place(ServerId(1))
        );
    }

    #[test]
    fn best_fit_wakes_smallest_fitting() {
        let fleet = Fleet::thirds(3); // 4, 6, 8 cores
        let mut c = Cluster::new(&fleet, ServerState::Hibernated);
        c.set_server_state(ServerId(2), ServerState::Active);
        // Fill the active 8-core server to the cap.
        let vm = VmId(0);
        c.vms.push(Vm {
            id: vm,
            trace_idx: 0,
            demand_mhz: 0.9 * 16_000.0,
            ram_mb: 0.0,
            state: VmState::Departed,
            arrived_secs: 0.0,
            priority: Default::default(),
            migration_seq: 0,
            lifetime_secs: None,
            started: false,
            evictable: false,
        });
        c.attach(vm, ServerId(2), 0.0);
        let mut p = BestFitPolicy::paper();
        // Needs a wake: the smallest fitting hibernated server is the
        // 4-core one.
        assert_eq!(
            p.place(&c.view(), &req(1_000.0)),
            PlaceOutcome::WakeThenPlace(ServerId(0))
        );
    }

    #[test]
    fn best_fit_monitor_fires_deterministically() {
        let c = cluster_with_utils(&[0.97]);
        let mut p = BestFitPolicy::paper();
        let r = p.monitor(&c.view(), ServerId(0), 0.0).expect("no request");
        assert_eq!(r.kind, MigrationKind::High);
        // And below tl:
        let c2 = cluster_with_utils(&[0.3]);
        let r2 = p.monitor(&c2.view(), ServerId(0), 0.0).expect("no request");
        assert_eq!(r2.kind, MigrationKind::Low);
        // Silent in the dead zone.
        let c3 = cluster_with_utils(&[0.7]);
        assert!(p.monitor(&c3.view(), ServerId(0), 0.0).is_none());
    }

    #[test]
    fn first_fit_takes_lowest_index() {
        let c = cluster_with_utils(&[0.5, 0.2]);
        let mut p = FirstFitPolicy::paper();
        assert_eq!(
            p.place(&c.view(), &req(0.1 * 12_000.0)),
            PlaceOutcome::Place(ServerId(0))
        );
    }

    #[test]
    fn low_migration_never_wakes_in_baselines() {
        let mut c = cluster_with_utils(&[0.9]);
        c.set_server_state(ServerId(0), ServerState::Hibernated); // nothing powered
        let low = PlacementRequest {
            demand_mhz: 100.0,
            ram_mb: 0.0,
            kind: PlacementKind::MigrationLow,
            exclude: None,
            now_secs: 0.0,
        };
        assert_eq!(
            BestFitPolicy::paper().place(&c.view(), &low),
            PlaceOutcome::Reject
        );
        assert_eq!(
            FirstFitPolicy::paper().place(&c.view(), &low),
            PlaceOutcome::Reject
        );
        assert_eq!(
            RandomPolicy::new(0.9, 1).place(&c.view(), &low),
            PlaceOutcome::Reject
        );
    }

    #[test]
    fn random_policy_spreads() {
        let c = cluster_with_utils(&[0.1, 0.1, 0.1, 0.1]);
        let mut p = RandomPolicy::new(0.9, 7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            if let PlaceOutcome::Place(sid) = p.place(&c.view(), &req(100.0)) {
                seen.insert(sid.0);
            }
        }
        assert_eq!(seen.len(), 4, "random placement failed to spread");
    }

    #[test]
    fn anti_ping_pong_in_best_fit() {
        // Source at 0.96, candidate at 0.88: effective cap is
        // 0.9·0.96 = 0.864 < 0.88 → no feasible destination, and the
        // only hibernated fallback may wake.
        let c = cluster_with_utils(&[0.96, 0.88]);
        let mut p = BestFitPolicy::paper();
        let r = PlacementRequest {
            demand_mhz: 100.0,
            ram_mb: 0.0,
            kind: PlacementKind::MigrationHigh {
                source_utilization: 0.96,
            },
            exclude: Some(ServerId(0)),
            now_secs: 0.0,
        };
        assert_eq!(p.place(&c.view(), &r), PlaceOutcome::Reject);
    }
}
