//! Theoretical bounds for a demand snapshot.
//!
//! The paper's abstract claims ecoCloud's "efficiency is very close to
//! the theoretical minimum". For a total demand `D` and a utilization
//! cap `T_a`, the minimum number of active servers is obtained by
//! filling the largest machines first — a lower bound that ignores
//! item granularity, so every real packing needs at least this many
//! servers.

/// Minimum number of servers whose combined usable capacity
/// (`T_a × capacity`) covers `total_demand_mhz`, filling the largest
/// servers first. Returns `capacities.len() + 1` when even the whole
/// fleet cannot cover the demand (an infeasible snapshot).
pub fn min_active_servers(capacities_mhz: &[f64], total_demand_mhz: f64, ta: f64) -> usize {
    assert!(ta > 0.0 && ta <= 1.0, "T_a must be in (0,1]");
    assert!(total_demand_mhz >= 0.0, "demand must be non-negative");
    if total_demand_mhz == 0.0 {
        return 0;
    }
    let mut caps: Vec<f64> = capacities_mhz.to_vec();
    caps.sort_by(|a, b| b.total_cmp(a));
    let mut covered = 0.0;
    for (i, c) in caps.iter().enumerate() {
        covered += ta * c;
        if covered >= total_demand_mhz - 1e-9 {
            return i + 1;
        }
    }
    caps.len() + 1
}

/// Minimum power to serve `total_demand_mhz`: activate servers in
/// increasing order of *energy per usable MHz* and charge each one its
/// idle power plus the dynamic power of the load it takes. A fluid
/// lower bound — real placements can only consume more.
pub fn min_power_w(
    servers: &[(f64, f64, f64)], // (capacity_mhz, idle_w, max_w)
    total_demand_mhz: f64,
    ta: f64,
) -> f64 {
    assert!(ta > 0.0 && ta <= 1.0);
    if total_demand_mhz <= 0.0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..servers.len()).collect();
    // Cost of a fully loaded (to T_a) server per usable MHz.
    let per_mhz = |i: usize| {
        let (cap, idle, max) = servers[i];
        (idle + (max - idle) * ta) / (ta * cap)
    };
    order.sort_by(|&a, &b| per_mhz(a).total_cmp(&per_mhz(b)));
    let mut remaining = total_demand_mhz;
    let mut power = 0.0;
    for i in order {
        if remaining <= 0.0 {
            break;
        }
        let (cap, idle, max) = servers[i];
        let take = remaining.min(ta * cap);
        power += idle + (max - idle) * (take / cap);
        remaining -= take;
    }
    assert!(
        remaining <= 1e-6,
        "fleet cannot serve the demand ({remaining} MHz left)"
    );
    power
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_demand_needs_nothing() {
        assert_eq!(min_active_servers(&[1000.0; 5], 0.0, 0.9), 0);
        assert_eq!(min_power_w(&[(1000.0, 70.0, 100.0); 5], 0.0, 0.9), 0.0);
    }

    #[test]
    fn fills_largest_first() {
        // Capacities 8k, 12k, 16k; demand 20k at T_a = 1:
        // 16k + 12k ≥ 20k → 2 servers.
        let caps = [8_000.0, 12_000.0, 16_000.0];
        assert_eq!(min_active_servers(&caps, 20_000.0, 1.0), 2);
        // At T_a = 0.9, usable 14.4k + 10.8k = 25.2k ≥ 20k → still 2.
        assert_eq!(min_active_servers(&caps, 20_000.0, 0.9), 2);
        // Demand 26k at 0.9 needs all three.
        assert_eq!(min_active_servers(&caps, 26_000.0, 0.9), 3);
    }

    #[test]
    fn infeasible_demand_signalled() {
        let caps = [1_000.0, 1_000.0];
        assert_eq!(min_active_servers(&caps, 5_000.0, 0.9), 3);
    }

    #[test]
    fn exact_boundary_counts_once() {
        let caps = [1_000.0; 4];
        // Demand exactly one usable server.
        assert_eq!(min_active_servers(&caps, 900.0, 0.9), 1);
        assert_eq!(min_active_servers(&caps, 900.0 + 1e-12, 0.9), 1);
    }

    #[test]
    fn min_power_prefers_efficient_servers() {
        // Server A: 1000 MHz, 100 W flat (inefficient).
        // Server B: 1000 MHz, 10..20 W (efficient).
        let servers = [(1000.0, 100.0, 100.0), (1000.0, 10.0, 20.0)];
        let p = min_power_w(&servers, 500.0, 1.0);
        // All 500 MHz on B: 10 + 10·0.5 = 15 W.
        assert!((p - 15.0).abs() < 1e-9);
    }

    #[test]
    fn min_power_spills_over() {
        let servers = [(1000.0, 10.0, 20.0), (1000.0, 10.0, 20.0)];
        let p = min_power_w(&servers, 1500.0, 1.0);
        // 10+10 idle + dynamic 10·1.0 + 10·0.5 = 35 W.
        assert!((p - 35.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot serve")]
    fn min_power_rejects_infeasible() {
        min_power_w(&[(100.0, 1.0, 2.0)], 1_000.0, 0.9);
    }
}
