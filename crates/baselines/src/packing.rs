//! Offline bin-packing heuristics over a demand snapshot.
//!
//! Best Fit Decreasing is the algorithm family the paper's related
//! work (§V) singles out as the strongest practical comparator
//! (Beloglazov & Buyya use a "Modified Best Fit Decreasing"). These
//! functions pack one instantaneous snapshot of VM demands onto a
//! server fleet and are used by the claims table to quantify how close
//! ecoCloud's online consolidation gets to an offline packing.

/// Result of packing a snapshot.
#[derive(Debug, Clone)]
pub struct Packing {
    /// `assignment[i]` = server index of VM `i`, or `None` if the VM
    /// did not fit anywhere.
    pub assignment: Vec<Option<usize>>,
    /// Residual load per server, MHz.
    pub load_mhz: Vec<f64>,
    /// Number of servers with at least one VM.
    pub servers_used: usize,
    /// Number of VMs that did not fit.
    pub unplaced: usize,
}

fn pack_with<F>(vm_demands_mhz: &[f64], server_caps_mhz: &[f64], ta: f64, mut choose: F) -> Packing
where
    F: FnMut(&[f64], &[f64], f64, f64) -> Option<usize>,
{
    assert!(ta > 0.0 && ta <= 1.0, "T_a must be in (0,1]");
    let mut order: Vec<usize> = (0..vm_demands_mhz.len()).collect();
    // "Decreasing": place the biggest items first.
    order.sort_by(|&a, &b| vm_demands_mhz[b].total_cmp(&vm_demands_mhz[a]));
    let mut load = vec![0.0f64; server_caps_mhz.len()];
    let mut assignment = vec![None; vm_demands_mhz.len()];
    let mut unplaced = 0;
    for vm in order {
        let d = vm_demands_mhz[vm];
        match choose(&load, server_caps_mhz, ta, d) {
            Some(s) => {
                load[s] += d;
                assignment[vm] = Some(s);
            }
            None => unplaced += 1,
        }
    }
    let servers_used = load.iter().filter(|&&l| l > 0.0).count();
    Packing {
        assignment,
        load_mhz: load,
        servers_used,
        unplaced,
    }
}

/// Best Fit Decreasing: each VM goes to the feasible server whose
/// *residual usable capacity* after placement is smallest (tightest
/// fit), packing servers as full as possible.
pub fn best_fit_decreasing(vm_demands_mhz: &[f64], server_caps_mhz: &[f64], ta: f64) -> Packing {
    pack_with(vm_demands_mhz, server_caps_mhz, ta, |load, caps, ta, d| {
        let mut best: Option<(usize, f64)> = None;
        for (s, (&l, &c)) in load.iter().zip(caps).enumerate() {
            let residual = ta * c - l - d;
            if residual >= -1e-9 {
                // Prefer already-started bins with the tightest fit.
                let started = l > 0.0;
                let key = residual + if started { 0.0 } else { 1e12 };
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((s, key));
                }
            }
        }
        best.map(|(s, _)| s)
    })
}

/// First Fit Decreasing: each VM goes to the first (lowest-index)
/// feasible server.
pub fn first_fit_decreasing(vm_demands_mhz: &[f64], server_caps_mhz: &[f64], ta: f64) -> Packing {
    pack_with(vm_demands_mhz, server_caps_mhz, ta, |load, caps, ta, d| {
        load.iter()
            .zip(caps)
            .position(|(&l, &c)| l + d <= ta * c + 1e-9)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn packs_perfect_fit() {
        // Four 0.5-bins into two unit servers.
        let p = best_fit_decreasing(&[0.5, 0.5, 0.5, 0.5], &[1.0, 1.0, 1.0], 1.0);
        assert_eq!(p.servers_used, 2);
        assert_eq!(p.unplaced, 0);
    }

    #[test]
    fn respects_threshold() {
        let p = best_fit_decreasing(&[0.5, 0.5], &[1.0], 0.9);
        assert_eq!(p.unplaced, 1, "two halves cannot share a 0.9 cap");
    }

    #[test]
    fn bfd_no_worse_than_ffd_here() {
        // Classic case where FFD burns an extra bin relative to BFD’s
        // tight fits is hard to build with identical bins; just check
        // both produce feasible packings of the same items.
        let demands = [0.7, 0.6, 0.4, 0.3, 0.2, 0.2];
        let caps = [1.0; 6];
        for p in [
            best_fit_decreasing(&demands, &caps, 1.0),
            first_fit_decreasing(&demands, &caps, 1.0),
        ] {
            assert_eq!(p.unplaced, 0);
            for (s, &l) in p.load_mhz.iter().enumerate() {
                assert!(l <= 1.0 + 1e-9, "server {s} overfull: {l}");
            }
            assert!(p.servers_used <= 3, "used {} bins", p.servers_used);
        }
    }

    #[test]
    fn heterogeneous_servers() {
        let p = best_fit_decreasing(&[900.0, 500.0], &[1_000.0, 2_000.0], 0.9);
        assert_eq!(p.unplaced, 0);
        // 900 goes to the 1000-cap server (tightest: residual 0) —
        // wait: 0.9·1000 = 900 exactly fits; 500 then must go to the
        // big server.
        assert_eq!(p.assignment[0], Some(0));
        assert_eq!(p.assignment[1], Some(1));
    }

    #[test]
    fn empty_inputs() {
        let p = best_fit_decreasing(&[], &[1.0], 0.9);
        assert_eq!(p.servers_used, 0);
        assert_eq!(p.unplaced, 0);
        let p = first_fit_decreasing(&[1.0], &[], 0.9);
        assert_eq!(p.unplaced, 1);
    }

    proptest! {
        #[test]
        fn prop_packings_are_feasible(
            demands in proptest::collection::vec(1.0f64..4000.0, 0..60),
            n_servers in 1usize..30,
        ) {
            let caps = vec![12_000.0; n_servers];
            for p in [
                best_fit_decreasing(&demands, &caps, 0.9),
                first_fit_decreasing(&demands, &caps, 0.9),
            ] {
                let placed = p.assignment.iter().filter(|a| a.is_some()).count();
                prop_assert_eq!(placed + p.unplaced, demands.len());
                for (s, &l) in p.load_mhz.iter().enumerate() {
                    prop_assert!(l <= 0.9 * caps[s] + 1e-6, "server {} overfull", s);
                }
                // Load conservation.
                let total_placed: f64 = p.assignment.iter().enumerate()
                    .filter_map(|(i, a)| a.map(|_| demands[i]))
                    .sum();
                let total_load: f64 = p.load_mhz.iter().sum();
                prop_assert!((total_placed - total_load).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_bfd_meets_lower_bound(
            demands in proptest::collection::vec(100.0f64..3000.0, 1..50),
        ) {
            let caps = vec![12_000.0; 50];
            let p = best_fit_decreasing(&demands, &caps, 0.9);
            prop_assert_eq!(p.unplaced, 0);
            let total: f64 = demands.iter().sum();
            let lower = (total / (0.9 * 12_000.0)).ceil() as usize;
            prop_assert!(p.servers_used >= lower);
            // BFD is within the classic 11/9·OPT + 1 guarantee of the
            // trivial lower bound.
            prop_assert!(p.servers_used as f64 <= (11.0 / 9.0) * lower as f64 + 1.0);
        }
    }
}
