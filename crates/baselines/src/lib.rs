//! Centralized baseline policies and theoretical bounds.
//!
//! The paper positions ecoCloud against "one of the best centralized
//! algorithms devised so far" — the Best Fit Decreasing family of
//! consolidation heuristics (Beloglazov & Buyya, CCGrid 2010) — and
//! against the VMware Distributed Power Management style of
//! double-threshold migration control (§V related work). This crate
//! implements those comparators behind the same [`dcsim::Policy`]
//! interface the ecoCloud policy uses, plus the theoretical minimum
//! bound ("efficiency is very close to the theoretical minimum", §I):
//!
//! * [`BestFitPolicy`] — online Best Fit placement (tightest fitting
//!   server under the utilization cap), with a centralized
//!   double-threshold migration controller.
//! * [`FirstFitPolicy`] — online First Fit placement (lowest-index
//!   fitting server).
//! * [`RandomPolicy`] — uniform random placement among fitting servers
//!   (the no-consolidation lower bound).
//! * [`packing`] — offline Best/First Fit Decreasing bin packing for
//!   one demand snapshot.
//! * [`bounds`] — theoretical minimum number of active servers and
//!   minimum power for a demand snapshot.

pub mod bounds;
pub mod packing;
pub mod policies;

pub use bounds::{min_active_servers, min_power_w};
pub use packing::{best_fit_decreasing, first_fit_decreasing, Packing};
pub use policies::{BestFitPolicy, FirstFitPolicy, RandomPolicy};
