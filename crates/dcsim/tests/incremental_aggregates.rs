//! Property tests for the incremental cluster accounting: after any
//! random sequence of attach / detach / demand-update / wake /
//! hibernate operations, the O(1) cached aggregates must equal their
//! O(N) recomputed oracles, and the indexed powered/hibernated views
//! must yield exactly the servers a full filter scan finds, in the
//! same order.

use dcsim::{Cluster, Fleet, ServerId, ServerState, Vm, VmId, VmState};
use proptest::prelude::*;

/// One mutation drawn by the generator, indexing into whatever servers
/// and VMs exist at apply time (modulo-mapped so every draw is valid).
#[derive(Debug, Clone, Copy)]
enum Op {
    Spawn {
        server: u32,
        demand_mhz: f64,
        ram_mb: f64,
    },
    Despawn {
        vm: u32,
    },
    UpdateDemand {
        vm: u32,
        demand_mhz: f64,
    },
    Wake {
        server: u32,
    },
    Hibernate {
        server: u32,
    },
}

fn apply(cluster: &mut Cluster, hosted: &mut Vec<VmId>, now: f64, op: Op) {
    let n = cluster.n_servers() as u32;
    match op {
        Op::Spawn {
            server,
            demand_mhz,
            ram_mb,
        } => {
            let sid = ServerId(server % n);
            if !cluster.servers[sid.index()].is_powered() {
                return; // placement on a dark server is illegal
            }
            let vm = VmId(cluster.vms.len() as u32);
            cluster.vms.push(Vm {
                id: vm,
                trace_idx: 0,
                demand_mhz,
                ram_mb,
                state: VmState::Departed, // set by attach
                arrived_secs: now,
                priority: Default::default(),
                migration_seq: 0,
                lifetime_secs: None,
                started: false,
                evictable: false,
            });
            cluster.attach(vm, sid, now);
            hosted.push(vm);
        }
        Op::Despawn { vm } => {
            if hosted.is_empty() {
                return;
            }
            let vm = hosted.swap_remove(vm as usize % hosted.len());
            let host = cluster.vms[vm.index()]
                .executing_on()
                .expect("hosted VM has a host");
            cluster.detach(vm, host, now);
            cluster.vms[vm.index()].state = VmState::Departed;
        }
        Op::UpdateDemand { vm, demand_mhz } => {
            if hosted.is_empty() {
                return;
            }
            let vm = hosted[vm as usize % hosted.len()];
            cluster.update_vm_demand(vm, demand_mhz);
        }
        Op::Wake { server } => {
            let sid = ServerId(server % n);
            if matches!(cluster.servers[sid.index()].state, ServerState::Hibernated) {
                cluster.set_server_state(
                    sid,
                    ServerState::Waking {
                        until_secs: now + 60.0,
                    },
                );
            } else if matches!(
                cluster.servers[sid.index()].state,
                ServerState::Waking { .. }
            ) {
                cluster.set_server_state(sid, ServerState::Active);
            }
        }
        Op::Hibernate { server } => {
            let sid = ServerId(server % n);
            if cluster.servers[sid.index()].vms.is_empty()
                && cluster.servers[sid.index()].is_powered()
            {
                cluster.set_server_state(sid, ServerState::Hibernated);
            }
        }
    }
}

fn op_strategy() -> impl Strategy<Value = (u8, u32, u32, u32)> {
    (0u8..5, 0u32..10_000, 1u32..20_000, 0u32..4_096)
}

fn decode((kind, a, b, c): (u8, u32, u32, u32)) -> Op {
    match kind {
        0 => Op::Spawn {
            server: a,
            demand_mhz: b as f64 / 7.0, // non-terminating fractions stress the float deltas
            ram_mb: c as f64 / 3.0,
        },
        1 => Op::Despawn { vm: a },
        2 => Op::UpdateDemand {
            vm: a,
            demand_mhz: b as f64 / 11.0,
        },
        3 => Op::Wake { server: a },
        _ => Op::Hibernate { server: a },
    }
}

fn assert_aggregates_match(cluster: &Cluster) {
    let used = cluster.total_used_mhz_recomputed();
    assert!(
        (cluster.total_used_mhz() - used).abs() <= 1e-6 * used.abs().max(1.0),
        "used aggregate {} != recomputed {used}",
        cluster.total_used_mhz()
    );
    let power = cluster.total_power_w_recomputed();
    assert!(
        (cluster.total_power_w() - power).abs() <= 1e-6 * power.abs().max(1.0),
        "power aggregate {} != recomputed {power}",
        cluster.total_power_w()
    );
    assert_eq!(cluster.powered_count(), cluster.powered_count_recomputed());
    let view = cluster.view();
    let indexed: Vec<u32> = view.powered().map(|(sid, _)| sid.0).collect();
    let scanned: Vec<u32> = view
        .iter()
        .filter(|(_, s)| s.is_powered())
        .map(|(sid, _)| sid.0)
        .collect();
    assert_eq!(indexed, scanned, "indexed powered() diverged from the scan");
    let indexed_h: Vec<u32> = view.hibernated().map(|(sid, _)| sid.0).collect();
    let scanned_h: Vec<u32> = view
        .iter()
        .filter(|(_, s)| matches!(s.state, ServerState::Hibernated))
        .map(|(sid, _)| sid.0)
        .collect();
    assert_eq!(indexed_h, scanned_h, "indexed hibernated() diverged");
}

proptest! {
    #[test]
    fn aggregates_survive_random_op_sequences(
        raw_ops in proptest::collection::vec(op_strategy(), 1..120),
        n_servers in 1usize..12,
    ) {
        let fleet = Fleet::thirds(n_servers);
        let mut cluster = Cluster::new(&fleet, ServerState::Active);
        let mut hosted: Vec<VmId> = Vec::new();
        for (step, raw) in raw_ops.iter().enumerate() {
            let now = step as f64 * 7.5;
            apply(&mut cluster, &mut hosted, now, decode(*raw));
            assert_aggregates_match(&cluster);
            cluster.check_invariants();
        }
    }

    #[test]
    fn aggregates_survive_cold_start_fleets(
        raw_ops in proptest::collection::vec(op_strategy(), 1..80),
        n_servers in 1usize..10,
    ) {
        // Same walk, but starting from an all-hibernated fleet (the
        // ViaPolicy initial state): spawns only land after wakes.
        let fleet = Fleet::thirds(n_servers);
        let mut cluster = Cluster::new(&fleet, ServerState::Hibernated);
        let mut hosted: Vec<VmId> = Vec::new();
        for (step, raw) in raw_ops.iter().enumerate() {
            let now = step as f64 * 7.5;
            apply(&mut cluster, &mut hosted, now, decode(*raw));
            assert_aggregates_match(&cluster);
            cluster.check_invariants();
        }
    }
}
