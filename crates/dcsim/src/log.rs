//! Optional structured event log.
//!
//! When enabled ([`crate::SimConfig::record_events`]), the engine
//! appends one entry per state transition — placements, drops,
//! departures, migrations, server switches, overload episodes. The log
//! is the ground truth for debugging, for cross-checking the aggregate
//! counters, and for post-hoc analyses the 30-minute samples are too
//! coarse for (e.g. per-VM migration histories).

use crate::checkpoint::{CheckpointError, Dec, Enc};
use crate::ids::{ServerId, VmId};
use crate::policy::MigrationKind;
use serde::{Deserialize, Serialize};

/// Why an in-flight migration was torn down instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// The VM's lifetime expired mid-flight.
    Departed,
    /// The source server crashed while the VM was in flight.
    SourceFailed,
    /// The destination crashed (or its wake gave up) before the
    /// migration could land.
    DestinationFailed,
    /// The fault schedule injected a migration failure at completion
    /// time; the migration was rolled back to the source.
    Injected,
}

/// One logged state transition. All timestamps in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A VM was placed on a server (new arrival).
    VmPlaced {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
        /// Its host.
        server: ServerId,
    },
    /// A VM could not be placed anywhere and was dropped.
    VmDropped {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
    },
    /// A VM's lifetime expired.
    VmDeparted {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
        /// The server it was executing on.
        server: ServerId,
    },
    /// A live migration started.
    MigrationStarted {
        /// Event time.
        t: f64,
        /// The VM being moved.
        vm: VmId,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
        /// Low or high migration.
        kind: MigrationKind,
    },
    /// A live migration completed.
    MigrationCompleted {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
    },
    /// A hibernated server began waking.
    ServerWaking {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
    },
    /// A waking server became fully active.
    ServerActive {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
    },
    /// An idle server hibernated.
    ServerHibernated {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
    },
    /// A server's demand exceeded its capacity.
    OverloadStarted {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
    },
    /// A server's overload episode ended.
    OverloadEnded {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
        /// Episode length in seconds.
        duration: f64,
    },
    /// An in-flight migration was torn down (rollback or departure).
    MigrationAborted {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
        /// Source server.
        from: ServerId,
        /// Destination server whose reservation was released.
        to: ServerId,
        /// Why the migration did not complete.
        reason: AbortReason,
    },
    /// A server crashed (injected fault); its VMs were displaced.
    ServerFailed {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
    },
    /// A crashed server's repair completed; it rejoined the hibernated
    /// pool.
    ServerRepaired {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
    },
    /// A wake transition failed (injected fault).
    WakeFailed {
        /// Event time.
        t: f64,
        /// The server.
        server: ServerId,
        /// 1-based count of failures of this wake so far.
        attempt: u32,
    },
    /// A displaced VM was re-placed on a new server after a fault.
    VmReplaced {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
        /// Its new host.
        server: ServerId,
    },
    /// A displaced VM could not be re-placed anywhere and was lost.
    VmLost {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
    },
    /// A control-plane placement exchange started (first invitation
    /// broadcast).
    ExchangeStarted {
        /// Event time.
        t: f64,
        /// The VM being placed or migrated.
        vm: VmId,
    },
    /// A commit arrived, passed the admission re-check, and the
    /// placement (or migration start) went through.
    ExchangeCommitted {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
        /// The committed destination.
        server: ServerId,
    },
    /// A commit was NACKed: the offer went stale between acceptance
    /// and commit arrival (utilization drift, crash, hibernation).
    ExchangeNacked {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
        /// The server that refused the commit.
        server: ServerId,
    },
    /// An exchange exhausted its retry budget (or was still open at
    /// end of run) and fell back to the wake-or-reject path.
    ExchangeAbandoned {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
    },
    /// An exchange was invalidated mid-flight: its source server
    /// crashed, or the VM departed or was displaced.
    ExchangeAborted {
        /// Event time.
        t: f64,
        /// The VM.
        vm: VmId,
    },
}

impl SimEvent {
    /// Timestamp of the event, seconds.
    pub fn time(&self) -> f64 {
        match *self {
            SimEvent::VmPlaced { t, .. }
            | SimEvent::VmDropped { t, .. }
            | SimEvent::VmDeparted { t, .. }
            | SimEvent::MigrationStarted { t, .. }
            | SimEvent::MigrationCompleted { t, .. }
            | SimEvent::ServerWaking { t, .. }
            | SimEvent::ServerActive { t, .. }
            | SimEvent::ServerHibernated { t, .. }
            | SimEvent::OverloadStarted { t, .. }
            | SimEvent::OverloadEnded { t, .. }
            | SimEvent::MigrationAborted { t, .. }
            | SimEvent::ServerFailed { t, .. }
            | SimEvent::ServerRepaired { t, .. }
            | SimEvent::WakeFailed { t, .. }
            | SimEvent::VmReplaced { t, .. }
            | SimEvent::VmLost { t, .. }
            | SimEvent::ExchangeStarted { t, .. }
            | SimEvent::ExchangeCommitted { t, .. }
            | SimEvent::ExchangeNacked { t, .. }
            | SimEvent::ExchangeAbandoned { t, .. }
            | SimEvent::ExchangeAborted { t, .. } => t,
        }
    }

    /// Checkpoint encoding. Tags are on-disk format: append, never
    /// renumber.
    pub(crate) fn encode(&self, e: &mut Enc) {
        match *self {
            SimEvent::VmPlaced { t, vm, server } => {
                e.u8(0);
                e.f64(t);
                e.u32(vm.0);
                e.u32(server.0);
            }
            SimEvent::VmDropped { t, vm } => {
                e.u8(1);
                e.f64(t);
                e.u32(vm.0);
            }
            SimEvent::VmDeparted { t, vm, server } => {
                e.u8(2);
                e.f64(t);
                e.u32(vm.0);
                e.u32(server.0);
            }
            SimEvent::MigrationStarted {
                t,
                vm,
                from,
                to,
                kind,
            } => {
                e.u8(3);
                e.f64(t);
                e.u32(vm.0);
                e.u32(from.0);
                e.u32(to.0);
                e.u8(match kind {
                    MigrationKind::Low => 0,
                    MigrationKind::High => 1,
                });
            }
            SimEvent::MigrationCompleted { t, vm, from, to } => {
                e.u8(4);
                e.f64(t);
                e.u32(vm.0);
                e.u32(from.0);
                e.u32(to.0);
            }
            SimEvent::ServerWaking { t, server } => {
                e.u8(5);
                e.f64(t);
                e.u32(server.0);
            }
            SimEvent::ServerActive { t, server } => {
                e.u8(6);
                e.f64(t);
                e.u32(server.0);
            }
            SimEvent::ServerHibernated { t, server } => {
                e.u8(7);
                e.f64(t);
                e.u32(server.0);
            }
            SimEvent::OverloadStarted { t, server } => {
                e.u8(8);
                e.f64(t);
                e.u32(server.0);
            }
            SimEvent::OverloadEnded {
                t,
                server,
                duration,
            } => {
                e.u8(9);
                e.f64(t);
                e.u32(server.0);
                e.f64(duration);
            }
            SimEvent::MigrationAborted {
                t,
                vm,
                from,
                to,
                reason,
            } => {
                e.u8(10);
                e.f64(t);
                e.u32(vm.0);
                e.u32(from.0);
                e.u32(to.0);
                e.u8(match reason {
                    AbortReason::Departed => 0,
                    AbortReason::SourceFailed => 1,
                    AbortReason::DestinationFailed => 2,
                    AbortReason::Injected => 3,
                });
            }
            SimEvent::ServerFailed { t, server } => {
                e.u8(11);
                e.f64(t);
                e.u32(server.0);
            }
            SimEvent::ServerRepaired { t, server } => {
                e.u8(12);
                e.f64(t);
                e.u32(server.0);
            }
            SimEvent::WakeFailed { t, server, attempt } => {
                e.u8(13);
                e.f64(t);
                e.u32(server.0);
                e.u32(attempt);
            }
            SimEvent::VmReplaced { t, vm, server } => {
                e.u8(14);
                e.f64(t);
                e.u32(vm.0);
                e.u32(server.0);
            }
            SimEvent::VmLost { t, vm } => {
                e.u8(15);
                e.f64(t);
                e.u32(vm.0);
            }
            SimEvent::ExchangeStarted { t, vm } => {
                e.u8(16);
                e.f64(t);
                e.u32(vm.0);
            }
            SimEvent::ExchangeCommitted { t, vm, server } => {
                e.u8(17);
                e.f64(t);
                e.u32(vm.0);
                e.u32(server.0);
            }
            SimEvent::ExchangeNacked { t, vm, server } => {
                e.u8(18);
                e.f64(t);
                e.u32(vm.0);
                e.u32(server.0);
            }
            SimEvent::ExchangeAbandoned { t, vm } => {
                e.u8(19);
                e.f64(t);
                e.u32(vm.0);
            }
            SimEvent::ExchangeAborted { t, vm } => {
                e.u8(20);
                e.f64(t);
                e.u32(vm.0);
            }
        }
    }

    /// Inverse of [`encode`](Self::encode).
    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<Self, CheckpointError> {
        Ok(match d.u8()? {
            0 => SimEvent::VmPlaced {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                server: ServerId(d.u32()?),
            },
            1 => SimEvent::VmDropped {
                t: d.f64()?,
                vm: VmId(d.u32()?),
            },
            2 => SimEvent::VmDeparted {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                server: ServerId(d.u32()?),
            },
            3 => SimEvent::MigrationStarted {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                from: ServerId(d.u32()?),
                to: ServerId(d.u32()?),
                kind: match d.u8()? {
                    0 => MigrationKind::Low,
                    1 => MigrationKind::High,
                    k => {
                        return Err(CheckpointError::Corrupt(format!(
                            "unknown migration-kind tag {k}"
                        )))
                    }
                },
            },
            4 => SimEvent::MigrationCompleted {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                from: ServerId(d.u32()?),
                to: ServerId(d.u32()?),
            },
            5 => SimEvent::ServerWaking {
                t: d.f64()?,
                server: ServerId(d.u32()?),
            },
            6 => SimEvent::ServerActive {
                t: d.f64()?,
                server: ServerId(d.u32()?),
            },
            7 => SimEvent::ServerHibernated {
                t: d.f64()?,
                server: ServerId(d.u32()?),
            },
            8 => SimEvent::OverloadStarted {
                t: d.f64()?,
                server: ServerId(d.u32()?),
            },
            9 => SimEvent::OverloadEnded {
                t: d.f64()?,
                server: ServerId(d.u32()?),
                duration: d.f64()?,
            },
            10 => SimEvent::MigrationAborted {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                from: ServerId(d.u32()?),
                to: ServerId(d.u32()?),
                reason: match d.u8()? {
                    0 => AbortReason::Departed,
                    1 => AbortReason::SourceFailed,
                    2 => AbortReason::DestinationFailed,
                    3 => AbortReason::Injected,
                    r => {
                        return Err(CheckpointError::Corrupt(format!(
                            "unknown abort-reason tag {r}"
                        )))
                    }
                },
            },
            11 => SimEvent::ServerFailed {
                t: d.f64()?,
                server: ServerId(d.u32()?),
            },
            12 => SimEvent::ServerRepaired {
                t: d.f64()?,
                server: ServerId(d.u32()?),
            },
            13 => SimEvent::WakeFailed {
                t: d.f64()?,
                server: ServerId(d.u32()?),
                attempt: d.u32()?,
            },
            14 => SimEvent::VmReplaced {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                server: ServerId(d.u32()?),
            },
            15 => SimEvent::VmLost {
                t: d.f64()?,
                vm: VmId(d.u32()?),
            },
            16 => SimEvent::ExchangeStarted {
                t: d.f64()?,
                vm: VmId(d.u32()?),
            },
            17 => SimEvent::ExchangeCommitted {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                server: ServerId(d.u32()?),
            },
            18 => SimEvent::ExchangeNacked {
                t: d.f64()?,
                vm: VmId(d.u32()?),
                server: ServerId(d.u32()?),
            },
            19 => SimEvent::ExchangeAbandoned {
                t: d.f64()?,
                vm: VmId(d.u32()?),
            },
            20 => SimEvent::ExchangeAborted {
                t: d.f64()?,
                vm: VmId(d.u32()?),
            },
            tag => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown sim-event tag {tag}"
                )))
            }
        })
    }
}

/// Append-only event log (no-op unless enabled).
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct EventLog {
    enabled: bool,
    events: Vec<SimEvent>,
}

impl EventLog {
    /// Creates a log; `enabled = false` makes `push` free.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled).
    #[inline]
    pub fn push(&mut self, event: SimEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Recorded events in chronological order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events matching `pred`.
    pub fn count_matching(&self, pred: impl Fn(&SimEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Migration history of one VM, as `(t, from, to)` of completions.
    pub fn vm_migration_history(&self, vm: VmId) -> Vec<(f64, ServerId, ServerId)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::MigrationCompleted { t, vm: v, from, to } if v == vm => {
                    Some((t, from, to))
                }
                _ => None,
            })
            .collect()
    }

    /// Checkpoint encoding: the enabled flag plus every recorded event.
    pub(crate) fn encode(&self, e: &mut Enc) {
        e.bool(self.enabled);
        e.usize(self.events.len());
        for ev in &self.events {
            ev.encode(e);
        }
    }

    /// Inverse of [`encode`](Self::encode).
    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<Self, CheckpointError> {
        let enabled = d.bool()?;
        let n = d.usize()?;
        d.check_remaining(n, 9)?; // smallest event: tag + f64 t
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(SimEvent::decode(d)?);
        }
        Ok(Self { enabled, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new(false);
        log.push(SimEvent::VmDropped {
            t: 1.0,
            vm: VmId(0),
        });
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_preserves_order_and_counts() {
        let mut log = EventLog::new(true);
        log.push(SimEvent::ServerWaking {
            t: 0.0,
            server: ServerId(1),
        });
        log.push(SimEvent::ServerActive {
            t: 120.0,
            server: ServerId(1),
        });
        log.push(SimEvent::VmPlaced {
            t: 120.0,
            vm: VmId(3),
            server: ServerId(1),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[0].time(), 0.0);
        assert_eq!(
            log.count_matching(|e| matches!(e, SimEvent::ServerActive { .. })),
            1
        );
    }

    #[test]
    fn vm_history_filters_by_vm() {
        let mut log = EventLog::new(true);
        log.push(SimEvent::MigrationCompleted {
            t: 5.0,
            vm: VmId(1),
            from: ServerId(0),
            to: ServerId(2),
        });
        log.push(SimEvent::MigrationCompleted {
            t: 9.0,
            vm: VmId(2),
            from: ServerId(2),
            to: ServerId(3),
        });
        log.push(SimEvent::MigrationCompleted {
            t: 12.0,
            vm: VmId(1),
            from: ServerId(2),
            to: ServerId(4),
        });
        let h = log.vm_migration_history(VmId(1));
        assert_eq!(
            h,
            vec![
                (5.0, ServerId(0), ServerId(2)),
                (12.0, ServerId(2), ServerId(4))
            ]
        );
    }

    #[test]
    fn every_variant_reports_its_time() {
        let events = [
            SimEvent::VmPlaced {
                t: 1.0,
                vm: VmId(0),
                server: ServerId(0),
            },
            SimEvent::VmDropped {
                t: 2.0,
                vm: VmId(0),
            },
            SimEvent::VmDeparted {
                t: 3.0,
                vm: VmId(0),
                server: ServerId(0),
            },
            SimEvent::MigrationStarted {
                t: 4.0,
                vm: VmId(0),
                from: ServerId(0),
                to: ServerId(1),
                kind: MigrationKind::Low,
            },
            SimEvent::MigrationCompleted {
                t: 5.0,
                vm: VmId(0),
                from: ServerId(0),
                to: ServerId(1),
            },
            SimEvent::ServerWaking {
                t: 6.0,
                server: ServerId(0),
            },
            SimEvent::ServerActive {
                t: 7.0,
                server: ServerId(0),
            },
            SimEvent::ServerHibernated {
                t: 8.0,
                server: ServerId(0),
            },
            SimEvent::OverloadStarted {
                t: 9.0,
                server: ServerId(0),
            },
            SimEvent::OverloadEnded {
                t: 10.0,
                server: ServerId(0),
                duration: 1.0,
            },
            SimEvent::MigrationAborted {
                t: 11.0,
                vm: VmId(0),
                from: ServerId(0),
                to: ServerId(1),
                reason: AbortReason::Departed,
            },
            SimEvent::ServerFailed {
                t: 12.0,
                server: ServerId(0),
            },
            SimEvent::ServerRepaired {
                t: 13.0,
                server: ServerId(0),
            },
            SimEvent::WakeFailed {
                t: 14.0,
                server: ServerId(0),
                attempt: 1,
            },
            SimEvent::VmReplaced {
                t: 15.0,
                vm: VmId(0),
                server: ServerId(1),
            },
            SimEvent::VmLost {
                t: 16.0,
                vm: VmId(0),
            },
            SimEvent::ExchangeStarted {
                t: 17.0,
                vm: VmId(0),
            },
            SimEvent::ExchangeCommitted {
                t: 18.0,
                vm: VmId(0),
                server: ServerId(1),
            },
            SimEvent::ExchangeNacked {
                t: 19.0,
                vm: VmId(0),
                server: ServerId(1),
            },
            SimEvent::ExchangeAbandoned {
                t: 20.0,
                vm: VmId(0),
            },
            SimEvent::ExchangeAborted {
                t: 21.0,
                vm: VmId(0),
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.time(), (i + 1) as f64);
        }
    }
}
