//! Overload CPU-sharing policies.
//!
//! When a server's demand exceeds its capacity, §III says "the response
//! of the server may be to forcedly decrease the CPU usage of all the
//! VMs or only of those that have low priority". Both responses are
//! implemented:
//!
//! * [`OverloadSharing::Proportional`] — every VM is granted the same
//!   fraction `capacity / demand` of its request (the default, and the
//!   behaviour behind the paper's granted-CPU numbers);
//! * [`OverloadSharing::PriorityFirst`] — high-priority VMs are served
//!   in full first, then normal, then low-priority VMs absorb the
//!   deficit (proportionally within each class).

use serde::{Deserialize, Serialize};

/// Scheduling priority of a VM (its SLA class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VmPriority {
    /// Served first under overload.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Absorbs the deficit first under overload.
    Low,
}

impl VmPriority {
    /// Dense index (serving order: High = 0, Normal = 1, Low = 2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            VmPriority::High => 0,
            VmPriority::Normal => 1,
            VmPriority::Low => 2,
        }
    }

    /// All priorities in serving order.
    pub const ALL: [VmPriority; 3] = [VmPriority::High, VmPriority::Normal, VmPriority::Low];
}

/// How an overloaded server divides its CPU among its VMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OverloadSharing {
    /// Every VM receives `capacity / total_demand` of its request.
    #[default]
    Proportional,
    /// Strict class order: High in full first, Normal next, Low last;
    /// proportional within the class that straddles the capacity edge.
    PriorityFirst,
}

/// Granted fraction per priority class for a server with
/// `capacity_mhz` and per-class total demands `demand_by_class`
/// (indexed by [`VmPriority::index`]). Classes with zero demand report
/// a granted fraction of 1.
pub fn granted_fractions(
    capacity_mhz: f64,
    demand_by_class: [f64; 3],
    sharing: OverloadSharing,
) -> [f64; 3] {
    debug_assert!(capacity_mhz >= 0.0);
    let total: f64 = demand_by_class.iter().sum();
    if total <= capacity_mhz || total <= 0.0 {
        return [1.0; 3];
    }
    match sharing {
        OverloadSharing::Proportional => {
            let f = (capacity_mhz / total).min(1.0);
            [f, f, f]
        }
        OverloadSharing::PriorityFirst => {
            let mut remaining = capacity_mhz;
            let mut out = [1.0; 3];
            for (class, &demand) in demand_by_class.iter().enumerate() {
                if demand <= 0.0 {
                    continue;
                }
                if demand <= remaining {
                    out[class] = 1.0;
                    remaining -= demand;
                } else {
                    out[class] = (remaining / demand).max(0.0);
                    remaining = 0.0;
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_overload_grants_everything() {
        for sharing in [
            OverloadSharing::Proportional,
            OverloadSharing::PriorityFirst,
        ] {
            assert_eq!(
                granted_fractions(100.0, [30.0, 30.0, 30.0], sharing),
                [1.0; 3]
            );
            assert_eq!(granted_fractions(100.0, [0.0, 0.0, 0.0], sharing), [1.0; 3]);
        }
    }

    #[test]
    fn proportional_is_uniform() {
        let g = granted_fractions(100.0, [50.0, 50.0, 100.0], OverloadSharing::Proportional);
        assert_eq!(g, [0.5, 0.5, 0.5]);
    }

    #[test]
    fn priority_first_serves_high_fully() {
        let g = granted_fractions(100.0, [60.0, 60.0, 60.0], OverloadSharing::PriorityFirst);
        assert_eq!(g[0], 1.0);
        assert!((g[1] - 40.0 / 60.0).abs() < 1e-12);
        assert_eq!(g[2], 0.0);
    }

    #[test]
    fn priority_first_with_empty_classes() {
        // No high-priority demand: normal is served first.
        let g = granted_fractions(50.0, [0.0, 40.0, 40.0], OverloadSharing::PriorityFirst);
        assert_eq!(g[0], 1.0); // vacuously
        assert_eq!(g[1], 1.0);
        assert!((g[2] - 10.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn even_high_priority_degrades_when_alone_too_big() {
        let g = granted_fractions(50.0, [100.0, 0.0, 0.0], OverloadSharing::PriorityFirst);
        assert_eq!(g[0], 0.5);
    }

    proptest! {
        #[test]
        fn prop_granted_capacity_never_exceeds_capacity(
            cap in 1.0f64..1e5,
            d0 in 0.0f64..1e5,
            d1 in 0.0f64..1e5,
            d2 in 0.0f64..1e5,
        ) {
            for sharing in [OverloadSharing::Proportional, OverloadSharing::PriorityFirst] {
                let g = granted_fractions(cap, [d0, d1, d2], sharing);
                let used = g[0] * d0 + g[1] * d1 + g[2] * d2;
                let total = d0 + d1 + d2;
                // Either everything fits, or exactly the capacity is used.
                if total <= cap {
                    prop_assert_eq!(g, [1.0; 3]);
                } else {
                    prop_assert!((used - cap).abs() < 1e-6 * cap.max(1.0),
                        "used {used} != cap {cap}");
                }
                prop_assert!(g.iter().all(|&f| (0.0..=1.0).contains(&f)));
            }
        }

        #[test]
        fn prop_priority_order_is_respected(
            cap in 1.0f64..1e4,
            d0 in 0.1f64..1e4,
            d1 in 0.1f64..1e4,
            d2 in 0.1f64..1e4,
        ) {
            let g = granted_fractions(cap, [d0, d1, d2], OverloadSharing::PriorityFirst);
            prop_assert!(g[0] >= g[1] - 1e-12);
            prop_assert!(g[1] >= g[2] - 1e-12);
        }
    }
}
