//! Cluster state: the dense server and VM stores plus the read-only
//! view handed to policies.
//!
//! The cluster keeps three kinds of derived state incrementally so the
//! engine's hot path never scans the fleet:
//!
//! * running aggregates (`total_used_mhz`, `total_power_w`,
//!   `powered_count`) updated by every load or state mutation,
//! * sorted id indexes of powered and hibernated servers backing
//!   [`ClusterView::powered`] / [`ClusterView::hibernated`],
//! * the **hot fleet arrays** ([`HotFleet`]): the per-server CPU-load
//!   and power-curve scalars that every monitor tick, demand update
//!   and invitation broadcast reads, stored as dense parallel `f64`
//!   vectors indexed by [`ServerId`] instead of inside the [`Server`]
//!   structs. The broadcast scan in the paper's assignment procedure
//!   touches three contiguous arrays instead of pulling a whole
//!   `Server` (spec + state + VM list + RAM accounting) through the
//!   cache per candidate — see `DESIGN.md` §14.
//!
//! The O(N) scans survive as `*_recomputed` oracles; debug builds
//! reconcile the caches against them in [`Cluster::check_invariants`],
//! and [`Cluster::rebase_aggregates`] re-anchors the float sums at
//! every metrics sample so rounding drift stays bounded by one
//! sampling interval.
//!
//! Server **state** changes must go through
//! [`Cluster::set_server_state`] — writing `servers[i].state` directly
//! would desynchronize the indexes and the hot power tags. Load
//! mutations must go through `attach` / `detach` / `update_vm_demand`
//! / `add_reservation` / `release_reservation` for the same reason.

use crate::checkpoint::{CheckpointError, Dec, Enc};
use crate::fleet::Fleet;
use crate::ids::{ServerId, VmId};
use crate::idset::SortedIdSet;
use crate::server::{Server, ServerState};
use crate::sla::VmPriority;
use crate::vm::{Vm, VmState};

/// Power-state tag mirrored from [`ServerState`] into a dense byte so
/// the hot power computation never reads the cold struct.
const TAG_OFF: u8 = 0; // Hibernated or Failed: draws nothing
const TAG_IDLE: u8 = 1; // Waking: draws idle power regardless of load
const TAG_ACTIVE: u8 = 2; // Active: linear curve on utilization

/// The hot per-server state, struct-of-arrays.
///
/// One slot per server, indexed by `ServerId::index()`. These are the
/// only fields the three per-event hot loops read — the invitation
/// broadcast (`used + reserved / capacity` per powered server), the
/// demand update (`used`, power curve per host) and the monitor tick —
/// kept contiguous so those loops stream through cache lines holding
/// eight servers each instead of one.
#[derive(Debug)]
pub struct HotFleet {
    /// Hosted demand, MHz (kept incrementally).
    used_mhz: Vec<f64>,
    /// Demand of VMs migrating *towards* each server, MHz. Counted in
    /// placement decisions so concurrent migrations cannot
    /// oversubscribe a target, but not in physical load/power.
    reserved_mhz: Vec<f64>,
    /// Total CPU capacity, MHz (static after construction).
    capacity_mhz: Vec<f64>,
    /// Power-curve intercept (idle draw), watts.
    idle_w: Vec<f64>,
    /// Power-curve span (`max_w − idle_w`), watts.
    span_w: Vec<f64>,
    /// [`TAG_OFF`] / [`TAG_IDLE`] / [`TAG_ACTIVE`], mirroring
    /// [`ServerState`].
    power_tag: Vec<u8>,
}

impl HotFleet {
    fn new(servers: &[Server]) -> Self {
        let n = servers.len();
        HotFleet {
            used_mhz: vec![0.0; n],
            reserved_mhz: vec![0.0; n],
            capacity_mhz: servers.iter().map(|s| s.capacity_mhz()).collect(),
            idle_w: servers.iter().map(|s| s.spec.power.idle_w).collect(),
            span_w: servers
                .iter()
                .map(|s| s.spec.power.max_w - s.spec.power.idle_w)
                .collect(),
            power_tag: servers.iter().map(|s| tag_of(s.state)).collect(),
        }
    }

    /// Hosted demand of server `i`, MHz.
    #[inline]
    pub fn used_mhz(&self, i: usize) -> f64 {
        self.used_mhz[i]
    }

    /// In-flight migration reservations towards server `i`, MHz.
    #[inline]
    pub fn reserved_mhz(&self, i: usize) -> f64 {
        self.reserved_mhz[i]
    }

    /// CPU capacity of server `i`, MHz.
    #[inline]
    pub fn capacity_mhz(&self, i: usize) -> f64 {
        self.capacity_mhz[i]
    }

    /// Physical CPU utilization of server `i` in [0, ∞); above 1 means
    /// overload.
    #[inline]
    pub fn utilization(&self, i: usize) -> f64 {
        self.used_mhz[i] / self.capacity_mhz[i]
    }

    /// Utilization used for placement decisions (hosted + reserved).
    #[inline]
    pub fn decision_utilization(&self, i: usize) -> f64 {
        (self.used_mhz[i] + self.reserved_mhz[i]) / self.capacity_mhz[i]
    }

    /// True when demand exceeds capacity on server `i`.
    #[inline]
    pub fn is_overloaded(&self, i: usize) -> bool {
        self.used_mhz[i] > self.capacity_mhz[i] * (1.0 + 1e-9)
    }

    /// Fraction of demanded CPU actually granted on server `i`
    /// (proportional share): 1 when not overloaded.
    #[inline]
    pub fn granted_fraction(&self, i: usize) -> f64 {
        if self.used_mhz[i] <= 0.0 {
            1.0
        } else {
            (self.capacity_mhz[i] / self.used_mhz[i]).min(1.0)
        }
    }

    /// Instantaneous power draw of server `i`, watts: nothing while
    /// off, idle draw while waking, the linear curve while active.
    #[inline]
    pub fn power_w(&self, i: usize) -> f64 {
        match self.power_tag[i] {
            TAG_OFF => 0.0,
            TAG_IDLE => self.idle_w[i],
            _ => {
                let u = self.utilization(i).clamp(0.0, 1.0);
                self.idle_w[i] + self.span_w[i] * u
            }
        }
    }
}

/// The dense power tag for a server state.
#[inline]
fn tag_of(state: ServerState) -> u8 {
    match state {
        ServerState::Hibernated | ServerState::Failed { .. } => TAG_OFF,
        ServerState::Waking { .. } => TAG_IDLE,
        ServerState::Active => TAG_ACTIVE,
    }
}

// Checkpoint tag codecs. Tags are on-disk format: append, never
// renumber.

fn encode_server_state(state: ServerState, e: &mut Enc) {
    match state {
        ServerState::Active => e.u8(0),
        ServerState::Waking { until_secs } => {
            e.u8(1);
            e.f64(until_secs);
        }
        ServerState::Hibernated => e.u8(2),
        ServerState::Failed { until_secs } => {
            e.u8(3);
            e.f64(until_secs);
        }
    }
}

fn decode_server_state(d: &mut Dec<'_>) -> Result<ServerState, CheckpointError> {
    Ok(match d.u8()? {
        0 => ServerState::Active,
        1 => ServerState::Waking {
            until_secs: d.f64()?,
        },
        2 => ServerState::Hibernated,
        3 => ServerState::Failed {
            until_secs: d.f64()?,
        },
        t => {
            return Err(CheckpointError::Corrupt(format!(
                "unknown server-state tag {t}"
            )))
        }
    })
}

fn encode_vm_state(state: VmState, e: &mut Enc) {
    match state {
        VmState::Hosted { host } => {
            e.u8(0);
            e.u32(host.0);
        }
        VmState::Migrating { from, to } => {
            e.u8(1);
            e.u32(from.0);
            e.u32(to.0);
        }
        VmState::Departed => e.u8(2),
        VmState::Dropped => e.u8(3),
    }
}

fn decode_vm_state(d: &mut Dec<'_>) -> Result<VmState, CheckpointError> {
    Ok(match d.u8()? {
        0 => VmState::Hosted {
            host: ServerId(d.u32()?),
        },
        1 => VmState::Migrating {
            from: ServerId(d.u32()?),
            to: ServerId(d.u32()?),
        },
        2 => VmState::Departed,
        3 => VmState::Dropped,
        t => {
            return Err(CheckpointError::Corrupt(format!(
                "unknown vm-state tag {t}"
            )))
        }
    })
}

fn decode_priority(d: &mut Dec<'_>) -> Result<VmPriority, CheckpointError> {
    Ok(match d.u8()? {
        0 => VmPriority::High,
        1 => VmPriority::Normal,
        2 => VmPriority::Low,
        t => {
            return Err(CheckpointError::Corrupt(format!(
                "unknown vm-priority tag {t}"
            )))
        }
    })
}

/// Mutable cluster state owned by the engine.
#[derive(Debug)]
pub struct Cluster {
    /// All servers (cold per-server state), indexed by [`ServerId`].
    /// Mutate load and state via the cluster methods, not in place
    /// (see module docs).
    pub servers: Vec<Server>,
    /// All VMs ever spawned, indexed by [`VmId`].
    pub vms: Vec<Vm>,
    /// The hot per-server arrays (CPU load, power curve).
    hot: HotFleet,
    /// Running sum of hosted demand, MHz.
    agg_used_mhz: f64,
    /// Running sum of instantaneous power, watts.
    agg_power_w: f64,
    /// Fleet capacity, MHz (static after construction).
    agg_capacity_mhz: f64,
    /// Powered (Active or Waking) servers, ascending id order.
    powered: SortedIdSet,
    /// Hibernated servers, ascending id order.
    hibernated: SortedIdSet,
    /// Failed (crashed, awaiting repair) servers, ascending id order.
    /// Invisible to both policy views: a failed server can neither
    /// receive placements nor be woken.
    failed: SortedIdSet,
}

impl Cluster {
    /// Builds a cluster from a fleet with every server in `state` and
    /// no VMs.
    pub fn new(fleet: &Fleet, state: ServerState) -> Self {
        let servers: Vec<Server> = fleet
            .specs
            .iter()
            .map(|&spec| Server::new(spec, state))
            .collect();
        let hot = HotFleet::new(&servers);
        let mut cluster = Self {
            agg_used_mhz: 0.0,
            agg_power_w: (0..servers.len()).map(|i| hot.power_w(i)).sum(),
            agg_capacity_mhz: servers.iter().map(|s| s.capacity_mhz()).sum(),
            powered: SortedIdSet::with_capacity(servers.len()),
            hibernated: SortedIdSet::with_capacity(servers.len()),
            failed: SortedIdSet::new(),
            hot,
            servers,
            vms: Vec::new(),
        };
        for i in 0..cluster.servers.len() {
            let id = i as u32;
            match cluster.servers[i].state {
                ServerState::Active | ServerState::Waking { .. } => cluster.powered.insert(id),
                ServerState::Hibernated => cluster.hibernated.insert(id),
                ServerState::Failed { .. } => cluster.failed.insert(id),
            };
        }
        cluster
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// The hot per-server arrays (read-only).
    #[inline]
    pub fn hot(&self) -> &HotFleet {
        &self.hot
    }

    /// Servers currently powered (Active or Waking) — the paper's
    /// "active servers" metric (Fig. 7) counts machines drawing power.
    /// O(1) from the index.
    pub fn powered_count(&self) -> usize {
        self.powered.len()
    }

    /// Total physical demand hosted, MHz. O(1) from the running sum.
    pub fn total_used_mhz(&self) -> f64 {
        self.agg_used_mhz.max(0.0)
    }

    /// Total fleet capacity, MHz.
    pub fn total_capacity_mhz(&self) -> f64 {
        self.agg_capacity_mhz
    }

    /// Instantaneous total power draw, watts. O(1) from the running
    /// sum (clamped: float dust must never feed a negative power into
    /// the energy integrator).
    pub fn total_power_w(&self) -> f64 {
        self.agg_power_w.max(0.0)
    }

    /// O(N) oracle for [`Self::powered_count`].
    pub fn powered_count_recomputed(&self) -> usize {
        self.servers.iter().filter(|s| s.is_powered()).count()
    }

    /// O(N) oracle for [`Self::total_used_mhz`].
    pub fn total_used_mhz_recomputed(&self) -> f64 {
        self.hot.used_mhz.iter().sum()
    }

    /// O(N) oracle for [`Self::total_capacity_mhz`].
    pub fn total_capacity_mhz_recomputed(&self) -> f64 {
        self.servers.iter().map(|s| s.capacity_mhz()).sum()
    }

    /// O(N) oracle for [`Self::total_power_w`].
    pub fn total_power_w_recomputed(&self) -> f64 {
        (0..self.servers.len()).map(|i| self.hot.power_w(i)).sum()
    }

    /// Transitions a server to `state`, keeping the power aggregate,
    /// the hot power tag and the powered/hibernated/failed indexes in
    /// sync.
    pub fn set_server_state(&mut self, sid: ServerId, state: ServerState) {
        let (id, i) = (sid.0, sid.index());
        let power_before = self.hot.power_w(i);
        self.servers[i].state = state;
        self.hot.power_tag[i] = tag_of(state);
        self.agg_power_w += self.hot.power_w(i) - power_before;
        self.powered.remove(id);
        self.hibernated.remove(id);
        self.failed.remove(id);
        match state {
            ServerState::Active | ServerState::Waking { .. } => self.powered.insert(id),
            ServerState::Hibernated => self.hibernated.insert(id),
            ServerState::Failed { .. } => self.failed.insert(id),
        };
    }

    /// Number of failed servers, O(1).
    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    /// Attaches an existing VM to a server, updating load accounting.
    /// The VM must not currently be hosted anywhere.
    pub fn attach(&mut self, vm: VmId, server: ServerId, now_secs: f64) {
        let demand = self.vms[vm.index()].demand_mhz;
        let ram = self.vms[vm.index()].ram_mb;
        let i = server.index();
        let s = &mut self.servers[i];
        debug_assert!(!s.vms.contains(&vm), "VM {vm} already attached to {server}");
        let used_before = self.hot.used_mhz[i];
        let power_before = self.hot.power_w(i);
        s.vms.push(vm);
        s.used_ram_mb += ram;
        s.empty_since_secs = None;
        self.hot.used_mhz[i] += demand;
        self.agg_used_mhz += self.hot.used_mhz[i] - used_before;
        self.agg_power_w += self.hot.power_w(i) - power_before;
        self.vms[vm.index()].state = VmState::Hosted { host: server };
        let _ = now_secs;
    }

    /// Detaches a VM from a server, updating load accounting; marks the
    /// server's `empty_since` when it just became empty.
    pub fn detach(&mut self, vm: VmId, server: ServerId, now_secs: f64) {
        let demand = self.vms[vm.index()].demand_mhz;
        let ram = self.vms[vm.index()].ram_mb;
        let i = server.index();
        let s = &mut self.servers[i];
        let pos = s
            .vms
            .iter()
            .position(|&v| v == vm)
            .unwrap_or_else(|| panic!("VM {vm} not on server {server}"));
        let used_before = self.hot.used_mhz[i];
        let power_before = self.hot.power_w(i);
        s.vms.swap_remove(pos);
        s.used_ram_mb = (s.used_ram_mb - ram).max(0.0);
        self.hot.used_mhz[i] = (used_before - demand).max(0.0);
        if s.vms.is_empty() {
            self.hot.used_mhz[i] = 0.0; // clear accumulated float dust
            s.used_ram_mb = 0.0;
            s.empty_since_secs = Some(now_secs);
        }
        self.agg_used_mhz += self.hot.used_mhz[i] - used_before;
        self.agg_power_w += self.hot.power_w(i) - power_before;
    }

    /// Applies a demand change for a hosted VM, keeping the host's load
    /// in sync. Returns the server whose load changed, if any.
    pub fn update_vm_demand(&mut self, vm: VmId, new_demand_mhz: f64) -> Option<ServerId> {
        let old = self.vms[vm.index()].demand_mhz;
        self.vms[vm.index()].demand_mhz = new_demand_mhz;
        let host = self.vms[vm.index()].executing_on()?;
        let i = host.index();
        let used_before = self.hot.used_mhz[i];
        let power_before = self.hot.power_w(i);
        self.hot.used_mhz[i] = (used_before - old + new_demand_mhz).max(0.0);
        self.agg_used_mhz += self.hot.used_mhz[i] - used_before;
        self.agg_power_w += self.hot.power_w(i) - power_before;
        // Keep the reservation at a migration target in sync too.
        if let VmState::Migrating { to, .. } = self.vms[vm.index()].state {
            let t = to.index();
            self.hot.reserved_mhz[t] = (self.hot.reserved_mhz[t] - old + new_demand_mhz).max(0.0);
        }
        Some(host)
    }

    /// Reserves capacity on `server` for one incoming migration.
    pub fn add_reservation(&mut self, server: ServerId, demand_mhz: f64, ram_mb: f64) {
        debug_assert!(demand_mhz >= 0.0 && ram_mb >= 0.0);
        let i = server.index();
        self.hot.reserved_mhz[i] += demand_mhz;
        let s = &mut self.servers[i];
        s.reserved_ram_mb += ram_mb;
        s.reserved_count += 1;
    }

    /// Releases the reservation of one finished (or aborted) incoming
    /// migration by exact subtraction. Real accounting drift — trying
    /// to release more than is reserved — is caught by debug
    /// assertions; sub-ulp float dust is snapped to zero once no
    /// migration is in flight.
    pub fn release_reservation(&mut self, server: ServerId, demand_mhz: f64, ram_mb: f64) {
        let i = server.index();
        let s = &mut self.servers[i];
        let reserved = &mut self.hot.reserved_mhz[i];
        debug_assert!(
            s.reserved_count > 0,
            "released a reservation that was never added"
        );
        let tol = 1e-6 * demand_mhz.abs().max(1.0);
        debug_assert!(
            *reserved - demand_mhz >= -tol,
            "CPU reservation drift: releasing {demand_mhz} MHz of {reserved} reserved"
        );
        let ram_tol = 1e-6 * ram_mb.abs().max(1.0);
        debug_assert!(
            s.reserved_ram_mb - ram_mb >= -ram_tol,
            "RAM reservation drift: releasing {ram_mb} MB of {} reserved",
            s.reserved_ram_mb
        );
        *reserved -= demand_mhz;
        s.reserved_ram_mb -= ram_mb;
        s.reserved_count = s.reserved_count.saturating_sub(1);
        if s.reserved_count == 0 {
            debug_assert!(
                reserved.abs() <= tol && s.reserved_ram_mb.abs() <= ram_tol,
                "reservation dust beyond rounding: {reserved} MHz / {} MB left with no \
                 migration in flight",
                s.reserved_ram_mb
            );
            *reserved = 0.0;
            s.reserved_ram_mb = 0.0;
        } else {
            // Dust between concurrent migrations must not go negative.
            *reserved = reserved.max(0.0);
            s.reserved_ram_mb = s.reserved_ram_mb.max(0.0);
        }
    }

    /// Re-anchors the float aggregates on a fresh O(N) recompute.
    ///
    /// The incremental sums accumulate one rounding error per mutation;
    /// calling this on the (already O(N)) metrics-sample path bounds
    /// the drift to one sampling interval. Debug builds assert the
    /// drift really was only rounding-level before re-anchoring.
    pub fn rebase_aggregates(&mut self) {
        let used = self.total_used_mhz_recomputed();
        let power = self.total_power_w_recomputed();
        debug_assert!(
            (self.agg_used_mhz - used).abs() <= 1e-6 * used.abs().max(1.0),
            "used-MHz aggregate drifted: cached {} vs recomputed {used}",
            self.agg_used_mhz
        );
        debug_assert!(
            (self.agg_power_w - power).abs() <= 1e-6 * power.abs().max(1.0),
            "power aggregate drifted: cached {} vs recomputed {power}",
            self.agg_power_w
        );
        self.agg_used_mhz = used;
        self.agg_power_w = power;
    }

    /// Checks internal consistency; used by tests and debug assertions.
    /// Verifies that each server's cached load equals the sum of its
    /// VMs' demands, that VM/host back-pointers agree, that the
    /// incremental aggregates match their O(N) oracles, that the
    /// powered/hibernated indexes partition the fleet by state, and
    /// that the hot arrays mirror the cold structs.
    pub fn check_invariants(&self) {
        for (idx, s) in self.servers.iter().enumerate() {
            let sid = ServerId(idx as u32);
            let sum: f64 = s.vms.iter().map(|&v| self.vms[v.index()].demand_mhz).sum();
            assert!(
                (self.hot.used_mhz[idx] - sum).abs() < 1e-6 * sum.max(1.0),
                "server {sid}: cached load {} != sum {}",
                self.hot.used_mhz[idx],
                sum
            );
            for &v in &s.vms {
                let on = self.vms[v.index()].executing_on();
                assert_eq!(on, Some(sid), "VM {v} host back-pointer mismatch");
            }
            assert!(
                self.hot.reserved_mhz[idx] >= -1e-9,
                "negative reservation on {sid}"
            );
            let ram_sum: f64 = s.vms.iter().map(|&v| self.vms[v.index()].ram_mb).sum();
            assert!(
                (s.used_ram_mb - ram_sum).abs() < 1e-6 * ram_sum.max(1.0),
                "server {sid}: cached RAM {} != sum {}",
                s.used_ram_mb,
                ram_sum
            );
            assert_eq!(
                self.hot.power_tag[idx],
                tag_of(s.state),
                "hot power tag out of sync for {sid}"
            );
            assert_eq!(
                self.hot.capacity_mhz[idx],
                s.capacity_mhz(),
                "hot capacity out of sync for {sid}"
            );
            assert_eq!(
                self.powered.contains(sid.0),
                s.is_powered(),
                "powered index out of sync for {sid}"
            );
            assert_eq!(
                self.hibernated.contains(sid.0),
                matches!(s.state, ServerState::Hibernated),
                "hibernated index out of sync for {sid}"
            );
            assert_eq!(
                self.failed.contains(sid.0),
                matches!(s.state, ServerState::Failed { .. }),
                "failed index out of sync for {sid}"
            );
            if matches!(s.state, ServerState::Failed { .. }) {
                assert!(s.vms.is_empty(), "failed server {sid} still hosts VMs");
                assert_eq!(
                    s.reserved_count, 0,
                    "failed server {sid} still holds migration reservations"
                );
            }
        }
        for vm in &self.vms {
            if let Some(host) = vm.executing_on() {
                assert!(
                    self.servers[host.index()].vms.contains(&vm.id),
                    "VM {} not in host {host} list",
                    vm.id
                );
            }
        }
        assert_eq!(
            self.powered.len() + self.hibernated.len() + self.failed.len(),
            self.servers.len(),
            "powered/hibernated/failed indexes do not partition the fleet"
        );
        assert_eq!(self.powered_count(), self.powered_count_recomputed());
        let used = self.total_used_mhz_recomputed();
        assert!(
            (self.agg_used_mhz - used).abs() <= 1e-6 * used.abs().max(1.0),
            "used-MHz aggregate out of sync: cached {} vs {used}",
            self.agg_used_mhz
        );
        let power = self.total_power_w_recomputed();
        assert!(
            (self.agg_power_w - power).abs() <= 1e-6 * power.abs().max(1.0),
            "power aggregate out of sync: cached {} vs {power}",
            self.agg_power_w
        );
        let cap = self.total_capacity_mhz_recomputed();
        assert!(
            (self.agg_capacity_mhz - cap).abs() <= 1e-9 * cap.max(1.0),
            "capacity aggregate out of sync: cached {} vs {cap}",
            self.agg_capacity_mhz
        );
    }

    /// Checkpoint encoding of everything mutable: per-server dynamic
    /// fields, the full VM table, the hot load vectors and the running
    /// float aggregates (captured as raw bits — recomputing them on
    /// restore would lose the incremental rounding history and break
    /// bit-identity). Static state (specs, capacities, power curves,
    /// the capacity aggregate) is re-derived from the fleet, and the
    /// power tags and state indexes are pure functions of the server
    /// states, so none of those are written.
    pub(crate) fn encode(&self, e: &mut Enc) {
        e.usize(self.servers.len());
        for s in &self.servers {
            encode_server_state(s.state, e);
            e.u32s(&s.vms.iter().map(|v| v.0).collect::<Vec<u32>>());
            e.f64(s.used_ram_mb);
            e.f64(s.reserved_ram_mb);
            e.u32(s.reserved_count);
            e.opt_f64(s.empty_since_secs);
        }
        e.usize(self.vms.len());
        for vm in &self.vms {
            e.u32(vm.id.0);
            e.usize(vm.trace_idx);
            e.f64(vm.demand_mhz);
            e.f64(vm.ram_mb);
            encode_vm_state(vm.state, e);
            e.f64(vm.arrived_secs);
            e.u8(vm.priority.index() as u8);
            e.u32(vm.migration_seq);
            e.opt_f64(vm.lifetime_secs);
            e.bool(vm.started);
            e.bool(vm.evictable);
        }
        e.f64s(&self.hot.used_mhz);
        e.f64s(&self.hot.reserved_mhz);
        e.f64(self.agg_used_mhz);
        e.f64(self.agg_power_w);
    }

    /// Overlays a checkpoint onto `self`, which must be a freshly
    /// built cluster of the same fleet. Inverse of
    /// [`encode`](Self::encode); rebuilds the derived power tags and
    /// state indexes from the restored server states.
    pub(crate) fn decode_into(&mut self, d: &mut Dec<'_>) -> Result<(), CheckpointError> {
        let n = d.usize()?;
        if n != self.servers.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot has {n} servers, scenario has {}",
                self.servers.len()
            )));
        }
        for s in &mut self.servers {
            s.state = decode_server_state(d)?;
            s.vms = d.u32s()?.into_iter().map(VmId).collect();
            s.used_ram_mb = d.f64()?;
            s.reserved_ram_mb = d.f64()?;
            s.reserved_count = d.u32()?;
            s.empty_since_secs = d.opt_f64()?;
        }
        let n_vms = d.usize()?;
        d.check_remaining(n_vms, 44)?; // fixed-width VM fields
        self.vms.clear();
        self.vms.reserve(n_vms);
        for _ in 0..n_vms {
            let id = VmId(d.u32()?);
            let trace_idx = d.usize()?;
            let demand_mhz = d.f64()?;
            let ram_mb = d.f64()?;
            let state = decode_vm_state(d)?;
            let arrived_secs = d.f64()?;
            let priority = decode_priority(d)?;
            let migration_seq = d.u32()?;
            let lifetime_secs = d.opt_f64()?;
            let started = d.bool()?;
            let evictable = d.bool()?;
            self.vms.push(Vm {
                id,
                trace_idx,
                demand_mhz,
                ram_mb,
                state,
                arrived_secs,
                priority,
                migration_seq,
                lifetime_secs,
                started,
                evictable,
            });
        }
        let used = d.f64s()?;
        let reserved = d.f64s()?;
        if used.len() != n || reserved.len() != n {
            return Err(CheckpointError::Corrupt(format!(
                "hot vectors sized {}/{} for {n} servers",
                used.len(),
                reserved.len()
            )));
        }
        self.hot.used_mhz = used;
        self.hot.reserved_mhz = reserved;
        self.agg_used_mhz = d.f64()?;
        self.agg_power_w = d.f64()?;
        self.powered.clear();
        self.hibernated.clear();
        self.failed.clear();
        for i in 0..self.servers.len() {
            let state = self.servers[i].state;
            self.hot.power_tag[i] = tag_of(state);
            match state {
                ServerState::Active | ServerState::Waking { .. } => self.powered.insert(i as u32),
                ServerState::Hibernated => self.hibernated.insert(i as u32),
                ServerState::Failed { .. } => self.failed.insert(i as u32),
            };
        }
        Ok(())
    }

    /// Read-only view for policies.
    pub fn view(&self) -> ClusterView<'_> {
        ClusterView {
            servers: &self.servers,
            vms: &self.vms,
            hot: &self.hot,
            powered: &self.powered,
            hibernated: &self.hibernated,
        }
    }
}

/// A server as seen by policies: the cold struct plus its hot scalars,
/// loaded together so callers keep the pre-split `server.utilization()`
/// style API. `Deref`s to [`Server`] for the cold fields (`spec`,
/// `state`, `vms`, RAM accounting).
#[derive(Debug, Clone, Copy)]
pub struct ServerRef<'a> {
    cold: &'a Server,
    used_mhz: f64,
    reserved_mhz: f64,
    capacity_mhz: f64,
}

impl<'a> std::ops::Deref for ServerRef<'a> {
    type Target = Server;
    fn deref(&self) -> &Server {
        self.cold
    }
}

impl<'a> ServerRef<'a> {
    #[inline]
    fn new(cold: &'a Server, hot: &HotFleet, i: usize) -> Self {
        ServerRef {
            cold,
            used_mhz: hot.used_mhz[i],
            reserved_mhz: hot.reserved_mhz[i],
            capacity_mhz: hot.capacity_mhz[i],
        }
    }

    /// Hosted demand, MHz.
    #[inline]
    pub fn used_mhz(&self) -> f64 {
        self.used_mhz
    }

    /// Demand reserved by in-flight incoming migrations, MHz.
    #[inline]
    pub fn reserved_mhz(&self) -> f64 {
        self.reserved_mhz
    }

    /// Total capacity, MHz.
    #[inline]
    pub fn capacity_mhz(&self) -> f64 {
        self.capacity_mhz
    }

    /// Physical CPU utilization in [0, ∞); above 1 means overload.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.used_mhz / self.capacity_mhz
    }

    /// Utilization used for placement decisions (hosted + reserved).
    #[inline]
    pub fn decision_utilization(&self) -> f64 {
        (self.used_mhz + self.reserved_mhz) / self.capacity_mhz
    }

    /// True when demand exceeds capacity (VMs are being short-changed).
    #[inline]
    pub fn is_overloaded(&self) -> bool {
        self.used_mhz > self.capacity_mhz * (1.0 + 1e-9)
    }

    /// Fraction of demanded CPU actually granted to hosted VMs
    /// (proportional share): 1 when not overloaded.
    #[inline]
    pub fn granted_fraction(&self) -> f64 {
        if self.used_mhz <= 0.0 {
            1.0
        } else {
            (self.capacity_mhz / self.used_mhz).min(1.0)
        }
    }
}

/// Immutable snapshot of the cluster handed to policies.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    servers: &'a [Server],
    vms: &'a [Vm],
    hot: &'a HotFleet,
    powered: &'a SortedIdSet,
    hibernated: &'a SortedIdSet,
}

impl<'a> ClusterView<'a> {
    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of powered servers, O(1).
    pub fn n_powered(&self) -> usize {
        self.powered.len()
    }

    /// Number of hibernated servers, O(1).
    pub fn n_hibernated(&self) -> usize {
        self.hibernated.len()
    }

    /// Access to one server (cold struct + hot scalars).
    #[inline]
    pub fn server(&self, id: ServerId) -> ServerRef<'a> {
        ServerRef::new(&self.servers[id.index()], self.hot, id.index())
    }

    /// Access to one VM.
    pub fn vm(&self, id: VmId) -> &'a Vm {
        &self.vms[id.index()]
    }

    /// Iterates `(id, server)` over all servers.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, ServerRef<'a>)> + '_ {
        let (servers, hot) = (self.servers, self.hot);
        servers
            .iter()
            .enumerate()
            .map(move |(i, s)| (ServerId(i as u32), ServerRef::new(s, hot, i)))
    }

    /// Iterates over powered (Active or Waking) servers — the set the
    /// manager's invitation broadcast reaches. Backed by the sorted
    /// index: O(powered), ascending id order (identical to the
    /// filter-based scan it replaces).
    pub fn powered(&self) -> impl Iterator<Item = (ServerId, ServerRef<'a>)> + '_ {
        let (servers, hot) = (self.servers, self.hot);
        self.powered.iter().map(move |id| {
            (
                ServerId(id),
                ServerRef::new(&servers[id as usize], hot, id as usize),
            )
        })
    }

    /// Iterates over hibernated servers — the wake-up candidates.
    /// Backed by the sorted index: O(hibernated), ascending id order.
    pub fn hibernated(&self) -> impl Iterator<Item = (ServerId, ServerRef<'a>)> + '_ {
        let (servers, hot) = (self.servers, self.hot);
        self.hibernated.iter().map(move |id| {
            (
                ServerId(id),
                ServerRef::new(&servers[id as usize], hot, id as usize),
            )
        })
    }

    /// `(vm, demand_mhz)` for every VM on `server` that is *not*
    /// already migrating — the candidates a monitor may move.
    pub fn migratable_vms(&self, server: ServerId) -> impl Iterator<Item = (VmId, f64)> + '_ {
        self.servers[server.index()]
            .vms
            .iter()
            .map(|&v| &self.vms[v.index()])
            .filter(|vm| !vm.is_migrating())
            .map(|vm| (vm.id, vm.demand_mhz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use crate::server::{ServerSpec, ServerState};

    fn cluster_with_vms(n_servers: usize, demands: &[f64]) -> Cluster {
        let fleet = Fleet::uniform(n_servers, 6);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for (i, &d) in demands.iter().enumerate() {
            c.vms.push(Vm {
                id: VmId(i as u32),
                trace_idx: 0,
                demand_mhz: d,
                ram_mb: 0.0,
                state: VmState::Departed, // attached below
                arrived_secs: 0.0,
                priority: Default::default(),
                migration_seq: 0,
                lifetime_secs: None,
                started: false,
                evictable: false,
            });
        }
        c
    }

    #[test]
    fn attach_detach_keeps_load_in_sync() {
        let mut c = cluster_with_vms(2, &[1000.0, 2000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(0), 0.0);
        assert_eq!(c.hot().used_mhz(0), 3000.0);
        assert_eq!(c.total_used_mhz(), 3000.0);
        c.check_invariants();
        c.detach(VmId(0), ServerId(0), 5.0);
        assert_eq!(c.hot().used_mhz(0), 2000.0);
        assert_eq!(c.total_used_mhz(), 2000.0);
        assert!(c.servers[0].empty_since_secs.is_none());
        c.vms[1].state = VmState::Departed;
        c.detach(VmId(1), ServerId(0), 9.0);
        assert_eq!(c.hot().used_mhz(0), 0.0);
        assert_eq!(c.total_used_mhz(), 0.0);
        assert_eq!(c.servers[0].empty_since_secs, Some(9.0));
    }

    #[test]
    fn demand_update_adjusts_host() {
        let mut c = cluster_with_vms(1, &[1000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        let host = c.update_vm_demand(VmId(0), 1500.0);
        assert_eq!(host, Some(ServerId(0)));
        assert_eq!(c.hot().used_mhz(0), 1500.0);
        assert_eq!(c.total_used_mhz(), 1500.0);
        c.check_invariants();
    }

    #[test]
    fn demand_update_tracks_migration_reservation() {
        let mut c = cluster_with_vms(2, &[1000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.vms[0].state = VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1),
        };
        c.add_reservation(ServerId(1), 1000.0, 0.0);
        c.update_vm_demand(VmId(0), 800.0);
        assert_eq!(c.hot().used_mhz(0), 800.0);
        assert_eq!(c.hot().reserved_mhz(1), 800.0);
    }

    #[test]
    fn reservations_snap_to_zero_when_drained() {
        let mut c = cluster_with_vms(1, &[]);
        let sid = ServerId(0);
        c.add_reservation(sid, 1000.0, 512.0);
        c.add_reservation(sid, 0.1 + 0.2, 0.0); // deliberately dusty value
        assert_eq!(c.servers[0].reserved_count, 2);
        c.release_reservation(sid, 1000.0, 512.0);
        assert!(c.hot().reserved_mhz(0) > 0.0);
        c.release_reservation(sid, 0.1 + 0.2, 0.0);
        assert_eq!(c.servers[0].reserved_count, 0);
        assert_eq!(c.hot().reserved_mhz(0), 0.0, "dust must snap to zero");
        assert_eq!(c.servers[0].reserved_ram_mb, 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "never added")]
    fn releasing_unbalanced_reservation_panics_in_debug() {
        let mut c = cluster_with_vms(1, &[]);
        c.release_reservation(ServerId(0), 100.0, 0.0);
    }

    #[test]
    fn hot_power_tracks_state_and_load() {
        let fleet = Fleet::uniform(1, 6);
        let spec = ServerSpec::paper(6);
        let mut c = Cluster::new(&fleet, ServerState::Hibernated);
        assert_eq!(c.hot().power_w(0), 0.0);
        c.set_server_state(ServerId(0), ServerState::Waking { until_secs: 10.0 });
        assert_eq!(c.hot().power_w(0), spec.power.idle_w);
        c.set_server_state(ServerId(0), ServerState::Active);
        c.vms.push(Vm {
            id: VmId(0),
            trace_idx: 0,
            demand_mhz: spec.capacity_mhz(),
            ram_mb: 0.0,
            state: VmState::Departed,
            arrived_secs: 0.0,
            priority: Default::default(),
            migration_seq: 0,
            lifetime_secs: None,
            started: false,
            evictable: false,
        });
        c.attach(VmId(0), ServerId(0), 0.0);
        assert_eq!(c.hot().power_w(0), spec.power.max_w);
        c.set_server_state(ServerId(0), ServerState::Failed { until_secs: 99.0 });
        assert_eq!(c.hot().power_w(0), 0.0);
    }

    #[test]
    fn server_ref_mirrors_hot_state() {
        let mut c = cluster_with_vms(2, &[4000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.add_reservation(ServerId(0), 2000.0, 0.0);
        let v = c.view();
        let s = v.server(ServerId(0));
        assert_eq!(s.used_mhz(), 4000.0);
        assert_eq!(s.reserved_mhz(), 2000.0);
        assert_eq!(s.capacity_mhz(), 12_000.0);
        assert!((s.utilization() - 4000.0 / 12_000.0).abs() < 1e-12);
        assert!((s.decision_utilization() - 0.5).abs() < 1e-12);
        assert!(!s.is_overloaded());
        assert_eq!(s.granted_fraction(), 1.0);
        // Deref exposes the cold half.
        assert_eq!(s.spec.cores, 6);
        assert!(s.is_active());
        assert_eq!(s.vms.len(), 1);
    }

    #[test]
    fn overload_and_granted_fraction() {
        let mut c = cluster_with_vms(1, &[10_000.0]);
        // Uniform 6-core fleet: capacity 12,000 MHz — overload needs
        // more.
        c.attach(VmId(0), ServerId(0), 0.0);
        assert!(!c.hot().is_overloaded(0));
        c.update_vm_demand(VmId(0), 15_000.0);
        assert!(c.hot().is_overloaded(0));
        assert!((c.hot().granted_fraction(0) - 0.8).abs() < 1e-12);
        assert!((c.hot().utilization(0) - 1.25).abs() < 1e-12);
        let (_, s) = c.view().powered().next().unwrap();
        assert!(s.is_overloaded());
        assert!((s.granted_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn powered_count_and_views() {
        let fleet = Fleet::uniform(3, 4);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        c.set_server_state(ServerId(2), ServerState::Hibernated);
        assert_eq!(c.powered_count(), 2);
        let v = c.view();
        assert_eq!(v.powered().count(), 2);
        assert_eq!(v.hibernated().count(), 1);
        assert_eq!(v.n_powered(), 2);
        assert_eq!(v.n_hibernated(), 1);
        assert_eq!(v.n_servers(), 3);
        c.check_invariants();
    }

    #[test]
    fn state_transitions_track_power_aggregate() {
        let fleet = Fleet::uniform(4, 6);
        let mut c = Cluster::new(&fleet, ServerState::Hibernated);
        assert_eq!(c.total_power_w(), 0.0);
        assert_eq!(c.powered_count(), 0);
        c.set_server_state(ServerId(1), ServerState::Waking { until_secs: 120.0 });
        c.set_server_state(ServerId(3), ServerState::Active);
        assert_eq!(c.powered_count(), 2);
        assert!((c.total_power_w() - c.total_power_w_recomputed()).abs() < 1e-9);
        c.set_server_state(ServerId(1), ServerState::Active);
        c.set_server_state(ServerId(3), ServerState::Hibernated);
        assert_eq!(c.powered_count(), 1);
        assert!((c.total_power_w() - c.total_power_w_recomputed()).abs() < 1e-9);
        c.check_invariants();
    }

    #[test]
    fn indexed_views_match_filter_scan() {
        let fleet = Fleet::uniform(9, 4);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for sid in [1u32, 4, 7] {
            c.set_server_state(ServerId(sid), ServerState::Hibernated);
        }
        c.set_server_state(ServerId(4), ServerState::Waking { until_secs: 60.0 });
        let v = c.view();
        let indexed: Vec<u32> = v.powered().map(|(sid, _)| sid.0).collect();
        let scanned: Vec<u32> = v
            .iter()
            .filter(|(_, s)| s.is_powered())
            .map(|(sid, _)| sid.0)
            .collect();
        assert_eq!(indexed, scanned, "powered order must match the scan");
        let indexed_h: Vec<u32> = v.hibernated().map(|(sid, _)| sid.0).collect();
        let scanned_h: Vec<u32> = v
            .iter()
            .filter(|(_, s)| matches!(s.state, ServerState::Hibernated))
            .map(|(sid, _)| sid.0)
            .collect();
        assert_eq!(indexed_h, scanned_h);
    }

    #[test]
    fn rebase_aggregates_is_idempotent_when_exact() {
        let mut c = cluster_with_vms(3, &[500.0, 900.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(2), 0.0);
        let used = c.total_used_mhz();
        let power = c.total_power_w();
        c.rebase_aggregates();
        assert_eq!(c.total_used_mhz(), used);
        assert_eq!(c.total_power_w(), power);
    }

    #[test]
    fn migratable_excludes_in_flight() {
        let mut c = cluster_with_vms(2, &[500.0, 600.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(0), 0.0);
        c.vms[1].state = VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1),
        };
        let v = c.view();
        let movable: Vec<_> = v.migratable_vms(ServerId(0)).collect();
        assert_eq!(movable, vec![(VmId(0), 500.0)]);
    }

    #[test]
    fn failed_servers_leave_both_views() {
        let fleet = Fleet::uniform(3, 4);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        c.set_server_state(ServerId(1), ServerState::Failed { until_secs: 50.0 });
        assert_eq!(c.powered_count(), 2);
        assert_eq!(c.failed_count(), 1);
        assert_eq!(c.total_power_w(), c.total_power_w_recomputed());
        let v = c.view();
        assert!(v.powered().all(|(sid, _)| sid != ServerId(1)));
        assert!(v.hibernated().all(|(sid, _)| sid != ServerId(1)));
        c.check_invariants();
        c.set_server_state(ServerId(1), ServerState::Hibernated);
        assert_eq!(c.failed_count(), 0);
        assert_eq!(c.view().hibernated().count(), 1);
        c.check_invariants();
    }

    #[test]
    #[should_panic(expected = "not on server")]
    fn detach_missing_vm_panics() {
        let mut c = cluster_with_vms(1, &[100.0]);
        c.detach(VmId(0), ServerId(0), 0.0);
    }
}
