//! Cluster state: the dense server and VM stores plus the read-only
//! view handed to policies.

use crate::fleet::Fleet;
use crate::ids::{ServerId, VmId};
use crate::server::{Server, ServerState};
use crate::vm::{Vm, VmState};

/// Mutable cluster state owned by the engine.
#[derive(Debug)]
pub struct Cluster {
    /// All servers, indexed by [`ServerId`].
    pub servers: Vec<Server>,
    /// All VMs ever spawned, indexed by [`VmId`].
    pub vms: Vec<Vm>,
}

impl Cluster {
    /// Builds a cluster from a fleet with every server in `state` and
    /// no VMs.
    pub fn new(fleet: &Fleet, state: ServerState) -> Self {
        Self {
            servers: fleet
                .specs
                .iter()
                .map(|&spec| Server::new(spec, state))
                .collect(),
            vms: Vec::new(),
        }
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Servers currently powered (Active or Waking) — the paper's
    /// "active servers" metric (Fig. 7) counts machines drawing power.
    pub fn powered_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_powered()).count()
    }

    /// Total physical demand hosted, MHz.
    pub fn total_used_mhz(&self) -> f64 {
        self.servers.iter().map(|s| s.used_mhz).sum()
    }

    /// Total fleet capacity, MHz.
    pub fn total_capacity_mhz(&self) -> f64 {
        self.servers.iter().map(|s| s.capacity_mhz()).sum()
    }

    /// Instantaneous total power draw, watts.
    pub fn total_power_w(&self) -> f64 {
        self.servers.iter().map(|s| s.power_w()).sum()
    }

    /// Attaches an existing VM to a server, updating load accounting.
    /// The VM must not currently be hosted anywhere.
    pub fn attach(&mut self, vm: VmId, server: ServerId, now_secs: f64) {
        let demand = self.vms[vm.index()].demand_mhz;
        let ram = self.vms[vm.index()].ram_mb;
        let s = &mut self.servers[server.index()];
        debug_assert!(!s.vms.contains(&vm), "VM {vm} already attached to {server}");
        s.vms.push(vm);
        s.used_mhz += demand;
        s.used_ram_mb += ram;
        s.empty_since_secs = None;
        self.vms[vm.index()].state = VmState::Hosted { host: server };
        let _ = now_secs;
    }

    /// Detaches a VM from a server, updating load accounting; marks the
    /// server's `empty_since` when it just became empty.
    pub fn detach(&mut self, vm: VmId, server: ServerId, now_secs: f64) {
        let demand = self.vms[vm.index()].demand_mhz;
        let s = &mut self.servers[server.index()];
        let pos = s
            .vms
            .iter()
            .position(|&v| v == vm)
            .unwrap_or_else(|| panic!("VM {vm} not on server {server}"));
        s.vms.swap_remove(pos);
        s.used_mhz = (s.used_mhz - demand).max(0.0);
        s.used_ram_mb = (s.used_ram_mb - self.vms[vm.index()].ram_mb).max(0.0);
        if s.vms.is_empty() {
            s.used_mhz = 0.0; // clear accumulated float dust
            s.used_ram_mb = 0.0;
            s.empty_since_secs = Some(now_secs);
        }
    }

    /// Applies a demand change for a hosted VM, keeping the host's load
    /// in sync. Returns the server whose load changed, if any.
    pub fn update_vm_demand(&mut self, vm: VmId, new_demand_mhz: f64) -> Option<ServerId> {
        let old = self.vms[vm.index()].demand_mhz;
        self.vms[vm.index()].demand_mhz = new_demand_mhz;
        let host = self.vms[vm.index()].executing_on()?;
        let s = &mut self.servers[host.index()];
        s.used_mhz = (s.used_mhz - old + new_demand_mhz).max(0.0);
        // Keep the reservation at a migration target in sync too.
        if let VmState::Migrating { to, .. } = self.vms[vm.index()].state {
            let t = &mut self.servers[to.index()];
            t.reserved_mhz = (t.reserved_mhz - old + new_demand_mhz).max(0.0);
        }
        Some(host)
    }

    /// Checks internal consistency; used by tests and debug assertions.
    /// Verifies that each server's cached `used_mhz` equals the sum of
    /// its VMs' demands and that VM/host back-pointers agree.
    pub fn check_invariants(&self) {
        for (idx, s) in self.servers.iter().enumerate() {
            let sid = ServerId(idx as u32);
            let sum: f64 = s.vms.iter().map(|&v| self.vms[v.index()].demand_mhz).sum();
            assert!(
                (s.used_mhz - sum).abs() < 1e-6 * sum.max(1.0),
                "server {sid}: cached load {} != sum {}",
                s.used_mhz,
                sum
            );
            for &v in &s.vms {
                let on = self.vms[v.index()].executing_on();
                assert_eq!(on, Some(sid), "VM {v} host back-pointer mismatch");
            }
            assert!(s.reserved_mhz >= -1e-9, "negative reservation on {sid}");
            let ram_sum: f64 = s.vms.iter().map(|&v| self.vms[v.index()].ram_mb).sum();
            assert!(
                (s.used_ram_mb - ram_sum).abs() < 1e-6 * ram_sum.max(1.0),
                "server {sid}: cached RAM {} != sum {}",
                s.used_ram_mb,
                ram_sum
            );
        }
        for vm in &self.vms {
            if let Some(host) = vm.executing_on() {
                assert!(
                    self.servers[host.index()].vms.contains(&vm.id),
                    "VM {} not in host {host} list",
                    vm.id
                );
            }
        }
    }

    /// Read-only view for policies.
    pub fn view(&self) -> ClusterView<'_> {
        ClusterView {
            servers: &self.servers,
            vms: &self.vms,
        }
    }
}

/// Immutable snapshot of the cluster handed to policies.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    servers: &'a [Server],
    vms: &'a [Vm],
}

impl<'a> ClusterView<'a> {
    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Access to one server.
    pub fn server(&self, id: ServerId) -> &'a Server {
        &self.servers[id.index()]
    }

    /// Access to one VM.
    pub fn vm(&self, id: VmId) -> &'a Vm {
        &self.vms[id.index()]
    }

    /// Iterates `(id, server)` over all servers.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, &'a Server)> + '_ {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, s)| (ServerId(i as u32), s))
    }

    /// Iterates over powered (Active or Waking) servers — the set the
    /// manager's invitation broadcast reaches.
    pub fn powered(&self) -> impl Iterator<Item = (ServerId, &'a Server)> + '_ {
        self.iter().filter(|(_, s)| s.is_powered())
    }

    /// Iterates over hibernated servers — the wake-up candidates.
    pub fn hibernated(&self) -> impl Iterator<Item = (ServerId, &'a Server)> + '_ {
        self.iter()
            .filter(|(_, s)| matches!(s.state, ServerState::Hibernated))
    }

    /// `(vm, demand_mhz)` for every VM on `server` that is *not*
    /// already migrating — the candidates a monitor may move.
    pub fn migratable_vms(&self, server: ServerId) -> impl Iterator<Item = (VmId, f64)> + '_ {
        self.servers[server.index()]
            .vms
            .iter()
            .map(|&v| &self.vms[v.index()])
            .filter(|vm| !vm.is_migrating())
            .map(|vm| (vm.id, vm.demand_mhz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use crate::server::ServerState;

    fn cluster_with_vms(n_servers: usize, demands: &[f64]) -> Cluster {
        let fleet = Fleet::uniform(n_servers, 6);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for (i, &d) in demands.iter().enumerate() {
            c.vms.push(Vm {
                id: VmId(i as u32),
                trace_idx: 0,
                demand_mhz: d,
                ram_mb: 0.0,
                state: VmState::Departed, // attached below
                arrived_secs: 0.0,
                priority: Default::default(),
            });
        }
        c
    }

    #[test]
    fn attach_detach_keeps_load_in_sync() {
        let mut c = cluster_with_vms(2, &[1000.0, 2000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(0), 0.0);
        assert_eq!(c.servers[0].used_mhz, 3000.0);
        c.check_invariants();
        c.detach(VmId(0), ServerId(0), 5.0);
        assert_eq!(c.servers[0].used_mhz, 2000.0);
        assert!(c.servers[0].empty_since_secs.is_none());
        c.vms[1].state = VmState::Departed;
        c.detach(VmId(1), ServerId(0), 9.0);
        assert_eq!(c.servers[0].used_mhz, 0.0);
        assert_eq!(c.servers[0].empty_since_secs, Some(9.0));
    }

    #[test]
    fn demand_update_adjusts_host() {
        let mut c = cluster_with_vms(1, &[1000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        let host = c.update_vm_demand(VmId(0), 1500.0);
        assert_eq!(host, Some(ServerId(0)));
        assert_eq!(c.servers[0].used_mhz, 1500.0);
        c.check_invariants();
    }

    #[test]
    fn demand_update_tracks_migration_reservation() {
        let mut c = cluster_with_vms(2, &[1000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.vms[0].state = VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1),
        };
        c.servers[1].reserved_mhz = 1000.0;
        c.update_vm_demand(VmId(0), 800.0);
        assert_eq!(c.servers[0].used_mhz, 800.0);
        assert_eq!(c.servers[1].reserved_mhz, 800.0);
    }

    #[test]
    fn powered_count_and_views() {
        let fleet = Fleet::uniform(3, 4);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        c.servers[2].state = ServerState::Hibernated;
        assert_eq!(c.powered_count(), 2);
        let v = c.view();
        assert_eq!(v.powered().count(), 2);
        assert_eq!(v.hibernated().count(), 1);
        assert_eq!(v.n_servers(), 3);
    }

    #[test]
    fn migratable_excludes_in_flight() {
        let mut c = cluster_with_vms(2, &[500.0, 600.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(0), 0.0);
        c.vms[1].state = VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1),
        };
        let v = c.view();
        let movable: Vec<_> = v.migratable_vms(ServerId(0)).collect();
        assert_eq!(movable, vec![(VmId(0), 500.0)]);
    }

    #[test]
    #[should_panic(expected = "not on server")]
    fn detach_missing_vm_panics() {
        let mut c = cluster_with_vms(1, &[100.0]);
        c.detach(VmId(0), ServerId(0), 0.0);
    }
}
