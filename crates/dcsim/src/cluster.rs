//! Cluster state: the dense server and VM stores plus the read-only
//! view handed to policies.
//!
//! The cluster keeps three kinds of derived state incrementally so the
//! engine's hot path never scans the fleet:
//!
//! * running aggregates (`total_used_mhz`, `total_power_w`,
//!   `powered_count`) updated by every load or state mutation,
//! * sorted id indexes of powered and hibernated servers backing
//!   [`ClusterView::powered`] / [`ClusterView::hibernated`],
//! * per-server cached loads (as before).
//!
//! The O(N) scans survive as `*_recomputed` oracles; debug builds
//! reconcile the caches against them in [`Cluster::check_invariants`],
//! and [`Cluster::rebase_aggregates`] re-anchors the float sums at
//! every metrics sample so rounding drift stays bounded by one
//! sampling interval.
//!
//! Server **state** changes must go through
//! [`Cluster::set_server_state`] — writing `servers[i].state` directly
//! would desynchronize the indexes. Load mutations must go through
//! `attach` / `detach` / `update_vm_demand` for the same reason.

use crate::fleet::Fleet;
use crate::ids::{ServerId, VmId};
use crate::idset::SortedIdSet;
use crate::server::{Server, ServerState};
use crate::vm::{Vm, VmState};

/// Mutable cluster state owned by the engine.
#[derive(Debug)]
pub struct Cluster {
    /// All servers, indexed by [`ServerId`]. Mutate load and state via
    /// the cluster methods, not in place (see module docs).
    pub servers: Vec<Server>,
    /// All VMs ever spawned, indexed by [`VmId`].
    pub vms: Vec<Vm>,
    /// Running sum of hosted demand, MHz.
    agg_used_mhz: f64,
    /// Running sum of instantaneous power, watts.
    agg_power_w: f64,
    /// Fleet capacity, MHz (static after construction).
    agg_capacity_mhz: f64,
    /// Powered (Active or Waking) servers, ascending id order.
    powered: SortedIdSet,
    /// Hibernated servers, ascending id order.
    hibernated: SortedIdSet,
    /// Failed (crashed, awaiting repair) servers, ascending id order.
    /// Invisible to both policy views: a failed server can neither
    /// receive placements nor be woken.
    failed: SortedIdSet,
}

impl Cluster {
    /// Builds a cluster from a fleet with every server in `state` and
    /// no VMs.
    pub fn new(fleet: &Fleet, state: ServerState) -> Self {
        let servers: Vec<Server> = fleet
            .specs
            .iter()
            .map(|&spec| Server::new(spec, state))
            .collect();
        let mut cluster = Self {
            agg_used_mhz: 0.0,
            agg_power_w: servers.iter().map(|s| s.power_w()).sum(),
            agg_capacity_mhz: servers.iter().map(|s| s.capacity_mhz()).sum(),
            powered: SortedIdSet::with_capacity(servers.len()),
            hibernated: SortedIdSet::with_capacity(servers.len()),
            failed: SortedIdSet::new(),
            servers,
            vms: Vec::new(),
        };
        for i in 0..cluster.servers.len() {
            let id = i as u32;
            match cluster.servers[i].state {
                ServerState::Active | ServerState::Waking { .. } => cluster.powered.insert(id),
                ServerState::Hibernated => cluster.hibernated.insert(id),
                ServerState::Failed { .. } => cluster.failed.insert(id),
            };
        }
        cluster
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Servers currently powered (Active or Waking) — the paper's
    /// "active servers" metric (Fig. 7) counts machines drawing power.
    /// O(1) from the index.
    pub fn powered_count(&self) -> usize {
        self.powered.len()
    }

    /// Total physical demand hosted, MHz. O(1) from the running sum.
    pub fn total_used_mhz(&self) -> f64 {
        self.agg_used_mhz.max(0.0)
    }

    /// Total fleet capacity, MHz.
    pub fn total_capacity_mhz(&self) -> f64 {
        self.agg_capacity_mhz
    }

    /// Instantaneous total power draw, watts. O(1) from the running
    /// sum (clamped: float dust must never feed a negative power into
    /// the energy integrator).
    pub fn total_power_w(&self) -> f64 {
        self.agg_power_w.max(0.0)
    }

    /// O(N) oracle for [`Self::powered_count`].
    pub fn powered_count_recomputed(&self) -> usize {
        self.servers.iter().filter(|s| s.is_powered()).count()
    }

    /// O(N) oracle for [`Self::total_used_mhz`].
    pub fn total_used_mhz_recomputed(&self) -> f64 {
        self.servers.iter().map(|s| s.used_mhz).sum()
    }

    /// O(N) oracle for [`Self::total_capacity_mhz`].
    pub fn total_capacity_mhz_recomputed(&self) -> f64 {
        self.servers.iter().map(|s| s.capacity_mhz()).sum()
    }

    /// O(N) oracle for [`Self::total_power_w`].
    pub fn total_power_w_recomputed(&self) -> f64 {
        self.servers.iter().map(|s| s.power_w()).sum()
    }

    /// Transitions a server to `state`, keeping the power aggregate and
    /// the powered/hibernated/failed indexes in sync.
    pub fn set_server_state(&mut self, sid: ServerId, state: ServerState) {
        let id = sid.0;
        let s = &mut self.servers[sid.index()];
        let power_before = s.power_w();
        s.state = state;
        self.agg_power_w += s.power_w() - power_before;
        self.powered.remove(id);
        self.hibernated.remove(id);
        self.failed.remove(id);
        match state {
            ServerState::Active | ServerState::Waking { .. } => self.powered.insert(id),
            ServerState::Hibernated => self.hibernated.insert(id),
            ServerState::Failed { .. } => self.failed.insert(id),
        };
    }

    /// Number of failed servers, O(1).
    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    /// Attaches an existing VM to a server, updating load accounting.
    /// The VM must not currently be hosted anywhere.
    pub fn attach(&mut self, vm: VmId, server: ServerId, now_secs: f64) {
        let demand = self.vms[vm.index()].demand_mhz;
        let ram = self.vms[vm.index()].ram_mb;
        let s = &mut self.servers[server.index()];
        debug_assert!(!s.vms.contains(&vm), "VM {vm} already attached to {server}");
        let used_before = s.used_mhz;
        let power_before = s.power_w();
        s.vms.push(vm);
        s.used_mhz += demand;
        s.used_ram_mb += ram;
        s.empty_since_secs = None;
        self.agg_used_mhz += s.used_mhz - used_before;
        self.agg_power_w += s.power_w() - power_before;
        self.vms[vm.index()].state = VmState::Hosted { host: server };
        let _ = now_secs;
    }

    /// Detaches a VM from a server, updating load accounting; marks the
    /// server's `empty_since` when it just became empty.
    pub fn detach(&mut self, vm: VmId, server: ServerId, now_secs: f64) {
        let demand = self.vms[vm.index()].demand_mhz;
        let ram = self.vms[vm.index()].ram_mb;
        let s = &mut self.servers[server.index()];
        let pos = s
            .vms
            .iter()
            .position(|&v| v == vm)
            .unwrap_or_else(|| panic!("VM {vm} not on server {server}"));
        let used_before = s.used_mhz;
        let power_before = s.power_w();
        s.vms.swap_remove(pos);
        s.used_mhz = (s.used_mhz - demand).max(0.0);
        s.used_ram_mb = (s.used_ram_mb - ram).max(0.0);
        if s.vms.is_empty() {
            s.used_mhz = 0.0; // clear accumulated float dust
            s.used_ram_mb = 0.0;
            s.empty_since_secs = Some(now_secs);
        }
        self.agg_used_mhz += s.used_mhz - used_before;
        self.agg_power_w += s.power_w() - power_before;
    }

    /// Applies a demand change for a hosted VM, keeping the host's load
    /// in sync. Returns the server whose load changed, if any.
    pub fn update_vm_demand(&mut self, vm: VmId, new_demand_mhz: f64) -> Option<ServerId> {
        let old = self.vms[vm.index()].demand_mhz;
        self.vms[vm.index()].demand_mhz = new_demand_mhz;
        let host = self.vms[vm.index()].executing_on()?;
        let s = &mut self.servers[host.index()];
        let used_before = s.used_mhz;
        let power_before = s.power_w();
        s.used_mhz = (s.used_mhz - old + new_demand_mhz).max(0.0);
        self.agg_used_mhz += s.used_mhz - used_before;
        self.agg_power_w += s.power_w() - power_before;
        // Keep the reservation at a migration target in sync too.
        if let VmState::Migrating { to, .. } = self.vms[vm.index()].state {
            let t = &mut self.servers[to.index()];
            t.reserved_mhz = (t.reserved_mhz - old + new_demand_mhz).max(0.0);
        }
        Some(host)
    }

    /// Re-anchors the float aggregates on a fresh O(N) recompute.
    ///
    /// The incremental sums accumulate one rounding error per mutation;
    /// calling this on the (already O(N)) metrics-sample path bounds
    /// the drift to one sampling interval. Debug builds assert the
    /// drift really was only rounding-level before re-anchoring.
    pub fn rebase_aggregates(&mut self) {
        let used = self.total_used_mhz_recomputed();
        let power = self.total_power_w_recomputed();
        debug_assert!(
            (self.agg_used_mhz - used).abs() <= 1e-6 * used.abs().max(1.0),
            "used-MHz aggregate drifted: cached {} vs recomputed {used}",
            self.agg_used_mhz
        );
        debug_assert!(
            (self.agg_power_w - power).abs() <= 1e-6 * power.abs().max(1.0),
            "power aggregate drifted: cached {} vs recomputed {power}",
            self.agg_power_w
        );
        self.agg_used_mhz = used;
        self.agg_power_w = power;
    }

    /// Checks internal consistency; used by tests and debug assertions.
    /// Verifies that each server's cached `used_mhz` equals the sum of
    /// its VMs' demands, that VM/host back-pointers agree, that the
    /// incremental aggregates match their O(N) oracles, and that the
    /// powered/hibernated indexes partition the fleet by state.
    pub fn check_invariants(&self) {
        for (idx, s) in self.servers.iter().enumerate() {
            let sid = ServerId(idx as u32);
            let sum: f64 = s.vms.iter().map(|&v| self.vms[v.index()].demand_mhz).sum();
            assert!(
                (s.used_mhz - sum).abs() < 1e-6 * sum.max(1.0),
                "server {sid}: cached load {} != sum {}",
                s.used_mhz,
                sum
            );
            for &v in &s.vms {
                let on = self.vms[v.index()].executing_on();
                assert_eq!(on, Some(sid), "VM {v} host back-pointer mismatch");
            }
            assert!(s.reserved_mhz >= -1e-9, "negative reservation on {sid}");
            let ram_sum: f64 = s.vms.iter().map(|&v| self.vms[v.index()].ram_mb).sum();
            assert!(
                (s.used_ram_mb - ram_sum).abs() < 1e-6 * ram_sum.max(1.0),
                "server {sid}: cached RAM {} != sum {}",
                s.used_ram_mb,
                ram_sum
            );
            assert_eq!(
                self.powered.contains(sid.0),
                s.is_powered(),
                "powered index out of sync for {sid}"
            );
            assert_eq!(
                self.hibernated.contains(sid.0),
                matches!(s.state, ServerState::Hibernated),
                "hibernated index out of sync for {sid}"
            );
            assert_eq!(
                self.failed.contains(sid.0),
                matches!(s.state, ServerState::Failed { .. }),
                "failed index out of sync for {sid}"
            );
            if matches!(s.state, ServerState::Failed { .. }) {
                assert!(s.vms.is_empty(), "failed server {sid} still hosts VMs");
                assert_eq!(
                    s.reserved_count, 0,
                    "failed server {sid} still holds migration reservations"
                );
            }
        }
        for vm in &self.vms {
            if let Some(host) = vm.executing_on() {
                assert!(
                    self.servers[host.index()].vms.contains(&vm.id),
                    "VM {} not in host {host} list",
                    vm.id
                );
            }
        }
        assert_eq!(
            self.powered.len() + self.hibernated.len() + self.failed.len(),
            self.servers.len(),
            "powered/hibernated/failed indexes do not partition the fleet"
        );
        assert_eq!(self.powered_count(), self.powered_count_recomputed());
        let used = self.total_used_mhz_recomputed();
        assert!(
            (self.agg_used_mhz - used).abs() <= 1e-6 * used.abs().max(1.0),
            "used-MHz aggregate out of sync: cached {} vs {used}",
            self.agg_used_mhz
        );
        let power = self.total_power_w_recomputed();
        assert!(
            (self.agg_power_w - power).abs() <= 1e-6 * power.abs().max(1.0),
            "power aggregate out of sync: cached {} vs {power}",
            self.agg_power_w
        );
        let cap = self.total_capacity_mhz_recomputed();
        assert!(
            (self.agg_capacity_mhz - cap).abs() <= 1e-9 * cap.max(1.0),
            "capacity aggregate out of sync: cached {} vs {cap}",
            self.agg_capacity_mhz
        );
    }

    /// Read-only view for policies.
    pub fn view(&self) -> ClusterView<'_> {
        ClusterView {
            servers: &self.servers,
            vms: &self.vms,
            powered: &self.powered,
            hibernated: &self.hibernated,
        }
    }
}

/// Immutable snapshot of the cluster handed to policies.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    servers: &'a [Server],
    vms: &'a [Vm],
    powered: &'a SortedIdSet,
    hibernated: &'a SortedIdSet,
}

impl<'a> ClusterView<'a> {
    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of powered servers, O(1).
    pub fn n_powered(&self) -> usize {
        self.powered.len()
    }

    /// Number of hibernated servers, O(1).
    pub fn n_hibernated(&self) -> usize {
        self.hibernated.len()
    }

    /// Access to one server.
    pub fn server(&self, id: ServerId) -> &'a Server {
        &self.servers[id.index()]
    }

    /// Access to one VM.
    pub fn vm(&self, id: VmId) -> &'a Vm {
        &self.vms[id.index()]
    }

    /// Iterates `(id, server)` over all servers.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, &'a Server)> + '_ {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, s)| (ServerId(i as u32), s))
    }

    /// Iterates over powered (Active or Waking) servers — the set the
    /// manager's invitation broadcast reaches. Backed by the sorted
    /// index: O(powered), ascending id order (identical to the
    /// filter-based scan it replaces).
    pub fn powered(&self) -> impl Iterator<Item = (ServerId, &'a Server)> + '_ {
        let servers = self.servers;
        self.powered
            .iter()
            .map(move |id| (ServerId(id), &servers[id as usize]))
    }

    /// Iterates over hibernated servers — the wake-up candidates.
    /// Backed by the sorted index: O(hibernated), ascending id order.
    pub fn hibernated(&self) -> impl Iterator<Item = (ServerId, &'a Server)> + '_ {
        let servers = self.servers;
        self.hibernated
            .iter()
            .map(move |id| (ServerId(id), &servers[id as usize]))
    }

    /// `(vm, demand_mhz)` for every VM on `server` that is *not*
    /// already migrating — the candidates a monitor may move.
    pub fn migratable_vms(&self, server: ServerId) -> impl Iterator<Item = (VmId, f64)> + '_ {
        self.servers[server.index()]
            .vms
            .iter()
            .map(|&v| &self.vms[v.index()])
            .filter(|vm| !vm.is_migrating())
            .map(|vm| (vm.id, vm.demand_mhz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use crate::server::ServerState;

    fn cluster_with_vms(n_servers: usize, demands: &[f64]) -> Cluster {
        let fleet = Fleet::uniform(n_servers, 6);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for (i, &d) in demands.iter().enumerate() {
            c.vms.push(Vm {
                id: VmId(i as u32),
                trace_idx: 0,
                demand_mhz: d,
                ram_mb: 0.0,
                state: VmState::Departed, // attached below
                arrived_secs: 0.0,
                priority: Default::default(),
                migration_seq: 0,
                lifetime_secs: None,
                started: false,
            });
        }
        c
    }

    #[test]
    fn attach_detach_keeps_load_in_sync() {
        let mut c = cluster_with_vms(2, &[1000.0, 2000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(0), 0.0);
        assert_eq!(c.servers[0].used_mhz, 3000.0);
        assert_eq!(c.total_used_mhz(), 3000.0);
        c.check_invariants();
        c.detach(VmId(0), ServerId(0), 5.0);
        assert_eq!(c.servers[0].used_mhz, 2000.0);
        assert_eq!(c.total_used_mhz(), 2000.0);
        assert!(c.servers[0].empty_since_secs.is_none());
        c.vms[1].state = VmState::Departed;
        c.detach(VmId(1), ServerId(0), 9.0);
        assert_eq!(c.servers[0].used_mhz, 0.0);
        assert_eq!(c.total_used_mhz(), 0.0);
        assert_eq!(c.servers[0].empty_since_secs, Some(9.0));
    }

    #[test]
    fn demand_update_adjusts_host() {
        let mut c = cluster_with_vms(1, &[1000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        let host = c.update_vm_demand(VmId(0), 1500.0);
        assert_eq!(host, Some(ServerId(0)));
        assert_eq!(c.servers[0].used_mhz, 1500.0);
        assert_eq!(c.total_used_mhz(), 1500.0);
        c.check_invariants();
    }

    #[test]
    fn demand_update_tracks_migration_reservation() {
        let mut c = cluster_with_vms(2, &[1000.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.vms[0].state = VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1),
        };
        c.servers[1].reserved_mhz = 1000.0;
        c.update_vm_demand(VmId(0), 800.0);
        assert_eq!(c.servers[0].used_mhz, 800.0);
        assert_eq!(c.servers[1].reserved_mhz, 800.0);
    }

    #[test]
    fn powered_count_and_views() {
        let fleet = Fleet::uniform(3, 4);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        c.set_server_state(ServerId(2), ServerState::Hibernated);
        assert_eq!(c.powered_count(), 2);
        let v = c.view();
        assert_eq!(v.powered().count(), 2);
        assert_eq!(v.hibernated().count(), 1);
        assert_eq!(v.n_powered(), 2);
        assert_eq!(v.n_hibernated(), 1);
        assert_eq!(v.n_servers(), 3);
        c.check_invariants();
    }

    #[test]
    fn state_transitions_track_power_aggregate() {
        let fleet = Fleet::uniform(4, 6);
        let mut c = Cluster::new(&fleet, ServerState::Hibernated);
        assert_eq!(c.total_power_w(), 0.0);
        assert_eq!(c.powered_count(), 0);
        c.set_server_state(ServerId(1), ServerState::Waking { until_secs: 120.0 });
        c.set_server_state(ServerId(3), ServerState::Active);
        assert_eq!(c.powered_count(), 2);
        assert!((c.total_power_w() - c.total_power_w_recomputed()).abs() < 1e-9);
        c.set_server_state(ServerId(1), ServerState::Active);
        c.set_server_state(ServerId(3), ServerState::Hibernated);
        assert_eq!(c.powered_count(), 1);
        assert!((c.total_power_w() - c.total_power_w_recomputed()).abs() < 1e-9);
        c.check_invariants();
    }

    #[test]
    fn indexed_views_match_filter_scan() {
        let fleet = Fleet::uniform(9, 4);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        for sid in [1u32, 4, 7] {
            c.set_server_state(ServerId(sid), ServerState::Hibernated);
        }
        c.set_server_state(ServerId(4), ServerState::Waking { until_secs: 60.0 });
        let v = c.view();
        let indexed: Vec<u32> = v.powered().map(|(sid, _)| sid.0).collect();
        let scanned: Vec<u32> = v
            .iter()
            .filter(|(_, s)| s.is_powered())
            .map(|(sid, _)| sid.0)
            .collect();
        assert_eq!(indexed, scanned, "powered order must match the scan");
        let indexed_h: Vec<u32> = v.hibernated().map(|(sid, _)| sid.0).collect();
        let scanned_h: Vec<u32> = v
            .iter()
            .filter(|(_, s)| matches!(s.state, ServerState::Hibernated))
            .map(|(sid, _)| sid.0)
            .collect();
        assert_eq!(indexed_h, scanned_h);
    }

    #[test]
    fn rebase_aggregates_is_idempotent_when_exact() {
        let mut c = cluster_with_vms(3, &[500.0, 900.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(2), 0.0);
        let used = c.total_used_mhz();
        let power = c.total_power_w();
        c.rebase_aggregates();
        assert_eq!(c.total_used_mhz(), used);
        assert_eq!(c.total_power_w(), power);
    }

    #[test]
    fn migratable_excludes_in_flight() {
        let mut c = cluster_with_vms(2, &[500.0, 600.0]);
        c.attach(VmId(0), ServerId(0), 0.0);
        c.attach(VmId(1), ServerId(0), 0.0);
        c.vms[1].state = VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1),
        };
        let v = c.view();
        let movable: Vec<_> = v.migratable_vms(ServerId(0)).collect();
        assert_eq!(movable, vec![(VmId(0), 500.0)]);
    }

    #[test]
    fn failed_servers_leave_both_views() {
        let fleet = Fleet::uniform(3, 4);
        let mut c = Cluster::new(&fleet, ServerState::Active);
        c.set_server_state(ServerId(1), ServerState::Failed { until_secs: 50.0 });
        assert_eq!(c.powered_count(), 2);
        assert_eq!(c.failed_count(), 1);
        assert_eq!(c.total_power_w(), c.total_power_w_recomputed());
        let v = c.view();
        assert!(v.powered().all(|(sid, _)| sid != ServerId(1)));
        assert!(v.hibernated().all(|(sid, _)| sid != ServerId(1)));
        c.check_invariants();
        c.set_server_state(ServerId(1), ServerState::Hibernated);
        assert_eq!(c.failed_count(), 0);
        assert_eq!(c.view().hibernated().count(), 1);
        c.check_invariants();
    }

    #[test]
    #[should_panic(expected = "not on server")]
    fn detach_missing_vm_panics() {
        let mut c = cluster_with_vms(1, &[100.0]);
        c.detach(VmId(0), ServerId(0), 0.0);
    }
}
