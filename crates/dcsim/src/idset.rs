//! A sorted set of dense u32 ids.
//!
//! The cluster keeps one of these per server-state class so that
//! policies iterate only eligible servers instead of filtering the
//! whole fleet. Iteration is in ascending id order — the same order a
//! filter over the dense server vector produces — which keeps the RNG
//! consumption sequence of seeded policies identical to the scan-based
//! implementation and therefore preserves fixed-seed trajectories.
//!
//! Membership changes are O(log n) to locate plus O(n) to shift; state
//! transitions (activations, hibernations) are rare next to the
//! per-event iteration this set accelerates, so the simple sorted
//! `Vec<u32>` wins over hash sets (no ordering) and swap-remove dense
//! sets (order depends on mutation history, breaking determinism).

/// A sorted set of `u32` ids with ascending-order iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedIdSet {
    ids: Vec<u32>,
}

impl SortedIdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with room for `cap` ids.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            ids: Vec::with_capacity(cap),
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set holds no ids.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts `id`; returns true when it was not already present.
    pub fn insert(&mut self, id: u32) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes `id`; returns true when it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Removes all ids.
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// Iterates ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }

    /// The ids as a sorted slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.ids
    }
}

impl FromIterator<u32> for SortedIdSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut ids: Vec<u32> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SortedIdSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert!(!s.insert(3), "duplicate insert must be a no-op");
        assert_eq!(s.len(), 3);
        assert!(s.contains(1) && s.contains(3) && s.contains(5));
        assert!(!s.contains(2));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn iterates_in_ascending_order() {
        let mut s = SortedIdSet::new();
        for id in [9, 2, 7, 0, 4] {
            s.insert(id);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 4, 7, 9]);
        assert_eq!(s.as_slice(), &[0, 2, 4, 7, 9]);
    }

    #[test]
    fn from_iterator_sorts_and_dedups() {
        let s: SortedIdSet = [3u32, 1, 3, 2, 1].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn clear_empties() {
        let mut s: SortedIdSet = (0..10).collect();
        assert_eq!(s.len(), 10);
        s.clear();
        assert!(s.is_empty());
    }
}
