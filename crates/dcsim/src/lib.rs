//! A discrete-event data-center simulator.
//!
//! This crate is the substrate the ecoCloud paper's evaluation runs on:
//! it reproduces, in Rust, the modelling granularity of the authors'
//! "home-made Java simulator" (§III):
//!
//! * heterogeneous multi-core servers (the paper's fleet: 2 GHz cores,
//!   one third each of 4-, 6- and 8-core machines) with a linear power
//!   curve whose idle draw is ~70 % of peak (§I),
//! * trace-driven VMs whose CPU demand changes every 5 minutes,
//! * live migration with a configurable latency, during which the VM
//!   keeps running at the source and is *reserved* at the target,
//! * server sleep states with wake-up latency and idle-timeout
//!   hibernation,
//! * proportional-share CPU under overload, with per-violation duration
//!   and granted-fraction accounting (the inputs to the paper's Fig. 11
//!   and its "98 % of violations shorter than 30 s" claim),
//! * a 30-minute metrics sampler and per-hour event counters (Figs.
//!   6–10).
//!
//! Placement decisions are delegated to a [`policy::Policy`]
//! implementation — the ecoCloud algorithm lives in the
//! `ecocloud-core` crate, centralized baselines in
//! `ecocloud-baselines`; the simulator itself is policy-agnostic.
//!
//! The simulation is fully deterministic: every run is a pure function
//! of `(Fleet, Workload, SimConfig, Policy seed)`. Fleet-wide sweep
//! phases can additionally be sharded over worker threads without
//! changing a single output byte — see [`shard`] for the contract.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub(crate) mod control;
pub mod engine;
pub mod events;
pub mod fleet;
pub mod ids;
pub mod idset;
pub mod log;
pub mod policy;
pub mod server;
pub mod shard;
pub mod sla;
pub mod stats;
pub mod vm;
pub mod workload;

pub use checkpoint::{Checkpoint, CheckpointError, CRATE_VERSION};
pub use cluster::{Cluster, ClusterView, HotFleet, ServerRef};
pub use config::{ConfigError, ControlPlaneConfig, FaultConfig, SimConfig};
pub use engine::{SimResult, Simulation};
pub use fleet::Fleet;
pub use ids::{ServerId, VmId};
pub use idset::SortedIdSet;
pub use log::{AbortReason, EventLog, SimEvent};
pub use policy::{
    MigrationKind, MigrationRequest, PlaceOutcome, PlacementKind, PlacementRequest, Policy,
};
pub use server::{PowerModel, Server, ServerSpec, ServerState};
pub use shard::{ShardConfig, ShardPlan};
pub use sla::{OverloadSharing, VmPriority};
pub use stats::SimStats;
pub use vm::{Vm, VmState};
pub use workload::{InitialPlacement, VmSpawn, Workload};
