//! The event calendar.
//!
//! A bucketed calendar queue over `(time, sequence)` keys (Brown 1988),
//! sized for the simulator's natural cadences: the 5-minute
//! DemandUpdate / MonitorTick chains land in O(1) buckets, while
//! far-future events (departures, repairs, hibernate checks) wait in an
//! overflow heap until the wheel window reaches them. The monotone
//! sequence number makes simultaneous events fire in insertion order,
//! which — together with seeded RNGs — makes every run exactly
//! reproducible.
//!
//! Pop order is *identical* to the plain binary-heap calendar this
//! replaced: each pop selects the `(time, seq)` minimum of the cursor
//! bucket (the same total order the heap used), bucket membership
//! partitions events by time, and the overflow heap only ever holds
//! events later than everything in the wheel. The old heap survives as
//! [`EventQueue::reference_heap`], both as the oracle for the
//! equivalence proptests below and as a whole-engine cross-check
//! (`SimConfig::reference_event_queue`). See `DESIGN.md` §14 for the
//! full determinism argument.

use crate::checkpoint::{CheckpointError, Dec, Enc};
use crate::ids::{ServerId, VmId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Refresh every VM's demand from its trace (every 5 simulated
    /// minutes, the CoMon cadence).
    DemandUpdate,
    /// A server runs its migration monitor (§II: "each server monitors
    /// its CPU utilization ... every few seconds").
    MonitorTick(ServerId),
    /// A workload VM arrives (index into the spawn list).
    Spawn(usize),
    /// A VM's lifetime expires.
    Departure(VmId),
    /// A live migration finishes. Carries the VM's migration epoch at
    /// scheduling time; a mismatch at delivery means the migration was
    /// aborted (rollback, departure, crash) and the event is stale.
    MigrationComplete(VmId, u32),
    /// A waking server becomes active. Carries the server's wake epoch
    /// at scheduling time; a mismatch at delivery means the wake was
    /// retried or cancelled and the event is stale.
    WakeComplete(ServerId, u32),
    /// Check whether an idle server should hibernate.
    HibernateCheck(ServerId),
    /// Sample the 30-minute metrics (Figs. 6–11 cadence).
    MetricsSample,
    /// The next injected server crash fires (self-rescheduling chain;
    /// only ever scheduled when the fault schedule enables crashes).
    FaultCrash,
    /// A crashed server's repair completes; it rejoins the hibernated
    /// pool.
    FaultRepair(ServerId),
    /// The manager's acceptance-collection window for a placement
    /// exchange closes; acceptances received in time are now eligible
    /// for a commit. Carries `(exchange id, exchange epoch)`; a
    /// mismatched epoch means the exchange already moved on and the
    /// event is stale.
    ExchangeCollect(u64, u32),
    /// A commit message arrives at the chosen server, triggering the
    /// admission re-check against its *current* state. Carries
    /// `(exchange id, exchange epoch)`.
    ExchangeCommitArrive(u64, u32),
    /// The manager gives up waiting for the outcome of a commit (the
    /// commit or its NACK was lost in flight) and retries. Carries
    /// `(exchange id, exchange epoch)`.
    ExchangeCommitTimeout(u64, u32),
    /// A NACK from a stale commit arrives back at the manager, which
    /// retries the remaining acceptors. Carries `(exchange id,
    /// exchange epoch)`.
    ExchangeNackArrive(u64, u32),
    /// A backed-off invitation re-broadcast fires. Carries
    /// `(exchange id, exchange epoch)`.
    ExchangeRebroadcast(u64, u32),
}

impl Event {
    /// Checkpoint encoding: a one-byte variant tag plus the payload
    /// fields. Tags are part of the on-disk format — append new
    /// variants, never renumber.
    pub(crate) fn encode(&self, e: &mut Enc) {
        match *self {
            Event::DemandUpdate => e.u8(0),
            Event::MonitorTick(s) => {
                e.u8(1);
                e.u32(s.0);
            }
            Event::Spawn(i) => {
                e.u8(2);
                e.usize(i);
            }
            Event::Departure(v) => {
                e.u8(3);
                e.u32(v.0);
            }
            Event::MigrationComplete(v, epoch) => {
                e.u8(4);
                e.u32(v.0);
                e.u32(epoch);
            }
            Event::WakeComplete(s, epoch) => {
                e.u8(5);
                e.u32(s.0);
                e.u32(epoch);
            }
            Event::HibernateCheck(s) => {
                e.u8(6);
                e.u32(s.0);
            }
            Event::MetricsSample => e.u8(7),
            Event::FaultCrash => e.u8(8),
            Event::FaultRepair(s) => {
                e.u8(9);
                e.u32(s.0);
            }
            Event::ExchangeCollect(id, epoch) => {
                e.u8(10);
                e.u64(id);
                e.u32(epoch);
            }
            Event::ExchangeCommitArrive(id, epoch) => {
                e.u8(11);
                e.u64(id);
                e.u32(epoch);
            }
            Event::ExchangeCommitTimeout(id, epoch) => {
                e.u8(12);
                e.u64(id);
                e.u32(epoch);
            }
            Event::ExchangeNackArrive(id, epoch) => {
                e.u8(13);
                e.u64(id);
                e.u32(epoch);
            }
            Event::ExchangeRebroadcast(id, epoch) => {
                e.u8(14);
                e.u64(id);
                e.u32(epoch);
            }
        }
    }

    /// Checkpoint decoding, inverse of [`encode`](Self::encode).
    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<Self, CheckpointError> {
        Ok(match d.u8()? {
            0 => Event::DemandUpdate,
            1 => Event::MonitorTick(ServerId(d.u32()?)),
            2 => Event::Spawn(d.usize()?),
            3 => Event::Departure(VmId(d.u32()?)),
            4 => Event::MigrationComplete(VmId(d.u32()?), d.u32()?),
            5 => Event::WakeComplete(ServerId(d.u32()?), d.u32()?),
            6 => Event::HibernateCheck(ServerId(d.u32()?)),
            7 => Event::MetricsSample,
            8 => Event::FaultCrash,
            9 => Event::FaultRepair(ServerId(d.u32()?)),
            10 => Event::ExchangeCollect(d.u64()?, d.u32()?),
            11 => Event::ExchangeCommitArrive(d.u64()?, d.u32()?),
            12 => Event::ExchangeCommitTimeout(d.u64()?, d.u32()?),
            13 => Event::ExchangeNackArrive(d.u64()?, d.u32()?),
            14 => Event::ExchangeRebroadcast(d.u64()?, d.u32()?),
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown event tag {other}"
                )))
            }
        })
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    t_secs: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.t_secs == other.t_secs && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the
        // earliest (time, seq) first. `total_cmp` makes the ordering
        // total even for values `schedule`'s guards miss, so the heap
        // can never be corrupted by a comparison panic mid-sift.
        other
            .t_secs
            .total_cmp(&self.t_secs)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The wheel always spans this many simulated seconds, regardless of
/// bucket count: twice the 5-minute cadence that dominates the event
/// population, so a self-rescheduling chain re-enters the wheel
/// directly instead of bouncing through the overflow heap.
const WHEEL_SPAN_SECS: f64 = 600.0;
/// Bucket-count bounds (powers of two). The wheel grows once the event
/// population exceeds [`GROW_LOAD_FACTOR`] events per bucket.
const MIN_BUCKETS: usize = 64;
const MAX_BUCKETS: usize = 1 << 21;
const GROW_LOAD_FACTOR: usize = 2;

/// Inline event slots per wheel bucket: four 32-byte `Scheduled`
/// entries make a bucket's storage exactly two cache lines with no
/// header. Occupancy lives in the dense `lens` side array instead, so
/// a push never loads the (cold) bucket line it stores into, and the
/// growth policy holds mean occupancy at or below [`GROW_LOAD_FACTOR`]
/// so a pop's min-scan rarely reads past the first line.
const SLOT_CAP: usize = 4;

/// Placeholder filling unused inline slots (never observed: `lens`
/// bounds every read).
const VACANT: Scheduled = Scheduled {
    t_secs: 0.0,
    seq: 0,
    event: Event::MetricsSample,
};

/// Best-effort prefetch of the cache line holding `*p` (no-op off
/// x86_64). Purely a latency hint with no architectural effect, so
/// determinism is untouched.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch does not dereference; any address is allowed.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// True when `a` pops before `b` — exactly the reference heap's
/// priority, so in-bucket selection can never diverge from the oracle.
#[inline]
fn earlier(a: &Scheduled, b: &Scheduled) -> bool {
    a.cmp(b) == Ordering::Greater // `Ord` is reversed for the max-heap
}

/// The bucketed calendar.
#[derive(Debug)]
struct Calendar {
    /// Per-bucket occupancy, one byte per slot. Dense, so the hot
    /// paths read a cache-resident array instead of a scattered
    /// per-bucket header.
    lens: Vec<u8>,
    /// Ring of inline bucket storage: slot `i` holds `lens[i]` live
    /// events in `slots[i][..lens[i]]`, unordered. Bucket `b`
    /// (absolute index) lives at slot `b & mask` while
    /// `base <= b < base + n_buckets`. A push is a single store; a pop
    /// scans at most [`SLOT_CAP`] contiguous entries for the
    /// `(time, seq)` minimum.
    slots: Vec<[Scheduled; SLOT_CAP]>,
    /// Occupancy bitmap, one bit per slot (bit set ⇔ bucket holds
    /// events, inline or spilled). At 64 slots per u64 word the whole
    /// map stays cache-resident, so the cursor skips runs of empty
    /// buckets with word scans instead of touching each bucket.
    live: Vec<u64>,
    /// Second-level bitmap: bit set ⇔ `lens[slot] >= 2`. Mean
    /// occupancy is near one, so most pushes target an empty bucket
    /// and most pops drain a single-event bucket — with this map both
    /// cases skip the random `lens` load entirely (a push becomes two
    /// blind stores, a pop reads only the prefetched bucket line) and
    /// only multi-event buckets fall back to exact counts.
    multi: Vec<u64>,
    /// Wheel-resident events that did not fit their bucket's inline
    /// slots (rare: growth bounds mean occupancy). Globally
    /// `(time, seq)`-ordered. Two invariants make the merge at pop
    /// exact: bucket index is monotone in time, so the heap's top
    /// always belongs to the earliest un-drained spill bucket; and the
    /// cursor never passes an occupied bucket, so re-deriving the
    /// top's bucket index with `bucket_of` at pop time reproduces the
    /// index it was stored under (including for clamped stragglers,
    /// which are only ever stored at — and drained from — the cursor
    /// bucket itself).
    wheel_spill: BinaryHeap<Scheduled>,
    /// `n_buckets - 1`; bucket count is always a power of two.
    mask: usize,
    /// Seconds per bucket (`WHEEL_SPAN_SECS / n_buckets`).
    width: f64,
    /// `1.0 / width`, so the hot `bucket_of` map is a multiply instead
    /// of a serial-latency divide. The map only has to be monotone in
    /// `t` and consistent across insert/migrate within one
    /// `(width, base)` regime — which any fixed factor is — so the
    /// reciprocal's rounding differences from true division are
    /// harmless to pop order.
    inv_width: f64,
    /// Absolute index of the cursor bucket (the bucket the next pop
    /// inspects first). Only ever advances.
    base: u64,
    /// Events currently stored in the wheel (inline or spilled).
    in_wheel: usize,
    /// Events at absolute bucket `>= base + n_buckets`, i.e. beyond the
    /// wheel's current window. Strictly later than everything in the
    /// wheel; migrated in as the cursor advances.
    overflow: BinaryHeap<Scheduled>,
}

impl Calendar {
    fn new(n_buckets: usize, overflow_capacity: usize) -> Self {
        debug_assert!(n_buckets.is_power_of_two());
        Calendar {
            lens: vec![0u8; n_buckets],
            slots: vec![[VACANT; SLOT_CAP]; n_buckets],
            live: vec![0u64; n_buckets.div_ceil(64)],
            multi: vec![0u64; n_buckets.div_ceil(64)],
            wheel_spill: BinaryHeap::new(),
            mask: n_buckets - 1,
            width: WHEEL_SPAN_SECS / n_buckets as f64,
            inv_width: n_buckets as f64 / WHEEL_SPAN_SECS,
            base: 0,
            in_wheel: 0,
            overflow: BinaryHeap::with_capacity(overflow_capacity),
        }
    }

    #[inline]
    fn n_buckets(&self) -> usize {
        self.mask + 1
    }

    /// Inserts into the wheel bucket at absolute index `b` (must be
    /// inside the window) and marks its slot live.
    #[inline]
    fn wheel_push(&mut self, b: u64, s: Scheduled) {
        let slot = b as usize & self.mask;
        let (w, bit) = (slot / 64, 1u64 << (slot % 64));
        if self.live[w] & bit == 0 {
            // Empty bucket (the common case at occupancy ≈ 1): no
            // load of the cold bucket needed, just two stores.
            self.slots[slot][0] = s;
            self.lens[slot] = 1;
            self.live[w] |= bit;
        } else {
            let n = self.lens[slot] as usize;
            if n < SLOT_CAP {
                self.slots[slot][n] = s;
                self.lens[slot] = (n + 1) as u8;
                if n + 1 >= 2 {
                    self.multi[w] |= bit;
                }
            } else {
                self.wheel_spill.push(s);
            }
        }
        self.in_wheel += 1;
    }

    /// Slot of the first non-empty bucket at ring distance `>= 0` from
    /// `from`. Caller guarantees the wheel holds at least one event.
    #[inline]
    fn next_occupied_slot(&self, from: usize) -> usize {
        let words = self.live.len();
        let mut w = from / 64;
        let mut bits = self.live[w] & (!0u64 << (from % 64));
        while bits == 0 {
            w = (w + 1) % words;
            bits = self.live[w];
        }
        w * 64 + bits.trailing_zeros() as usize
    }

    /// Absolute bucket index of `t`, clamped so it never lands behind
    /// the cursor. The clamp preserves global pop order: the cursor
    /// bucket is popped in `(t, seq)` order, and every earlier bucket
    /// has already been drained, so an early-`t` straggler placed at
    /// the cursor still pops before everything scheduled after it.
    #[inline]
    fn bucket_of(&self, t_secs: f64) -> u64 {
        ((t_secs * self.inv_width) as u64).max(self.base)
    }

    #[inline]
    fn insert(&mut self, s: Scheduled) {
        let b = self.bucket_of(s.t_secs);
        if b >= self.base + self.n_buckets() as u64 {
            self.overflow.push(s);
        } else {
            self.wheel_push(b, s);
        }
    }

    /// Moves every overflow event whose bucket has entered the window
    /// into its wheel bucket.
    #[inline]
    fn migrate_due(&mut self) {
        let window_end = self.base + self.n_buckets() as u64;
        while let Some(top) = self.overflow.peek() {
            if self.bucket_of(top.t_secs) >= window_end {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            let b = self.bucket_of(s.t_secs);
            self.wheel_push(b, s);
        }
    }

    /// Removes the `(time, seq)` minimum of the cursor bucket
    /// (absolute index `self.base`, ring slot `slot`), merging the
    /// inline slots with the spill heap's top (see the `wheel_spill`
    /// invariants for why top-only is exact).
    fn take_min_at(&mut self, slot: usize) -> Scheduled {
        let (w, bit) = (slot / 64, 1u64 << (slot % 64));
        if self.multi[w] & bit == 0 && self.wheel_spill.is_empty() {
            // Single-event bucket with no spill anywhere (the common
            // case): skip the lens load — the bucket line itself was
            // prefetched by the previous pop.
            debug_assert_eq!(self.lens[slot], 1);
            self.lens[slot] = 0;
            self.live[w] &= !bit;
            return self.slots[slot][0];
        }
        let n = self.lens[slot] as usize;
        let mut best = usize::MAX;
        for i in 0..n {
            if best == usize::MAX || earlier(&self.slots[slot][i], &self.slots[slot][best]) {
                best = i;
            }
        }
        if let Some(top) = self.wheel_spill.peek() {
            if self.bucket_of(top.t_secs) == self.base
                && (best == usize::MAX || earlier(top, &self.slots[slot][best]))
            {
                return self.wheel_spill.pop().expect("peeked");
            }
        }
        debug_assert!(best != usize::MAX, "live bit set on empty bucket");
        let out = self.slots[slot][best];
        let last = n - 1;
        self.slots[slot][best] = self.slots[slot][last];
        self.lens[slot] = last as u8;
        if last < 2 {
            self.multi[w] &= !bit;
        }
        out
    }

    fn pop(&mut self) -> Option<Scheduled> {
        if self.in_wheel == 0 && self.overflow.is_empty() {
            return None;
        }
        loop {
            if self.in_wheel == 0 {
                // Everything pending is beyond the window: jump the
                // cursor straight to the earliest overflow bucket.
                let t = self.overflow.peek().expect("overflow non-empty").t_secs;
                self.base = self.bucket_of(t);
                self.migrate_due();
                continue;
            }
            self.migrate_due();
            // Jump the cursor to the first occupied bucket. Everything
            // in the wheel sits inside the window `[base, base + n)`,
            // so ring distance from the cursor slot is absolute order,
            // and anything `migrate_due` later moves in is at or
            // beyond the *old* window end — strictly later than this
            // bucket. The jump therefore pops the same event a
            // one-slot-at-a-time advance would.
            let from = self.base as usize & self.mask;
            let slot = self.next_occupied_slot(from);
            self.base += (slot.wrapping_sub(from) & self.mask) as u64;
            let s = self.take_min_at(slot);
            self.in_wheel -= 1;
            if self.live[slot / 64] & (1u64 << (slot % 64)) != 0
                && self.lens[slot] == 0
                && !self
                    .wheel_spill
                    .peek()
                    .is_some_and(|t| self.bucket_of(t.t_secs) == self.base)
            {
                self.live[slot / 64] &= !(1u64 << (slot % 64));
            }
            if self.in_wheel > 0 {
                // Start pulling the next pop's bucket line in now; the
                // caller's event handling overlaps the miss. The hint
                // is only a guess (a later schedule may land earlier),
                // so it can waste a line but never change behavior.
                let next = self.next_occupied_slot(self.base as usize & self.mask);
                prefetch(&self.lens[next]);
                prefetch(&self.slots[next]);
            }
            return Some(s);
        }
    }

    /// Earliest pending event time (cold path: scans the wheel).
    fn peek_time(&self) -> Option<f64> {
        let mut best: Option<(f64, u64)> = None;
        if self.in_wheel > 0 {
            // The first non-empty bucket from the cursor holds the
            // earliest wheel event; later buckets are strictly later.
            let from = self.base as usize & self.mask;
            let slot = self.next_occupied_slot(from);
            for s in &self.slots[slot][..self.lens[slot] as usize] {
                if best.is_none_or(|b| (s.t_secs, s.seq) < b) {
                    best = Some((s.t_secs, s.seq));
                }
            }
            if let Some(top) = self.wheel_spill.peek() {
                let abs = self.base + (slot.wrapping_sub(from) & self.mask) as u64;
                if self.bucket_of(top.t_secs) == abs
                    && best.is_none_or(|b| (top.t_secs, top.seq) < b)
                {
                    best = Some((top.t_secs, top.seq));
                }
            }
        }
        if let Some(o) = self.overflow.peek() {
            if best.is_none_or(|(t, seq)| (o.t_secs, o.seq) < (t, seq)) {
                best = Some((o.t_secs, o.seq));
            }
        }
        best.map(|(t, _)| t)
    }

    /// Doubles the bucket count and redistributes every event under the
    /// halved bucket width. Deterministic: membership depends only on
    /// `(t, width, base)`, which are identical across replays.
    fn grow(&mut self) {
        let n_new = self.n_buckets() * 2;
        let cursor_time = self.base as f64 * self.width;
        debug_assert!(n_new <= MAX_BUCKETS);
        let mut pending: Vec<Scheduled> = Vec::with_capacity(self.in_wheel + self.overflow.len());
        for (slot, &n) in self.lens.iter().enumerate() {
            pending.extend_from_slice(&self.slots[slot][..n as usize]);
        }
        pending.extend(std::mem::take(&mut self.wheel_spill).into_vec());
        pending.extend(std::mem::take(&mut self.overflow).into_vec());
        self.lens = vec![0u8; n_new];
        self.slots = vec![[VACANT; SLOT_CAP]; n_new];
        self.live = vec![0u64; n_new.div_ceil(64)];
        self.multi = vec![0u64; n_new.div_ceil(64)];
        self.mask = n_new - 1;
        self.width = WHEEL_SPAN_SECS / n_new as f64;
        self.inv_width = n_new as f64 / WHEEL_SPAN_SECS;
        self.base = (cursor_time * self.inv_width) as u64;
        self.in_wheel = 0;
        for s in pending {
            self.insert(s);
        }
    }
}

#[derive(Debug)]
enum QueueImpl {
    Calendar(Calendar),
    /// The pre-calendar binary heap, kept as a reference oracle.
    Heap(BinaryHeap<Scheduled>),
}

/// Deterministic event queue.
#[derive(Debug)]
pub struct EventQueue {
    impl_: QueueImpl,
    len: usize,
    next_seq: u64,
    /// Current simulation time as reported by the driving engine via
    /// [`advance_to`](Self::advance_to); scheduling earlier than this
    /// is rejected in debug builds.
    now_floor: f64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty calendar queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty calendar queue pre-sized for roughly `hint`
    /// concurrently pending events (e.g. servers + live VMs).
    ///
    /// The hint sizes the *overflow* heap: in a long simulation the
    /// bulk of the pending population is far-future departures and
    /// repairs that sit beyond the wheel's window. The wheel itself
    /// starts at `MIN_BUCKETS` and doubles adaptively as the
    /// *wheel-resident* count grows — sizing it from the total would
    /// spread a handful of near-term events over a huge ring and turn
    /// every pop into a long empty-bucket scan.
    pub fn with_capacity(hint: usize) -> Self {
        EventQueue {
            impl_: QueueImpl::Calendar(Calendar::new(MIN_BUCKETS, hint)),
            len: 0,
            next_seq: 0,
            now_floor: 0.0,
        }
    }

    /// Creates an empty queue backed by the plain binary heap the
    /// calendar replaced. Identical observable behavior; kept as the
    /// oracle for equivalence tests and whole-engine cross-checks
    /// (`SimConfig::reference_event_queue`).
    pub fn reference_heap() -> Self {
        EventQueue {
            impl_: QueueImpl::Heap(BinaryHeap::new()),
            len: 0,
            next_seq: 0,
            now_floor: 0.0,
        }
    }

    /// Advances the queue's notion of the current simulation time.
    /// The engine calls this as its clock moves; afterwards debug
    /// builds reject any attempt to schedule into the past.
    pub fn advance_to(&mut self, now_secs: f64) {
        self.now_floor = self.now_floor.max(now_secs);
    }

    #[inline]
    fn push(&mut self, t_secs: f64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let s = Scheduled { t_secs, seq, event };
        match &mut self.impl_ {
            QueueImpl::Calendar(c) => c.insert(s),
            QueueImpl::Heap(h) => h.push(s),
        }
    }

    /// Schedules `event` at absolute time `t_secs`.
    ///
    /// # Panics
    /// Panics on non-finite times — scheduling at NaN or infinity is
    /// always an upstream arithmetic bug. Debug builds additionally
    /// reject negative times (simulation time starts at zero, so a
    /// negative timestamp means an offset was subtracted past the
    /// origin) and times earlier than the current simulation clock as
    /// last reported via [`advance_to`](Self::advance_to) — an event
    /// in the past would fire immediately but out of causal order.
    pub fn schedule(&mut self, t_secs: f64, event: Event) {
        assert!(t_secs.is_finite(), "cannot schedule event at {t_secs}");
        debug_assert!(
            t_secs >= 0.0,
            "cannot schedule {event:?} at negative time {t_secs}"
        );
        debug_assert!(
            t_secs >= self.now_floor,
            "cannot schedule {event:?} at {t_secs}, before current simulation time {}",
            self.now_floor
        );
        self.push(t_secs, event);
        // Grow outside the per-bucket fast path: chains re-add what
        // they popped and never trip this, so only net growth (spawn
        // bursts, exchange fan-out) pays the check. The trigger is the
        // *wheel-resident* count, not the total: overflow events (the
        // far-future departure bulk) never touch a bucket, and sizing
        // the ring for them would leave it sparse — every pop would
        // scan long runs of empty buckets.
        if let QueueImpl::Calendar(c) = &mut self.impl_ {
            if c.in_wheel > GROW_LOAD_FACTOR * c.n_buckets() && c.n_buckets() < MAX_BUCKETS {
                c.grow();
            }
        }
    }

    /// Fast-path `schedule` for the per-tick self-rescheduling chains
    /// (MonitorTick, DemandUpdate): the caller guarantees `t_secs` is
    /// finite and not in the past — both hold trivially for
    /// `now + fixed_period` — so release builds skip the finiteness
    /// assert and the wheel-growth check (a chain re-adds the event it
    /// just popped, so the population cannot have grown). Debug builds
    /// still verify everything `schedule` does.
    #[inline]
    pub fn schedule_chain(&mut self, t_secs: f64, event: Event) {
        debug_assert!(t_secs.is_finite(), "cannot schedule event at {t_secs}");
        debug_assert!(
            t_secs >= self.now_floor && t_secs >= 0.0,
            "cannot schedule {event:?} at {t_secs}, before current simulation time {}",
            self.now_floor
        );
        self.push(t_secs, event);
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        let popped = match &mut self.impl_ {
            QueueImpl::Calendar(c) => c.pop(),
            QueueImpl::Heap(h) => h.pop(),
        };
        popped.map(|s| {
            self.len -= 1;
            (s.t_secs, s.event)
        })
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        match &self.impl_ {
            QueueImpl::Calendar(c) => c.peek_time(),
            QueueImpl::Heap(h) => h.peek().map(|s| s.t_secs),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when backed by the reference binary heap. Snapshots record
    /// the backing choice so a resumed run keeps the same impl.
    pub(crate) fn is_reference_heap(&self) -> bool {
        matches!(self.impl_, QueueImpl::Heap(_))
    }

    /// Captures the queue as `(entries, next_seq, now_floor)` for a
    /// checkpoint. Entries are every pending `(time, seq, event)`
    /// sorted by `(time, seq)` — the canonical form: two queues with
    /// the same pending set produce the same bytes regardless of how
    /// their wheels, spill heaps, or cursors currently lay the events
    /// out, which is what makes re-snapshot byte-equality (the restore
    /// oracle) hold.
    pub(crate) fn snapshot_parts(&self) -> (Vec<(f64, u64, Event)>, u64, f64) {
        let mut entries: Vec<Scheduled> = Vec::with_capacity(self.len);
        match &self.impl_ {
            QueueImpl::Calendar(c) => {
                for (slot, &n) in c.lens.iter().enumerate() {
                    entries.extend_from_slice(&c.slots[slot][..n as usize]);
                }
                entries.extend(c.wheel_spill.iter().copied());
                entries.extend(c.overflow.iter().copied());
            }
            QueueImpl::Heap(h) => entries.extend(h.iter().copied()),
        }
        debug_assert_eq!(entries.len(), self.len, "queue len out of sync with storage");
        entries.sort_by(|a, b| a.t_secs.total_cmp(&b.t_secs).then_with(|| a.seq.cmp(&b.seq)));
        (
            entries.into_iter().map(|s| (s.t_secs, s.seq, s.event)).collect(),
            self.next_seq,
            self.now_floor,
        )
    }

    /// Rebuilds a queue from parts captured with
    /// [`snapshot_parts`](Self::snapshot_parts), preserving each
    /// entry's original sequence number (re-assigning them would
    /// reorder simultaneous events). Pop order depends only on the
    /// `(time, seq)` total order — proven pop-for-pop identical to the
    /// reference heap — so the rebuilt wheel's cursor starting at zero
    /// instead of the original's advanced position is invisible.
    pub(crate) fn restore_parts(
        entries: &[(f64, u64, Event)],
        next_seq: u64,
        now_floor: f64,
        reference_heap: bool,
    ) -> Self {
        let mut q = if reference_heap {
            Self::reference_heap()
        } else {
            Self::with_capacity(entries.len())
        };
        q.now_floor = now_floor;
        for &(t_secs, seq, event) in entries {
            debug_assert!(seq < next_seq, "entry seq {seq} >= next_seq {next_seq}");
            let s = Scheduled { t_secs, seq, event };
            match &mut q.impl_ {
                QueueImpl::Calendar(c) => {
                    c.insert(s);
                    if c.in_wheel > GROW_LOAD_FACTOR * c.n_buckets() && c.n_buckets() < MAX_BUCKETS
                    {
                        c.grow();
                    }
                }
                QueueImpl::Heap(h) => h.push(s),
            }
            q.len += 1;
        }
        q.next_seq = next_seq;
        q
    }

    /// Checkpoint encoding: backing choice, counters, then the
    /// canonical `(time, seq, event)` entry list.
    pub(crate) fn encode(&self, e: &mut Enc) {
        let (entries, next_seq, now_floor) = self.snapshot_parts();
        e.bool(self.is_reference_heap());
        e.u64(next_seq);
        e.f64(now_floor);
        e.usize(entries.len());
        for (t, seq, event) in &entries {
            e.f64(*t);
            e.u64(*seq);
            event.encode(e);
        }
    }

    /// Checkpoint decoding, inverse of [`encode`](Self::encode).
    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<Self, CheckpointError> {
        let reference_heap = d.bool()?;
        let next_seq = d.u64()?;
        let now_floor = d.f64()?;
        let n = d.usize()?;
        // 17 B minimum per entry: f64 + u64 + 1-byte tag.
        d.check_remaining(n, 17)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let t = d.f64()?;
            let seq = d.u64()?;
            let event = Event::decode(d)?;
            entries.push((t, seq, event));
        }
        Ok(Self::restore_parts(
            &entries,
            next_seq,
            now_floor,
            reference_heap,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The calendar stays in cache because its entries stay small:
    /// growing `Event` (or `Scheduled`) silently doubles the wheel's
    /// footprint, so budge these only deliberately.
    #[test]
    fn event_fits_two_words() {
        assert!(
            std::mem::size_of::<Event>() <= 16,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
        assert!(
            std::mem::size_of::<Scheduled>() <= 32,
            "Scheduled grew to {} bytes",
            std::mem::size_of::<Scheduled>()
        );
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::MetricsSample);
        q.schedule(1.0, Event::DemandUpdate);
        q.schedule(3.0, Event::WakeComplete(ServerId(0), 0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(1.0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(3.0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, Event::Spawn(0));
        q.schedule(2.0, Event::Spawn(1));
        q.schedule(2.0, Event::Spawn(2));
        for expect in 0..3 {
            match q.pop() {
                Some((_, Event::Spawn(i))) => assert_eq!(i, expect),
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.0, Event::DemandUpdate);
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_sees_overflow_and_far_future() {
        let mut q = EventQueue::new();
        q.schedule(1e5, Event::DemandUpdate); // far beyond the wheel span
        assert_eq!(q.peek_time(), Some(1e5));
        q.schedule(3.0, Event::MetricsSample);
        assert_eq!(q.peek_time(), Some(3.0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(3.0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(1e5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn rejects_nan_time() {
        EventQueue::new().schedule(f64::NAN, Event::DemandUpdate);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative time")]
    fn rejects_negative_time_in_debug() {
        EventQueue::new().schedule(-1.0, Event::DemandUpdate);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before current simulation time")]
    fn rejects_scheduling_into_the_past_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::DemandUpdate);
        q.advance_to(10.0);
        q.schedule(9.0, Event::MetricsSample);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before current simulation time")]
    fn chain_fast_path_still_rejects_past_in_debug() {
        let mut q = EventQueue::new();
        q.advance_to(600.0);
        q.schedule_chain(300.0, Event::DemandUpdate);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let mut q = EventQueue::new();
        q.advance_to(10.0);
        q.advance_to(4.0); // out-of-order report must not lower the floor
        q.schedule(10.0, Event::DemandUpdate);
        assert_eq!(q.pop().map(|(t, _)| t), Some(10.0));
    }

    #[test]
    fn events_exactly_on_bucket_edges_pop_in_order() {
        // Bucket width divides WHEEL_SPAN_SECS exactly, so integer
        // multiples of it land exactly on bucket boundaries.
        let width = WHEEL_SPAN_SECS / MIN_BUCKETS as f64;
        let mut q = EventQueue::new();
        for i in (0..40).rev() {
            q.schedule(i as f64 * width, Event::Spawn(i));
        }
        // Duplicate edge events tie-break by insertion order.
        q.schedule(3.0 * width, Event::Spawn(1000));
        let mut last = (f64::NEG_INFINITY, 0usize);
        while let Some((t, Event::Spawn(i))) = q.pop() {
            assert!(
                t > last.0 || (t == last.0 && i > last.1),
                "out of order: ({t}, {i}) after {last:?}"
            );
            last = (t, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_overflow_interleaves_correctly() {
        let mut q = EventQueue::new();
        // A departure hours out (overflow), a repair 30 min out
        // (overflow), and a tick chain inside the wheel.
        q.schedule(7200.0, Event::Departure(VmId(1)));
        q.schedule(1800.0, Event::FaultRepair(ServerId(2)));
        let mut now = 0.0;
        let mut popped = Vec::new();
        q.schedule(300.0, Event::MonitorTick(ServerId(0)));
        while let Some((t, e)) = q.pop() {
            assert!(t >= now, "time went backwards: {t} < {now}");
            now = t;
            q.advance_to(t);
            if matches!(e, Event::MonitorTick(_)) && t < 8000.0 {
                q.schedule_chain(t + 300.0, e.clone());
            }
            popped.push((t, e));
        }
        // The overflow events fired at their times, in order, amid the
        // chain.
        let times: Vec<f64> = popped.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(popped
            .iter()
            .any(|(t, e)| *t == 1800.0 && matches!(e, Event::FaultRepair(_))));
        assert!(popped
            .iter()
            .any(|(t, e)| *t == 7200.0 && matches!(e, Event::Departure(_))));
    }

    #[test]
    fn growth_preserves_order() {
        // Push enough simultaneous-window events to force repeated
        // doubling, then verify global pop order.
        let mut q = EventQueue::with_capacity(0);
        let mut reference = EventQueue::reference_heap();
        for i in 0..5000 {
            // Spread across the wheel span with duplicates.
            let t = (i % 613) as f64 * 0.97;
            q.schedule(t, Event::Spawn(i));
            reference.schedule(t, Event::Spawn(i));
        }
        loop {
            let a = q.pop();
            let b = reference.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Restores `q`'s snapshot into a fresh calendar *and* a fresh
    /// reference heap, checks canonical re-snapshot equality, then
    /// drains all three in lockstep — pop-for-pop identity is the
    /// contract checkpoint restore rests on.
    fn assert_snapshot_roundtrips(mut q: EventQueue) {
        let (entries, next_seq, now_floor) = q.snapshot_parts();
        assert_eq!(entries.len(), q.len());
        let mut cal = EventQueue::restore_parts(&entries, next_seq, now_floor, false);
        let mut heap = EventQueue::restore_parts(&entries, next_seq, now_floor, true);
        assert!(!cal.is_reference_heap());
        assert!(heap.is_reference_heap());
        assert_eq!(cal.snapshot_parts(), (entries.clone(), next_seq, now_floor));
        assert_eq!(heap.snapshot_parts(), (entries.clone(), next_seq, now_floor));

        // Byte codec round-trips to the same canonical parts too.
        let mut e = Enc::new();
        q.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "queue");
        let mut decoded = EventQueue::decode(&mut d).expect("queue decodes");
        d.finish().expect("queue section fully consumed");
        assert_eq!(decoded.snapshot_parts(), (entries, next_seq, now_floor));

        loop {
            let expect = q.pop();
            assert_eq!(cal.pop(), expect, "restored calendar diverged");
            assert_eq!(heap.pop(), expect, "restored heap diverged");
            assert_eq!(decoded.pop(), expect, "decoded queue diverged");
            if expect.is_none() {
                break;
            }
        }
        assert!(cal.is_empty() && heap.is_empty() && decoded.is_empty());
    }

    #[test]
    fn snapshot_roundtrip_empty_queue() {
        let mut q = EventQueue::new();
        q.advance_to(123.0);
        assert_snapshot_roundtrips(q);
    }

    #[test]
    fn snapshot_roundtrip_overflow_heap_events() {
        // Departures and repairs hours past the 600 s wheel span live
        // in the overflow heap; they must survive capture and still
        // interleave correctly with wheel-resident events.
        let mut q = EventQueue::new();
        q.schedule(25.0 * 3600.0, Event::Departure(VmId(7)));
        q.schedule(1800.0, Event::FaultRepair(ServerId(2)));
        q.schedule(90_000.0, Event::HibernateCheck(ServerId(1)));
        q.schedule(30.0, Event::MonitorTick(ServerId(0)));
        q.schedule(300.0, Event::DemandUpdate);
        assert_snapshot_roundtrips(q);
    }

    #[test]
    fn snapshot_roundtrip_multi_occupancy_buckets() {
        // Many simultaneous events in the same bucket (beyond
        // SLOT_CAP, forcing the spill heap) with interleaved seqs.
        let mut q = EventQueue::new();
        for i in 0..3 * SLOT_CAP {
            q.schedule(2.5, Event::Spawn(i));
            q.schedule(2.5 + WHEEL_SPAN_SECS / MIN_BUCKETS as f64, Event::Spawn(1000 + i));
        }
        assert_snapshot_roundtrips(q);
    }

    #[test]
    fn snapshot_roundtrip_mid_run_cursor_state() {
        // Capture after pops have advanced the cursor and stragglers
        // were clamped: the restored wheel starts from base 0 but must
        // pop identically because order is a pure function of
        // (time, seq).
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(i as f64 * 37.0, Event::Spawn(i));
        }
        q.schedule(5000.0, Event::Departure(VmId(1)));
        for _ in 0..20 {
            let (t, _) = q.pop().expect("has events");
            q.advance_to(t);
        }
        // A straggler at the (clamped) cursor bucket.
        q.schedule(q.peek_time().expect("pending") - 1.0, Event::MetricsSample);
        assert_snapshot_roundtrips(q);
    }

    #[test]
    fn event_codec_covers_every_variant() {
        let all = [
            Event::DemandUpdate,
            Event::MonitorTick(ServerId(3)),
            Event::Spawn(42),
            Event::Departure(VmId(9)),
            Event::MigrationComplete(VmId(1), 2),
            Event::WakeComplete(ServerId(4), 5),
            Event::HibernateCheck(ServerId(6)),
            Event::MetricsSample,
            Event::FaultCrash,
            Event::FaultRepair(ServerId(8)),
            Event::ExchangeCollect(10, 1),
            Event::ExchangeCommitArrive(11, 2),
            Event::ExchangeCommitTimeout(12, 3),
            Event::ExchangeNackArrive(13, 4),
            Event::ExchangeRebroadcast(14, 5),
        ];
        let mut e = Enc::new();
        for ev in &all {
            ev.encode(&mut e);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "events");
        for ev in &all {
            assert_eq!(&Event::decode(&mut d).expect("decodes"), ev);
        }
        d.finish().expect("all consumed");
        assert!(Event::decode(&mut Dec::new(&[200], "events")).is_err());
    }

    proptest! {
        #[test]
        fn prop_pops_are_globally_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, Event::Spawn(i));
            }
            let mut last = f64::NEG_INFINITY;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// The oracle proptest: random interleavings of schedules and
        /// pops (with engine-style clock advancement) produce pop
        /// sequences identical to the reference heap, including
        /// tie-breaks.
        #[test]
        fn prop_calendar_matches_heap_oracle(
            times in proptest::collection::vec(0.0f64..5000.0, 1..300),
            pop_every in 2usize..6,
            hint in 0usize..512,
        ) {
            let mut cal = EventQueue::with_capacity(hint);
            let mut heap = EventQueue::reference_heap();
            let mut now = 0.0f64;
            for (i, &dt) in times.iter().enumerate() {
                // Schedule relative to the advancing clock, as the
                // engine does; duplicates arise from dt == 0.
                let t = now + dt.floor();
                cal.schedule(t, Event::Spawn(i));
                heap.schedule(t, Event::Spawn(i));
                if i % pop_every == 0 {
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(&a, &b);
                    if let Some((t, _)) = a {
                        now = now.max(t);
                        cal.advance_to(now);
                        heap.advance_to(now);
                    }
                }
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() { break; }
            }
            prop_assert!(cal.is_empty());
            prop_assert_eq!(cal.len(), 0);
        }

        /// Chain scheduling (the release fast path) matches the oracle
        /// too: every pop re-schedules itself one period later, the
        /// exact shape of MonitorTick / DemandUpdate chains.
        #[test]
        fn prop_chain_fast_path_matches_heap_oracle(
            offsets in proptest::collection::vec(0.0f64..300.0, 1..50),
            rounds in 2usize..20,
        ) {
            let mut cal = EventQueue::with_capacity(offsets.len());
            let mut heap = EventQueue::reference_heap();
            for (i, &off) in offsets.iter().enumerate() {
                cal.schedule(off, Event::MonitorTick(ServerId(i as u32)));
                heap.schedule(off, Event::MonitorTick(ServerId(i as u32)));
            }
            for _ in 0..rounds * offsets.len() {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                let (t, e) = a.expect("chain never drains");
                cal.advance_to(t);
                heap.advance_to(t);
                cal.schedule_chain(t + 300.0, e.clone());
                heap.schedule_chain(t + 300.0, e);
            }
        }
    }
}
