//! The event calendar.
//!
//! A binary-heap priority queue over `(time, sequence)` keys. The
//! monotone sequence number makes simultaneous events fire in insertion
//! order, which — together with seeded RNGs — makes every run exactly
//! reproducible.

use crate::ids::{ServerId, VmId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Refresh every VM's demand from its trace (every 5 simulated
    /// minutes, the CoMon cadence).
    DemandUpdate,
    /// A server runs its migration monitor (§II: "each server monitors
    /// its CPU utilization ... every few seconds").
    MonitorTick(ServerId),
    /// A workload VM arrives (index into the spawn list).
    Spawn(usize),
    /// A VM's lifetime expires.
    Departure(VmId),
    /// A live migration finishes. Carries the VM's migration epoch at
    /// scheduling time; a mismatch at delivery means the migration was
    /// aborted (rollback, departure, crash) and the event is stale.
    MigrationComplete(VmId, u32),
    /// A waking server becomes active. Carries the server's wake epoch
    /// at scheduling time; a mismatch at delivery means the wake was
    /// retried or cancelled and the event is stale.
    WakeComplete(ServerId, u32),
    /// Check whether an idle server should hibernate.
    HibernateCheck(ServerId),
    /// Sample the 30-minute metrics (Figs. 6–11 cadence).
    MetricsSample,
    /// The next injected server crash fires (self-rescheduling chain;
    /// only ever scheduled when the fault schedule enables crashes).
    FaultCrash,
    /// A crashed server's repair completes; it rejoins the hibernated
    /// pool.
    FaultRepair(ServerId),
    /// The manager's acceptance-collection window for a placement
    /// exchange closes; acceptances received in time are now eligible
    /// for a commit. Carries `(exchange id, exchange epoch)`; a
    /// mismatched epoch means the exchange already moved on and the
    /// event is stale.
    ExchangeCollect(u64, u32),
    /// A commit message arrives at the chosen server, triggering the
    /// admission re-check against its *current* state. Carries
    /// `(exchange id, exchange epoch)`.
    ExchangeCommitArrive(u64, u32),
    /// The manager gives up waiting for the outcome of a commit (the
    /// commit or its NACK was lost in flight) and retries. Carries
    /// `(exchange id, exchange epoch)`.
    ExchangeCommitTimeout(u64, u32),
    /// A NACK from a stale commit arrives back at the manager, which
    /// retries the remaining acceptors. Carries `(exchange id,
    /// exchange epoch)`.
    ExchangeNackArrive(u64, u32),
    /// A backed-off invitation re-broadcast fires. Carries
    /// `(exchange id, exchange epoch)`.
    ExchangeRebroadcast(u64, u32),
}

/// A scheduled event.
#[derive(Debug, Clone)]
struct Scheduled {
    t_secs: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.t_secs == other.t_secs && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the
        // earliest (time, seq) first. `total_cmp` makes the ordering
        // total even for values `schedule`'s guards miss, so the heap
        // can never be corrupted by a comparison panic mid-sift.
        other
            .t_secs
            .total_cmp(&self.t_secs)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    /// Current simulation time as reported by the driving engine via
    /// [`advance_to`](Self::advance_to); scheduling earlier than this
    /// is rejected in debug builds.
    now_floor: f64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the queue's notion of the current simulation time.
    /// The engine calls this as its clock moves; afterwards debug
    /// builds reject any attempt to schedule into the past.
    pub fn advance_to(&mut self, now_secs: f64) {
        self.now_floor = self.now_floor.max(now_secs);
    }

    /// Schedules `event` at absolute time `t_secs`.
    ///
    /// # Panics
    /// Panics on non-finite times — scheduling at NaN or infinity is
    /// always an upstream arithmetic bug. Debug builds additionally
    /// reject negative times (simulation time starts at zero, so a
    /// negative timestamp means an offset was subtracted past the
    /// origin) and times earlier than the current simulation clock as
    /// last reported via [`advance_to`](Self::advance_to) — an event
    /// in the past would fire immediately but out of causal order.
    pub fn schedule(&mut self, t_secs: f64, event: Event) {
        assert!(t_secs.is_finite(), "cannot schedule event at {t_secs}");
        debug_assert!(
            t_secs >= 0.0,
            "cannot schedule {event:?} at negative time {t_secs}"
        );
        debug_assert!(
            t_secs >= self.now_floor,
            "cannot schedule {event:?} at {t_secs}, before current simulation time {}",
            self.now_floor
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { t_secs, seq, event });
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.t_secs, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.t_secs)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::MetricsSample);
        q.schedule(1.0, Event::DemandUpdate);
        q.schedule(3.0, Event::WakeComplete(ServerId(0), 0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(1.0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(3.0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, Event::Spawn(0));
        q.schedule(2.0, Event::Spawn(1));
        q.schedule(2.0, Event::Spawn(2));
        for expect in 0..3 {
            match q.pop() {
                Some((_, Event::Spawn(i))) => assert_eq!(i, expect),
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.0, Event::DemandUpdate);
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn rejects_nan_time() {
        EventQueue::new().schedule(f64::NAN, Event::DemandUpdate);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative time")]
    fn rejects_negative_time_in_debug() {
        EventQueue::new().schedule(-1.0, Event::DemandUpdate);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before current simulation time")]
    fn rejects_scheduling_into_the_past_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::DemandUpdate);
        q.advance_to(10.0);
        q.schedule(9.0, Event::MetricsSample);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let mut q = EventQueue::new();
        q.advance_to(10.0);
        q.advance_to(4.0); // out-of-order report must not lower the floor
        q.schedule(10.0, Event::DemandUpdate);
        assert_eq!(q.pop().map(|(t, _)| t), Some(10.0));
    }

    proptest! {
        #[test]
        fn prop_pops_are_globally_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, Event::Spawn(i));
            }
            let mut last = f64::NEG_INFINITY;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
