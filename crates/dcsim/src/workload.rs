//! Workload descriptions: which VMs exist, when they arrive and leave,
//! and how the initial population is placed.

use crate::sla::VmPriority;
use ecocloud_traces::arrivals::ArrivalProcess;
use ecocloud_traces::TraceSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One VM to spawn during the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmSpawn {
    /// Index into the workload's trace set.
    pub trace_idx: usize,
    /// Arrival time, seconds (0 for the initial population).
    pub arrive_secs: f64,
    /// Lifetime, seconds; `None` means the VM runs to the end of the
    /// simulation (the §III experiment's VMs never depart).
    pub lifetime_secs: Option<f64>,
    /// SLA class (defaults to [`VmPriority::Normal`]).
    pub priority: VmPriority,
    /// Committed memory in MB (0 disables RAM modelling for this VM).
    pub ram_mb: f64,
    /// Spot/preemptible VM: the consolidation policy may evict it
    /// (early departure) when a high migration finds no capacity.
    #[serde(default)]
    pub evictable: bool,
}

/// How the initial VM population reaches the servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialPlacement {
    /// The initial VMs go through the placement policy one by one, with
    /// all servers starting hibernated — the policy builds a
    /// consolidated data center from scratch (used for the §III run,
    /// which starts at midnight in an already-consolidated state).
    ViaPolicy,
    /// The initial VMs are spread round-robin over all servers, which
    /// start active — the paper's §IV "non consolidated scenario, in
    /// which most servers have CPU load between 10% and 30%".
    Spread,
}

/// The complete workload of one run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Demand traces (VM `i` of the spawn list reads trace
    /// `spawns[i].trace_idx`).
    pub traces: TraceSet,
    /// All VM spawns, ordered by arrival time.
    pub spawns: Vec<VmSpawn>,
    /// Placement of the time-zero population.
    pub initial_placement: InitialPlacement,
    /// Repeat traces past their end instead of holding the last sample
    /// (open-system VMs can arrive late and outlive the generated
    /// horizon). Off for the closed-system scenarios, whose traces
    /// cover the whole run.
    pub wrap_traces: bool,
}

impl Workload {
    /// The §III workload: every trace VM present from t = 0, never
    /// departing, consolidated by the policy from the start.
    pub fn all_vms_from_start(traces: TraceSet) -> Self {
        let spawns = (0..traces.len())
            .map(|i| VmSpawn {
                trace_idx: i,
                arrive_secs: 0.0,
                lifetime_secs: None,
                priority: VmPriority::Normal,
                ram_mb: 0.0,
                evictable: false,
            })
            .collect();
        Self {
            traces,
            spawns,
            initial_placement: InitialPlacement::ViaPolicy,
            wrap_traces: false,
        }
    }

    /// The §IV workload: `initial` VMs at t = 0 (spread over the
    /// servers), then Poisson arrivals with exponential lifetimes drawn
    /// from `process`. Trace indices are sampled uniformly from the
    /// trace set ("1,500 VMs randomly chosen among the 6,000").
    pub fn churn(
        traces: TraceSet,
        initial: usize,
        process: &ArrivalProcess,
        duration_secs: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spawns = Vec::with_capacity(initial);
        for _ in 0..initial {
            spawns.push(VmSpawn {
                trace_idx: rng.gen_range(0..traces.len()),
                arrive_secs: 0.0,
                lifetime_secs: Some(process.sample_lifetime(&mut rng)),
                priority: VmPriority::Normal,
                ram_mb: 0.0,
                evictable: false,
            });
        }
        for t in process.generate_arrivals(duration_secs, seed.wrapping_add(1)) {
            spawns.push(VmSpawn {
                trace_idx: rng.gen_range(0..traces.len()),
                arrive_secs: t,
                lifetime_secs: Some(process.sample_lifetime(&mut rng)),
                priority: VmPriority::Normal,
                ram_mb: 0.0,
                evictable: false,
            });
        }
        Self {
            traces,
            spawns,
            initial_placement: InitialPlacement::Spread,
            wrap_traces: false,
        }
    }

    /// The open-system §III workload (the Note-1 fix): a resident base
    /// plus the initial churn pool are consolidated by the policy from
    /// a dark fleet, then calibrated diurnal churn arrives through the
    /// normal placement path for the rest of the run. Spot-class
    /// arrivals are marked evictable and carry
    /// [`crate::sla::VmPriority::Low`]. Traces wrap so late arrivals
    /// keep their diurnal shape.
    pub fn open_system(
        traces: TraceSet,
        spec: &ecocloud_traces::OpenSystemSpec,
        duration_secs: f64,
        seed: u64,
    ) -> Self {
        use ecocloud_traces::ChurnClass;
        let mut rng = StdRng::seed_from_u64(seed);
        let initial_lifetimes = spec.initial_lifetimes(seed);
        let resident = spec.resident_population();
        let mut spawns = Vec::with_capacity(resident + initial_lifetimes.len());
        for _ in 0..resident {
            spawns.push(VmSpawn {
                trace_idx: rng.gen_range(0..traces.len()),
                arrive_secs: 0.0,
                lifetime_secs: None,
                priority: VmPriority::Normal,
                ram_mb: 0.0,
                evictable: false,
            });
        }
        for &life in &initial_lifetimes {
            spawns.push(VmSpawn {
                trace_idx: rng.gen_range(0..traces.len()),
                arrive_secs: 0.0,
                lifetime_secs: Some(life),
                priority: VmPriority::Normal,
                ram_mb: 0.0,
                evictable: false,
            });
        }
        for a in spec.generate(duration_secs, seed) {
            let spot = a.class == ChurnClass::Spot;
            spawns.push(VmSpawn {
                trace_idx: rng.gen_range(0..traces.len()),
                arrive_secs: a.arrive_secs,
                lifetime_secs: Some(a.lifetime_secs),
                priority: if spot {
                    VmPriority::Low
                } else {
                    VmPriority::Normal
                },
                ram_mb: 0.0,
                evictable: spot,
            });
        }
        Self {
            traces,
            spawns,
            initial_placement: InitialPlacement::ViaPolicy,
            wrap_traces: true,
        }
    }

    /// Arrival/departure event list of this workload — the input the
    /// analytical model's rate estimation (λ(t), μ(t)) consumes.
    /// Initial VMs (t = 0) contribute no arrival event, matching the
    /// `initial_population` argument of
    /// [`ecocloud_traces::arrivals::RateEstimate::from_events`].
    pub fn arrival_departure_events(&self) -> Vec<ecocloud_traces::ArrivalEvent> {
        use ecocloud_traces::ArrivalEvent;
        let mut events = Vec::new();
        for s in &self.spawns {
            if s.arrive_secs > 0.0 {
                events.push(ArrivalEvent::Arrival(s.arrive_secs));
            }
            if let Some(life) = s.lifetime_secs {
                events.push(ArrivalEvent::Departure(s.arrive_secs + life));
            }
        }
        events
    }

    /// Mean demand of the spawned VMs as a fraction of one reference
    /// host — the fluid model's `w̄`.
    pub fn mean_vm_load_frac(&self) -> f64 {
        if self.spawns.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .spawns
            .iter()
            .map(|s| self.traces.vms[s.trace_idx].profile.mean_frac)
            .sum();
        sum / self.spawns.len() as f64
    }

    /// Randomly assigns SLA classes to every spawn with the given
    /// weights (must sum to a positive value); deterministic in `seed`.
    pub fn assign_priorities(&mut self, high: f64, normal: f64, low: f64, seed: u64) {
        assert!(
            high >= 0.0 && normal >= 0.0 && low >= 0.0 && high + normal + low > 0.0,
            "priority weights must be non-negative and not all zero"
        );
        let total = high + normal + low;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xA11C));
        for s in &mut self.spawns {
            let x: f64 = rng.gen_range(0.0..total);
            s.priority = if x < high {
                VmPriority::High
            } else if x < high + normal {
                VmPriority::Normal
            } else {
                VmPriority::Low
            };
        }
    }

    /// Assigns lognormal RAM demands to every spawn: median
    /// `median_mb`, shape `sigma`, clamped to `[64, max_mb]`;
    /// deterministic in `seed`. Enables the §V multi-resource
    /// behaviour of RAM-aware policies.
    pub fn assign_ram_demands(&mut self, median_mb: f64, sigma: f64, max_mb: f64, seed: u64) {
        assert!(median_mb > 0.0 && sigma >= 0.0 && max_mb >= median_mb);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x4A4D));
        for s in &mut self.spawns {
            let z = ecocloud_traces::profile::standard_normal(&mut rng);
            s.ram_mb = (median_mb * (sigma * z).exp()).clamp(64.0, max_mb);
        }
    }

    /// Number of VMs present at t = 0.
    pub fn initial_count(&self) -> usize {
        self.spawns.iter().filter(|s| s.arrive_secs == 0.0).count()
    }

    /// Validates spawn ordering and trace indices (no coverage check —
    /// use [`Self::validate_for`] when the simulation horizon is known).
    pub fn validate(&self) {
        self.validate_for(f64::INFINITY);
    }

    /// Validates spawn ordering, trace indices and — unless
    /// [`Self::wrap_traces`] is on — trace *coverage*: a VM that lives
    /// past the end of its trace would silently flatline at the last
    /// sample, so workloads whose traces are shorter than the VM's stay
    /// (clipped to the simulation horizon) are rejected, naming the
    /// failing spawn.
    pub fn validate_for(&self, horizon_secs: f64) {
        let covered = self.traces.config.duration_secs as f64;
        let mut last = 0.0f64;
        for (i, s) in self.spawns.iter().enumerate() {
            assert!(
                s.arrive_secs >= last,
                "spawn {i} out of order ({} < {last})",
                s.arrive_secs
            );
            last = s.arrive_secs;
            assert!(
                s.trace_idx < self.traces.len(),
                "spawn {i} references missing trace {}",
                s.trace_idx
            );
            if let Some(l) = s.lifetime_secs {
                assert!(l > 0.0, "spawn {i} has non-positive lifetime");
            }
            if !self.wrap_traces {
                // The VM reads its trace until it departs or the run
                // ends, whichever comes first.
                let stay_end = match s.lifetime_secs {
                    Some(l) => (s.arrive_secs + l).min(horizon_secs),
                    None => {
                        if horizon_secs.is_finite() {
                            horizon_secs
                        } else {
                            s.arrive_secs
                        }
                    }
                };
                assert!(
                    stay_end <= covered,
                    "spawn {i} (arrive {:.1} s, lifetime {:?}) outlives its trace: \
                     needs coverage to {stay_end:.1} s but the trace ends at \
                     {covered:.1} s — extend the traces or enable wrap_traces",
                    s.arrive_secs,
                    s.lifetime_secs,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecocloud_traces::TraceConfig;

    fn traces() -> TraceSet {
        TraceSet::generate(TraceConfig {
            n_vms: 30,
            ..TraceConfig::small(7)
        })
    }

    #[test]
    fn all_vms_from_start_covers_every_trace() {
        let w = Workload::all_vms_from_start(traces());
        assert_eq!(w.spawns.len(), 30);
        assert_eq!(w.initial_count(), 30);
        assert!(w.spawns.iter().all(|s| s.lifetime_secs.is_none()));
        assert_eq!(w.initial_placement, InitialPlacement::ViaPolicy);
        w.validate();
    }

    #[test]
    fn churn_workload_shape() {
        let p = ArrivalProcess {
            base_rate_per_sec: 0.01,
            envelope: ecocloud_traces::DiurnalEnvelope::flat(),
            mean_lifetime_secs: 600.0,
        };
        let w = Workload::churn(traces(), 15, &p, 3600.0, 3);
        assert_eq!(w.initial_count(), 15);
        assert!(w.spawns.len() > 15, "no arrivals generated");
        assert!(w.spawns.iter().all(|s| s.lifetime_secs.is_some()));
        assert_eq!(w.initial_placement, InitialPlacement::Spread);
        w.validate();
    }

    #[test]
    fn event_list_matches_spawns() {
        let p = ArrivalProcess {
            base_rate_per_sec: 0.02,
            envelope: ecocloud_traces::DiurnalEnvelope::flat(),
            mean_lifetime_secs: 600.0,
        };
        let w = Workload::churn(traces(), 10, &p, 1800.0, 5);
        let events = w.arrival_departure_events();
        let arrivals = events
            .iter()
            .filter(|e| matches!(e, ecocloud_traces::ArrivalEvent::Arrival(_)))
            .count();
        let departures = events.len() - arrivals;
        assert_eq!(arrivals, w.spawns.len() - 10, "initial VMs must not count");
        assert_eq!(departures, w.spawns.len(), "every VM has a lifetime here");
        assert!(w.mean_vm_load_frac() > 0.0);
    }

    #[test]
    fn priority_assignment_matches_weights() {
        let mut w = Workload::all_vms_from_start(TraceSet::generate(TraceConfig {
            n_vms: 2000,
            ..TraceConfig::small(7)
        }));
        w.assign_priorities(0.1, 0.7, 0.2, 3);
        let count = |p: VmPriority| w.spawns.iter().filter(|s| s.priority == p).count() as f64;
        let n = w.spawns.len() as f64;
        assert!((count(VmPriority::High) / n - 0.1).abs() < 0.03);
        assert!((count(VmPriority::Normal) / n - 0.7).abs() < 0.03);
        assert!((count(VmPriority::Low) / n - 0.2).abs() < 0.03);
        // Deterministic in the seed.
        let mut w2 = Workload::all_vms_from_start(TraceSet::generate(TraceConfig {
            n_vms: 2000,
            ..TraceConfig::small(7)
        }));
        w2.assign_priorities(0.1, 0.7, 0.2, 3);
        assert!(w
            .spawns
            .iter()
            .zip(&w2.spawns)
            .all(|(a, b)| a.priority == b.priority));
    }

    #[test]
    #[should_panic(expected = "priority weights")]
    fn priority_assignment_rejects_zero_weights() {
        let mut w = Workload::all_vms_from_start(traces());
        w.assign_priorities(0.0, 0.0, 0.0, 1);
    }

    #[test]
    fn ram_assignment_respects_bounds() {
        let mut w = Workload::all_vms_from_start(TraceSet::generate(TraceConfig {
            n_vms: 500,
            ..TraceConfig::small(8)
        }));
        w.assign_ram_demands(1024.0, 0.8, 8192.0, 5);
        for s in &w.spawns {
            assert!((64.0..=8192.0).contains(&s.ram_mb), "ram {}", s.ram_mb);
        }
        let mean: f64 = w.spawns.iter().map(|s| s.ram_mb).sum::<f64>() / w.spawns.len() as f64;
        // Lognormal(median 1024, σ 0.8) has mean ≈ 1024·e^0.32 ≈ 1410.
        assert!((1100.0..1800.0).contains(&mean), "ram mean {mean}");
    }

    #[test]
    fn churn_is_deterministic() {
        let p = ArrivalProcess {
            base_rate_per_sec: 0.01,
            envelope: ecocloud_traces::DiurnalEnvelope::flat(),
            mean_lifetime_secs: 600.0,
        };
        let a = Workload::churn(traces(), 5, &p, 3600.0, 9);
        let b = Workload::churn(traces(), 5, &p, 3600.0, 9);
        assert_eq!(a.spawns.len(), b.spawns.len());
        for (x, y) in a.spawns.iter().zip(&b.spawns) {
            assert_eq!(x.trace_idx, y.trace_idx);
            assert_eq!(x.arrive_secs, y.arrive_secs);
        }
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn validate_rejects_unsorted_spawns() {
        let mut w = Workload::all_vms_from_start(traces());
        w.spawns.push(VmSpawn {
            trace_idx: 0,
            arrive_secs: 10.0,
            lifetime_secs: None,
            priority: VmPriority::Normal,
            ram_mb: 0.0,
            evictable: false,
        });
        w.spawns.push(VmSpawn {
            trace_idx: 0,
            arrive_secs: 5.0,
            lifetime_secs: None,
            priority: VmPriority::Normal,
            ram_mb: 0.0,
            evictable: false,
        });
        w.validate();
    }

    #[test]
    #[should_panic(expected = "missing trace")]
    fn validate_rejects_bad_trace_index() {
        let mut w = Workload::all_vms_from_start(traces());
        w.spawns[0].trace_idx = 999;
        w.validate();
    }
}
