//! Simulation configuration.

use crate::sla::OverloadSharing;
use serde::{Deserialize, Serialize};

/// Knobs of the simulation kernel (placement-policy parameters live in
/// the policy, not here).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated duration, seconds.
    pub duration_secs: f64,
    /// Per-server monitor cadence, seconds (§II: "every few seconds").
    pub monitor_interval_secs: f64,
    /// Metrics sampling cadence, seconds (§III: every 30 minutes).
    pub metrics_interval_secs: f64,
    /// Hibernated → Active transition latency, seconds.
    pub wake_latency_secs: f64,
    /// Live-migration latency, seconds.
    pub migration_latency_secs: f64,
    /// How long a server must stay empty before it hibernates, seconds.
    pub idle_timeout_secs: f64,
    /// Master seed for the engine's RNG streams.
    pub seed: u64,
    /// When false the monitor never fires (the paper's §IV
    /// assignment-only experiment "in which migrations are inhibited").
    pub migrations_enabled: bool,
    /// Number of per-server utilization snapshots to retain per metrics
    /// sample (0 disables the Fig. 6/12 per-server series to save
    /// memory on sweeps).
    pub record_server_utilization: bool,
    /// Record a structured [`crate::log::EventLog`] of every state
    /// transition (off by default; costs memory proportional to the
    /// event count).
    pub record_events: bool,
    /// How an overloaded server divides its CPU among its VMs (§III:
    /// "decrease the CPU usage of all the VMs or only of those that
    /// have low priority").
    pub overload_sharing: OverloadSharing,
}

impl SimConfig {
    /// Defaults for the paper's 48-hour §III experiment.
    pub fn paper_48h(seed: u64) -> Self {
        Self {
            duration_secs: 48.0 * 3600.0,
            monitor_interval_secs: 5.0,
            metrics_interval_secs: 1800.0,
            wake_latency_secs: 120.0,
            migration_latency_secs: 15.0,
            idle_timeout_secs: 900.0,
            seed,
            migrations_enabled: true,
            record_server_utilization: true,
            record_events: false,
            overload_sharing: OverloadSharing::Proportional,
        }
    }

    /// Defaults for the paper's §IV assignment-only experiment
    /// (18 hours, migrations inhibited).
    pub fn paper_fig12(seed: u64) -> Self {
        Self {
            duration_secs: 18.0 * 3600.0,
            migrations_enabled: false,
            ..Self::paper_48h(seed)
        }
    }

    /// Validates the configuration, panicking with a description of the
    /// first problem found.
    pub fn validate(&self) {
        assert!(
            self.duration_secs > 0.0 && self.duration_secs.is_finite(),
            "duration must be positive"
        );
        assert!(
            self.monitor_interval_secs > 0.0,
            "monitor interval must be positive"
        );
        assert!(
            self.metrics_interval_secs > 0.0,
            "metrics interval must be positive"
        );
        assert!(self.wake_latency_secs >= 0.0, "wake latency must be >= 0");
        assert!(
            self.migration_latency_secs >= 0.0,
            "migration latency must be >= 0"
        );
        assert!(self.idle_timeout_secs >= 0.0, "idle timeout must be >= 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper_48h(1);
        assert_eq!(c.duration_secs, 172_800.0);
        assert!(c.migrations_enabled);
        c.validate();
        let f = SimConfig::paper_fig12(1);
        assert_eq!(f.duration_secs, 64_800.0);
        assert!(!f.migrations_enabled);
        f.validate();
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn rejects_nonpositive_duration() {
        let mut c = SimConfig::paper_48h(1);
        c.duration_secs = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "monitor")]
    fn rejects_zero_monitor_interval() {
        let mut c = SimConfig::paper_48h(1);
        c.monitor_interval_secs = 0.0;
        c.validate();
    }
}
