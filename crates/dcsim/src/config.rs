//! Simulation configuration.

use crate::sla::OverloadSharing;
use serde::{Deserialize, Serialize};

/// Deterministic fault-injection schedule.
///
/// Faults are first-class events drawn from a dedicated RNG stream
/// seeded by [`FaultConfig::seed`], fully independent of the policy
/// and workload streams: enabling faults never perturbs the placement
/// RNG, and disabling them ([`FaultConfig::none`], the default) keeps
/// fixed-seed runs byte-identical to a build without the subsystem —
/// no stream is created, no event is scheduled.
///
/// Three fault classes are modelled:
///
/// * **server crashes** — exponential inter-arrival times with mean
///   [`crash_mtbf_secs`](Self::crash_mtbf_secs) across the whole
///   fleet; the victim is drawn uniformly among powered servers. A
///   crashed server drops its VMs (the engine re-places them through
///   the normal assignment procedure) and stays down for
///   [`crash_repair_secs`](Self::crash_repair_secs) before returning
///   to the hibernated pool.
/// * **wake failures** — each wake transition fails with probability
///   [`wake_failure_prob`](Self::wake_failure_prob); the engine
///   retries with exponential backoff (doubling from
///   [`wake_retry_backoff_secs`](Self::wake_retry_backoff_secs), capped
///   at [`wake_retry_backoff_cap_secs`](Self::wake_retry_backoff_cap_secs))
///   up to [`wake_retry_limit`](Self::wake_retry_limit) times, then
///   gives up: pending VMs are re-placed and the server hibernates.
/// * **migration failures** — a finishing live migration fails with
///   probability [`migration_failure_prob`](Self::migration_failure_prob)
///   and is rolled back: the source keeps the VM, the destination
///   reservation is released.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean time between server crashes across the whole fleet,
    /// seconds. `f64::INFINITY` disables crashes.
    pub crash_mtbf_secs: f64,
    /// Downtime of a crashed server before it rejoins the hibernated
    /// pool, seconds.
    pub crash_repair_secs: f64,
    /// Probability that a wake transition fails at its completion
    /// instant. 0 disables wake failures.
    pub wake_failure_prob: f64,
    /// Maximum number of wake retries before the engine gives up,
    /// re-places the pending VMs and hibernates the server.
    pub wake_retry_limit: u32,
    /// Backoff before the first wake retry, seconds; doubles on every
    /// consecutive failure.
    pub wake_retry_backoff_secs: f64,
    /// Upper bound of the wake-retry backoff, seconds.
    pub wake_retry_backoff_cap_secs: f64,
    /// Probability that a finishing migration fails and is rolled
    /// back. 0 disables migration failures.
    pub migration_failure_prob: f64,
    /// Seed of the dedicated fault RNG stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultConfig {
    /// No faults at all — the default. Runs are byte-identical to a
    /// simulator without the fault subsystem.
    pub fn none() -> Self {
        Self {
            crash_mtbf_secs: f64::INFINITY,
            crash_repair_secs: 1800.0,
            wake_failure_prob: 0.0,
            wake_retry_limit: 3,
            wake_retry_backoff_secs: 60.0,
            wake_retry_backoff_cap_secs: 480.0,
            migration_failure_prob: 0.0,
            seed: 0,
        }
    }

    /// Rare faults: about one crash per simulated day, occasional wake
    /// and migration hiccups.
    pub fn light(seed: u64) -> Self {
        Self {
            crash_mtbf_secs: 24.0 * 3600.0,
            crash_repair_secs: 3600.0,
            wake_failure_prob: 0.05,
            migration_failure_prob: 0.02,
            seed,
            ..Self::none()
        }
    }

    /// Frequent faults: a crash every few hours plus noticeable wake
    /// and migration failure rates.
    pub fn moderate(seed: u64) -> Self {
        Self {
            crash_mtbf_secs: 6.0 * 3600.0,
            crash_repair_secs: 1800.0,
            wake_failure_prob: 0.15,
            migration_failure_prob: 0.05,
            seed,
            ..Self::none()
        }
    }

    /// Aggressive chaos profile for stress tests: crashes every
    /// simulated hour, nearly a third of wakes fail, migrations abort
    /// often.
    pub fn chaos(seed: u64) -> Self {
        Self {
            crash_mtbf_secs: 3600.0,
            crash_repair_secs: 600.0,
            wake_failure_prob: 0.3,
            migration_failure_prob: 0.15,
            seed,
            ..Self::none()
        }
    }

    /// True when any fault class can fire. When false the engine
    /// creates no fault RNG and schedules no fault events.
    pub fn enabled(&self) -> bool {
        self.crash_mtbf_secs.is_finite()
            || self.wake_failure_prob > 0.0
            || self.migration_failure_prob > 0.0
    }

    /// Validates the schedule, panicking on the first problem.
    pub fn validate(&self) {
        assert!(
            self.crash_mtbf_secs > 0.0,
            "crash MTBF must be positive (use infinity to disable)"
        );
        assert!(
            self.crash_repair_secs >= 0.0 && self.crash_repair_secs.is_finite(),
            "crash repair time must be finite and >= 0"
        );
        assert!(
            (0.0..=1.0).contains(&self.wake_failure_prob),
            "wake failure probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.migration_failure_prob),
            "migration failure probability must be in [0, 1]"
        );
        assert!(
            self.wake_retry_backoff_secs >= 0.0 && self.wake_retry_backoff_secs.is_finite(),
            "wake retry backoff must be finite and >= 0"
        );
        assert!(
            self.wake_retry_backoff_cap_secs >= self.wake_retry_backoff_secs,
            "wake retry backoff cap must be >= the base backoff"
        );
    }
}

/// Knobs of the simulation kernel (placement-policy parameters live in
/// the policy, not here).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated duration, seconds.
    pub duration_secs: f64,
    /// Per-server monitor cadence, seconds (§II: "every few seconds").
    pub monitor_interval_secs: f64,
    /// Metrics sampling cadence, seconds (§III: every 30 minutes).
    pub metrics_interval_secs: f64,
    /// Hibernated → Active transition latency, seconds.
    pub wake_latency_secs: f64,
    /// Live-migration latency, seconds.
    pub migration_latency_secs: f64,
    /// How long a server must stay empty before it hibernates, seconds.
    pub idle_timeout_secs: f64,
    /// Master seed for the engine's RNG streams.
    pub seed: u64,
    /// When false the monitor never fires (the paper's §IV
    /// assignment-only experiment "in which migrations are inhibited").
    pub migrations_enabled: bool,
    /// Number of per-server utilization snapshots to retain per metrics
    /// sample (0 disables the Fig. 6/12 per-server series to save
    /// memory on sweeps).
    pub record_server_utilization: bool,
    /// Record a structured [`crate::log::EventLog`] of every state
    /// transition (off by default; costs memory proportional to the
    /// event count).
    pub record_events: bool,
    /// How an overloaded server divides its CPU among its VMs (§III:
    /// "decrease the CPU usage of all the VMs or only of those that
    /// have low priority").
    pub overload_sharing: OverloadSharing,
    /// Fault-injection schedule. [`FaultConfig::none`] (the default)
    /// keeps the run fault-free and byte-identical to a simulator
    /// without the subsystem.
    #[serde(default)]
    pub faults: FaultConfig,
}

impl SimConfig {
    /// Defaults for the paper's 48-hour §III experiment.
    pub fn paper_48h(seed: u64) -> Self {
        Self {
            duration_secs: 48.0 * 3600.0,
            monitor_interval_secs: 5.0,
            metrics_interval_secs: 1800.0,
            wake_latency_secs: 120.0,
            migration_latency_secs: 15.0,
            idle_timeout_secs: 900.0,
            seed,
            migrations_enabled: true,
            record_server_utilization: true,
            record_events: false,
            overload_sharing: OverloadSharing::Proportional,
            faults: FaultConfig::none(),
        }
    }

    /// Defaults for the paper's §IV assignment-only experiment
    /// (18 hours, migrations inhibited).
    pub fn paper_fig12(seed: u64) -> Self {
        Self {
            duration_secs: 18.0 * 3600.0,
            migrations_enabled: false,
            ..Self::paper_48h(seed)
        }
    }

    /// Validates the configuration, panicking with a description of the
    /// first problem found.
    pub fn validate(&self) {
        assert!(
            self.duration_secs > 0.0 && self.duration_secs.is_finite(),
            "duration must be positive"
        );
        assert!(
            self.monitor_interval_secs > 0.0,
            "monitor interval must be positive"
        );
        assert!(
            self.metrics_interval_secs > 0.0,
            "metrics interval must be positive"
        );
        assert!(self.wake_latency_secs >= 0.0, "wake latency must be >= 0");
        assert!(
            self.migration_latency_secs >= 0.0,
            "migration latency must be >= 0"
        );
        assert!(self.idle_timeout_secs >= 0.0, "idle timeout must be >= 0");
        self.faults.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper_48h(1);
        assert_eq!(c.duration_secs, 172_800.0);
        assert!(c.migrations_enabled);
        c.validate();
        let f = SimConfig::paper_fig12(1);
        assert_eq!(f.duration_secs, 64_800.0);
        assert!(!f.migrations_enabled);
        f.validate();
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn rejects_nonpositive_duration() {
        let mut c = SimConfig::paper_48h(1);
        c.duration_secs = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "monitor")]
    fn rejects_zero_monitor_interval() {
        let mut c = SimConfig::paper_48h(1);
        c.monitor_interval_secs = 0.0;
        c.validate();
    }

    #[test]
    fn fault_profiles_validate() {
        let none = FaultConfig::none();
        assert!(!none.enabled());
        none.validate();
        for f in [
            FaultConfig::light(3),
            FaultConfig::moderate(3),
            FaultConfig::chaos(3),
        ] {
            assert!(f.enabled());
            f.validate();
        }
    }

    #[test]
    #[should_panic(expected = "wake failure probability")]
    fn rejects_bad_wake_failure_prob() {
        let mut f = FaultConfig::light(0);
        f.wake_failure_prob = 1.5;
        f.validate();
    }
}
