//! Simulation configuration.

use crate::shard::ShardConfig;
use crate::sla::OverloadSharing;
use serde::{Deserialize, Serialize};

/// A configuration field failed validation.
///
/// Returned by [`SimConfig::validate`], [`FaultConfig::validate`] and
/// [`ControlPlaneConfig::validate`]; [`field`](Self::field) names the
/// offending knob so callers (e.g. the CLI) can report it precisely
/// and exit cleanly instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending configuration field.
    pub field: &'static str,
    /// Human-readable description of the constraint that was violated.
    pub message: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Shorthand: fail validation naming the offending field.
fn reject(field: &'static str, message: &'static str) -> Result<(), ConfigError> {
    Err(ConfigError { field, message })
}

/// Deterministic fault-injection schedule.
///
/// Faults are first-class events drawn from a dedicated RNG stream
/// seeded by [`FaultConfig::seed`], fully independent of the policy
/// and workload streams: enabling faults never perturbs the placement
/// RNG, and disabling them ([`FaultConfig::none`], the default) keeps
/// fixed-seed runs byte-identical to a build without the subsystem —
/// no stream is created, no event is scheduled.
///
/// Three fault classes are modelled:
///
/// * **server crashes** — exponential inter-arrival times with mean
///   [`crash_mtbf_secs`](Self::crash_mtbf_secs) across the whole
///   fleet; the victim is drawn uniformly among powered servers. A
///   crashed server drops its VMs (the engine re-places them through
///   the normal assignment procedure) and stays down for
///   [`crash_repair_secs`](Self::crash_repair_secs) before returning
///   to the hibernated pool.
/// * **wake failures** — each wake transition fails with probability
///   [`wake_failure_prob`](Self::wake_failure_prob); the engine
///   retries with exponential backoff (doubling from
///   [`wake_retry_backoff_secs`](Self::wake_retry_backoff_secs), capped
///   at [`wake_retry_backoff_cap_secs`](Self::wake_retry_backoff_cap_secs))
///   up to [`wake_retry_limit`](Self::wake_retry_limit) times, then
///   gives up: pending VMs are re-placed and the server hibernates.
/// * **migration failures** — a finishing live migration fails with
///   probability [`migration_failure_prob`](Self::migration_failure_prob)
///   and is rolled back: the source keeps the VM, the destination
///   reservation is released.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean time between server crashes across the whole fleet,
    /// seconds. `f64::INFINITY` disables crashes.
    pub crash_mtbf_secs: f64,
    /// Downtime of a crashed server before it rejoins the hibernated
    /// pool, seconds.
    pub crash_repair_secs: f64,
    /// Probability that a wake transition fails at its completion
    /// instant. 0 disables wake failures.
    pub wake_failure_prob: f64,
    /// Maximum number of wake retries before the engine gives up,
    /// re-places the pending VMs and hibernates the server.
    pub wake_retry_limit: u32,
    /// Backoff before the first wake retry, seconds; doubles on every
    /// consecutive failure.
    pub wake_retry_backoff_secs: f64,
    /// Upper bound of the wake-retry backoff, seconds.
    pub wake_retry_backoff_cap_secs: f64,
    /// Probability that a finishing migration fails and is rolled
    /// back. 0 disables migration failures.
    pub migration_failure_prob: f64,
    /// Seed of the dedicated fault RNG stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultConfig {
    /// No faults at all — the default. Runs are byte-identical to a
    /// simulator without the fault subsystem.
    pub fn none() -> Self {
        Self {
            crash_mtbf_secs: f64::INFINITY,
            crash_repair_secs: 1800.0,
            wake_failure_prob: 0.0,
            wake_retry_limit: 3,
            wake_retry_backoff_secs: 60.0,
            wake_retry_backoff_cap_secs: 480.0,
            migration_failure_prob: 0.0,
            seed: 0,
        }
    }

    /// Rare faults: about one crash per simulated day, occasional wake
    /// and migration hiccups.
    pub fn light(seed: u64) -> Self {
        Self {
            crash_mtbf_secs: 24.0 * 3600.0,
            crash_repair_secs: 3600.0,
            wake_failure_prob: 0.05,
            migration_failure_prob: 0.02,
            seed,
            ..Self::none()
        }
    }

    /// Frequent faults: a crash every few hours plus noticeable wake
    /// and migration failure rates.
    pub fn moderate(seed: u64) -> Self {
        Self {
            crash_mtbf_secs: 6.0 * 3600.0,
            crash_repair_secs: 1800.0,
            wake_failure_prob: 0.15,
            migration_failure_prob: 0.05,
            seed,
            ..Self::none()
        }
    }

    /// Aggressive chaos profile for stress tests: crashes every
    /// simulated hour, nearly a third of wakes fail, migrations abort
    /// often.
    pub fn chaos(seed: u64) -> Self {
        Self {
            crash_mtbf_secs: 3600.0,
            crash_repair_secs: 600.0,
            wake_failure_prob: 0.3,
            migration_failure_prob: 0.15,
            seed,
            ..Self::none()
        }
    }

    /// True when any fault class can fire. When false the engine
    /// creates no fault RNG and schedules no fault events.
    pub fn enabled(&self) -> bool {
        self.crash_mtbf_secs.is_finite()
            || self.wake_failure_prob > 0.0
            || self.migration_failure_prob > 0.0
    }

    /// Validates the schedule, reporting the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.crash_mtbf_secs > 0.0) {
            return reject(
                "crash_mtbf_secs",
                "crash MTBF must be positive (use infinity to disable)",
            );
        }
        if !(self.crash_repair_secs >= 0.0 && self.crash_repair_secs.is_finite()) {
            return reject(
                "crash_repair_secs",
                "crash repair time must be finite and >= 0",
            );
        }
        if !(0.0..=1.0).contains(&self.wake_failure_prob) {
            return reject(
                "wake_failure_prob",
                "wake failure probability must be in [0, 1]",
            );
        }
        if !(0.0..=1.0).contains(&self.migration_failure_prob) {
            return reject(
                "migration_failure_prob",
                "migration failure probability must be in [0, 1]",
            );
        }
        if !(self.wake_retry_backoff_secs >= 0.0 && self.wake_retry_backoff_secs.is_finite()) {
            return reject(
                "wake_retry_backoff_secs",
                "wake retry backoff must be finite and >= 0",
            );
        }
        if self.wake_retry_backoff_cap_secs < self.wake_retry_backoff_secs {
            return reject(
                "wake_retry_backoff_cap_secs",
                "wake retry backoff cap must be >= the base backoff",
            );
        }
        Ok(())
    }
}

/// Control-plane message model for the placement exchange.
///
/// The paper's assignment procedure (§II) is a distributed protocol:
/// the manager broadcasts invitations, servers answer Bernoulli-trial
/// acceptances, and the manager commits one. With this subsystem
/// enabled the engine resolves each placement as that multi-event
/// exchange — every message carries an independent uniform latency
/// draw from `[latency_min_secs, latency_max_secs]` and is lost with
/// probability [`loss_prob`](Self::loss_prob) per leg; acceptances
/// arriving after [`accept_timeout_secs`](Self::accept_timeout_secs)
/// are ignored; a commit is re-checked against the destination's
/// *current* state on arrival and NACKed when the offer went stale.
///
/// All message draws come from a dedicated RNG stream seeded by
/// [`seed`](Self::seed) — independent of the policy and fault
/// streams, so the same placement decisions are exercised under any
/// message model. [`ControlPlaneConfig::off`] (the default) creates
/// no stream and schedules no message events: fixed-seed runs stay
/// byte-identical to a simulator without the subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneConfig {
    /// Master switch. When false, placements resolve atomically
    /// against a consistent cluster view as before.
    pub enabled: bool,
    /// Lower bound of the per-message one-way latency, seconds.
    pub latency_min_secs: f64,
    /// Upper bound of the per-message one-way latency, seconds. Equal
    /// bounds give a deterministic latency with no RNG draw.
    pub latency_max_secs: f64,
    /// Probability that any single message leg (invitation, response,
    /// commit, NACK) is lost.
    pub loss_prob: f64,
    /// The manager's acceptance-collection window: responses arriving
    /// later than this after the broadcast are counted as timed out.
    /// Also bounds how long the manager waits for a commit outcome
    /// before assuming the commit (or its NACK) was lost.
    pub accept_timeout_secs: f64,
    /// Total number of invitation rounds per exchange (>= 1); the
    /// first broadcast counts. Mirrors the policy's assignment-rounds
    /// knob when the protocol replays it message by message.
    pub broadcast_limit: u32,
    /// Backoff before the second broadcast, seconds; doubles on every
    /// further round, jittered uniformly in `[0.5x, 1.5x)`.
    pub rebroadcast_backoff_secs: f64,
    /// Upper bound of the re-broadcast backoff, seconds (pre-jitter).
    pub rebroadcast_backoff_cap_secs: f64,
    /// Seed of the dedicated control-plane RNG stream.
    pub seed: u64,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl ControlPlaneConfig {
    /// Control plane disabled — the default. Placement stays a single
    /// atomic call and runs are byte-identical to a simulator without
    /// the subsystem.
    pub fn off() -> Self {
        Self {
            enabled: false,
            latency_min_secs: 0.0,
            latency_max_secs: 0.0,
            loss_prob: 0.0,
            accept_timeout_secs: 0.0,
            broadcast_limit: 2,
            rebroadcast_backoff_secs: 0.0,
            rebroadcast_backoff_cap_secs: 0.0,
            seed: 0,
        }
    }

    /// Protocol enabled but physically ideal: zero latency, zero loss,
    /// zero collection window. Exchanges resolve within a single
    /// simulation instant; useful as the decision-equivalence oracle
    /// against the atomic path.
    pub fn ideal(seed: u64) -> Self {
        Self {
            enabled: true,
            seed,
            ..Self::off()
        }
    }

    /// Reliable datacenter network: tens-of-milliseconds latencies, no
    /// loss, a sub-second collection window.
    pub fn lan(seed: u64) -> Self {
        Self {
            enabled: true,
            latency_min_secs: 0.02,
            latency_max_secs: 0.2,
            loss_prob: 0.0,
            accept_timeout_secs: 0.5,
            broadcast_limit: 3,
            rebroadcast_backoff_secs: 1.0,
            rebroadcast_backoff_cap_secs: 8.0,
            seed,
        }
    }

    /// Degraded network: LAN latencies plus 5% per-message loss.
    pub fn lossy(seed: u64) -> Self {
        Self {
            loss_prob: 0.05,
            ..Self::lan(seed)
        }
    }

    /// The [`lossy`](Self::lossy) profile with an explicit per-message
    /// loss probability (for loss sweeps).
    pub fn with_loss(loss_prob: f64, seed: u64) -> Self {
        Self {
            loss_prob,
            ..Self::lan(seed)
        }
    }

    /// True when placements go through the message exchange.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Validates the model, reporting the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.latency_min_secs >= 0.0 && self.latency_min_secs.is_finite()) {
            return reject("latency_min_secs", "latency must be finite and >= 0");
        }
        if !(self.latency_max_secs >= self.latency_min_secs && self.latency_max_secs.is_finite()) {
            return reject(
                "latency_max_secs",
                "latency upper bound must be finite and >= the lower bound",
            );
        }
        if !(0.0..=1.0).contains(&self.loss_prob) {
            return reject("loss_prob", "message loss probability must be in [0, 1]");
        }
        if !(self.accept_timeout_secs >= 0.0 && self.accept_timeout_secs.is_finite()) {
            return reject(
                "accept_timeout_secs",
                "acceptance-collection window must be finite and >= 0",
            );
        }
        if self.broadcast_limit == 0 {
            return reject(
                "broadcast_limit",
                "at least one invitation round is required",
            );
        }
        if !(self.rebroadcast_backoff_secs >= 0.0 && self.rebroadcast_backoff_secs.is_finite()) {
            return reject(
                "rebroadcast_backoff_secs",
                "re-broadcast backoff must be finite and >= 0",
            );
        }
        if self.rebroadcast_backoff_cap_secs < self.rebroadcast_backoff_secs {
            return reject(
                "rebroadcast_backoff_cap_secs",
                "re-broadcast backoff cap must be >= the base backoff",
            );
        }
        Ok(())
    }
}

/// Knobs of the simulation kernel (placement-policy parameters live in
/// the policy, not here).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated duration, seconds.
    pub duration_secs: f64,
    /// Per-server monitor cadence, seconds (§II: "every few seconds").
    pub monitor_interval_secs: f64,
    /// Metrics sampling cadence, seconds (§III: every 30 minutes).
    pub metrics_interval_secs: f64,
    /// Hibernated → Active transition latency, seconds.
    pub wake_latency_secs: f64,
    /// Live-migration latency, seconds.
    pub migration_latency_secs: f64,
    /// How long a server must stay empty before it hibernates, seconds.
    pub idle_timeout_secs: f64,
    /// Master seed for the engine's RNG streams.
    pub seed: u64,
    /// When false the monitor never fires (the paper's §IV
    /// assignment-only experiment "in which migrations are inhibited").
    pub migrations_enabled: bool,
    /// Number of per-server utilization snapshots to retain per metrics
    /// sample (0 disables the Fig. 6/12 per-server series to save
    /// memory on sweeps).
    pub record_server_utilization: bool,
    /// Record a structured [`crate::log::EventLog`] of every state
    /// transition (off by default; costs memory proportional to the
    /// event count).
    pub record_events: bool,
    /// How an overloaded server divides its CPU among its VMs (§III:
    /// "decrease the CPU usage of all the VMs or only of those that
    /// have low priority").
    pub overload_sharing: OverloadSharing,
    /// Fault-injection schedule. [`FaultConfig::none`] (the default)
    /// keeps the run fault-free and byte-identical to a simulator
    /// without the subsystem.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Control-plane message model. [`ControlPlaneConfig::off`] (the
    /// default) keeps placement atomic and byte-identical to a
    /// simulator without the subsystem.
    #[serde(default)]
    pub control_plane: ControlPlaneConfig,
    /// Run on the pre-calendar binary-heap event queue
    /// ([`crate::events::EventQueue::reference_heap`]) instead of the
    /// bucketed calendar. The two are pop-for-pop identical — this
    /// switch exists so tests and the bench harness can prove it (and
    /// measure the speedup) on whole-engine runs. Off by default.
    #[serde(default)]
    pub reference_event_queue: bool,
    /// Shard-engine knobs (see [`crate::shard`]). The default — one
    /// shard — runs the exact sequential code path; any other value
    /// changes only wall-clock time, never output bytes, so this knob
    /// is not part of the canonical run spec and a snapshot resumes
    /// under any shard count.
    #[serde(default)]
    pub shard: ShardConfig,
}

impl SimConfig {
    /// Defaults for the paper's 48-hour §III experiment.
    pub fn paper_48h(seed: u64) -> Self {
        Self {
            duration_secs: 48.0 * 3600.0,
            monitor_interval_secs: 5.0,
            metrics_interval_secs: 1800.0,
            wake_latency_secs: 120.0,
            migration_latency_secs: 15.0,
            idle_timeout_secs: 900.0,
            seed,
            migrations_enabled: true,
            record_server_utilization: true,
            record_events: false,
            overload_sharing: OverloadSharing::Proportional,
            faults: FaultConfig::none(),
            control_plane: ControlPlaneConfig::off(),
            reference_event_queue: false,
            shard: ShardConfig::default(),
        }
    }

    /// Defaults for the paper's §IV assignment-only experiment
    /// (18 hours, migrations inhibited).
    pub fn paper_fig12(seed: u64) -> Self {
        Self {
            duration_secs: 18.0 * 3600.0,
            migrations_enabled: false,
            ..Self::paper_48h(seed)
        }
    }

    /// Validates the configuration, reporting the first offending
    /// field (including nested [`FaultConfig`] and
    /// [`ControlPlaneConfig`] fields).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.duration_secs > 0.0 && self.duration_secs.is_finite()) {
            return reject("duration_secs", "duration must be positive and finite");
        }
        if !(self.monitor_interval_secs > 0.0) {
            return reject("monitor_interval_secs", "monitor interval must be positive");
        }
        if !(self.metrics_interval_secs > 0.0) {
            return reject("metrics_interval_secs", "metrics interval must be positive");
        }
        if !(self.wake_latency_secs >= 0.0) {
            return reject("wake_latency_secs", "wake latency must be >= 0");
        }
        if !(self.migration_latency_secs >= 0.0) {
            return reject("migration_latency_secs", "migration latency must be >= 0");
        }
        if !(self.idle_timeout_secs >= 0.0) {
            return reject("idle_timeout_secs", "idle timeout must be >= 0");
        }
        if self.shard.shards == 0 {
            return reject("shard.shards", "at least one fleet shard is required");
        }
        self.faults.validate()?;
        self.control_plane.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper_48h(1);
        assert_eq!(c.duration_secs, 172_800.0);
        assert!(c.migrations_enabled);
        c.validate().unwrap();
        let f = SimConfig::paper_fig12(1);
        assert_eq!(f.duration_secs, 64_800.0);
        assert!(!f.migrations_enabled);
        f.validate().unwrap();
    }

    #[test]
    fn rejects_nonpositive_duration() {
        let mut c = SimConfig::paper_48h(1);
        c.duration_secs = 0.0;
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "duration_secs");
        assert!(err.to_string().contains("duration_secs"));
    }

    #[test]
    fn rejects_zero_monitor_interval() {
        let mut c = SimConfig::paper_48h(1);
        c.monitor_interval_secs = 0.0;
        assert_eq!(c.validate().unwrap_err().field, "monitor_interval_secs");
    }

    #[test]
    fn fault_profiles_validate() {
        let none = FaultConfig::none();
        assert!(!none.enabled());
        none.validate().unwrap();
        for f in [
            FaultConfig::light(3),
            FaultConfig::moderate(3),
            FaultConfig::chaos(3),
        ] {
            assert!(f.enabled());
            f.validate().unwrap();
        }
    }

    #[test]
    fn rejects_bad_wake_failure_prob() {
        let mut f = FaultConfig::light(0);
        f.wake_failure_prob = 1.5;
        assert_eq!(f.validate().unwrap_err().field, "wake_failure_prob");
        // Nested fault errors surface through the parent config.
        let mut c = SimConfig::paper_48h(1);
        c.faults = f;
        assert_eq!(c.validate().unwrap_err().field, "wake_failure_prob");
    }

    #[test]
    fn control_plane_profiles_validate() {
        let off = ControlPlaneConfig::off();
        assert!(!off.enabled());
        off.validate().unwrap();
        for c in [
            ControlPlaneConfig::ideal(3),
            ControlPlaneConfig::lan(3),
            ControlPlaneConfig::lossy(3),
            ControlPlaneConfig::with_loss(0.2, 3),
        ] {
            assert!(c.enabled());
            c.validate().unwrap();
        }
        assert_eq!(ControlPlaneConfig::with_loss(0.2, 3).loss_prob, 0.2);
    }

    #[test]
    fn control_plane_rejects_bad_fields() {
        let mut c = ControlPlaneConfig::lan(0);
        c.latency_max_secs = c.latency_min_secs - 0.01;
        assert_eq!(c.validate().unwrap_err().field, "latency_max_secs");
        let mut c = ControlPlaneConfig::lan(0);
        c.loss_prob = -0.5;
        assert_eq!(c.validate().unwrap_err().field, "loss_prob");
        let mut c = ControlPlaneConfig::lan(0);
        c.broadcast_limit = 0;
        assert_eq!(c.validate().unwrap_err().field, "broadcast_limit");
        let mut sim = SimConfig::paper_48h(1);
        sim.control_plane = c;
        assert_eq!(sim.validate().unwrap_err().field, "broadcast_limit");
    }

    #[test]
    fn absent_control_plane_field_defaults_to_off() {
        // `#[serde(default)]` fills a missing `control_plane` key with
        // `Default::default()`: that default must be the disabled
        // profile so pre-control-plane JSON keeps loading unchanged.
        let d = ControlPlaneConfig::default();
        assert!(!d.enabled());
        assert_eq!(d, ControlPlaneConfig::off());
        d.validate().unwrap();
    }
}
