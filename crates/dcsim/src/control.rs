//! Control-plane exchange state (the engine's view of the message
//! protocol).
//!
//! When [`crate::config::ControlPlaneConfig`] is enabled, every
//! placement is resolved as a multi-event message exchange instead of
//! an atomic call: invitation broadcast, acceptance-collection window,
//! commit with admission re-check, NACK/loss retries, and capped
//! jittered re-broadcast. The types here hold the per-exchange state
//! machine; the transitions live in [`crate::engine`].

use crate::checkpoint::{CheckpointError, Dec, Enc};
use crate::config::ControlPlaneConfig;
use crate::ids::{ServerId, VmId};
use crate::policy::MigrationKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// What a pending exchange is trying to place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ExchangeKind {
    /// A new VM, still in limbo (not attached anywhere) until a commit
    /// succeeds.
    NewVm,
    /// A server-initiated migration; the VM keeps executing on
    /// `source` while the exchange is in flight.
    Migration {
        /// The requesting server (and current host).
        source: ServerId,
        /// Low or high migration.
        kind: MigrationKind,
        /// Source utilization at request time (drives ecoCloud's
        /// anti-ping-pong threshold for high migrations).
        source_utilization: f64,
    },
}

/// One in-flight placement exchange.
#[derive(Debug, Clone)]
pub(crate) struct Exchange {
    /// The VM being placed or migrated.
    pub vm: VmId,
    /// What kind of placement this is.
    pub kind: ExchangeKind,
    /// Bumped on every state transition; queued events carrying an
    /// older epoch are stale and dropped on delivery (same pattern as
    /// the engine's wake and migration epochs).
    pub epoch: u32,
    /// Simulated time of the first invitation broadcast.
    pub started_secs: f64,
    /// Invitation rounds broadcast so far (the first counts).
    pub rounds: u32,
    /// In-time acceptors of the current round not yet tried with a
    /// commit, in fleet order.
    pub acceptors: Vec<ServerId>,
    /// Server the outstanding commit was sent to, if any.
    pub pending_commit: Option<ServerId>,
}

/// The engine's control-plane state: configuration, the dedicated
/// message RNG, and every in-flight exchange.
#[derive(Debug)]
pub(crate) struct ControlPlane {
    /// The message model.
    pub cfg: ControlPlaneConfig,
    /// Dedicated RNG for message loss, latency and backoff jitter —
    /// independent of the policy and fault streams.
    pub rng: StdRng,
    /// In-flight exchanges by id. A `BTreeMap` so bulk operations
    /// (crash aborts, end-of-run drain) iterate deterministically.
    pub exchanges: BTreeMap<u64, Exchange>,
    /// Pending exchange id per VM — at most one exchange per VM.
    pub by_vm: BTreeMap<VmId, u64>,
    /// Next exchange id.
    pub next_id: u64,
}

impl ControlPlane {
    /// Creates the control-plane state with its own seeded RNG stream.
    pub(crate) fn new(cfg: ControlPlaneConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            exchanges: BTreeMap::new(),
            by_vm: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Draws whether a single message leg is lost. Zero loss draws
    /// nothing, keeping lossless runs independent of the loss stream.
    pub(crate) fn lose(&mut self) -> bool {
        self.cfg.loss_prob > 0.0 && self.rng.gen_bool(self.cfg.loss_prob)
    }

    /// Draws one message's one-way latency. Equal bounds draw nothing.
    pub(crate) fn draw_latency(&mut self) -> f64 {
        if self.cfg.latency_max_secs > self.cfg.latency_min_secs {
            self.rng
                .gen_range(self.cfg.latency_min_secs..self.cfg.latency_max_secs)
        } else {
            self.cfg.latency_min_secs
        }
    }

    /// Backoff before re-broadcast round `rounds + 1`: doubling from
    /// the base, capped, then jittered uniformly in `[0.5x, 1.5x)`.
    /// A zero base backoff draws nothing and stays zero.
    pub(crate) fn rebroadcast_backoff(&mut self, rounds: u32) -> f64 {
        let base = self.cfg.rebroadcast_backoff_secs;
        if base <= 0.0 {
            return 0.0;
        }
        let backoff = (base * 2f64.powi(rounds.saturating_sub(1) as i32))
            .min(self.cfg.rebroadcast_backoff_cap_secs);
        backoff * self.rng.gen_range(0.5..1.5)
    }

    /// Checkpoint encoding of the mutable control-plane state: the
    /// message RNG position and every in-flight exchange. The config
    /// is not written — it is re-derived from the scenario on restore.
    pub(crate) fn encode(&self, e: &mut Enc) {
        e.u64(self.rng.state_u64());
        e.u64(self.next_id);
        e.usize(self.exchanges.len());
        for (id, ex) in &self.exchanges {
            e.u64(*id);
            e.u32(ex.vm.0);
            match ex.kind {
                ExchangeKind::NewVm => e.u8(0),
                ExchangeKind::Migration {
                    source,
                    kind,
                    source_utilization,
                } => {
                    e.u8(1);
                    e.u32(source.0);
                    e.u8(match kind {
                        MigrationKind::Low => 0,
                        MigrationKind::High => 1,
                    });
                    e.f64(source_utilization);
                }
            }
            e.u32(ex.epoch);
            e.f64(ex.started_secs);
            e.u32(ex.rounds);
            e.u32s(&ex.acceptors.iter().map(|s| s.0).collect::<Vec<u32>>());
            match ex.pending_commit {
                None => e.bool(false),
                Some(s) => {
                    e.bool(true);
                    e.u32(s.0);
                }
            }
        }
    }

    /// Overlays a checkpoint onto a freshly constructed control plane.
    /// Inverse of [`encode`](Self::encode); `by_vm` is re-derived from
    /// the restored exchanges.
    pub(crate) fn decode_into(&mut self, d: &mut Dec<'_>) -> Result<(), CheckpointError> {
        self.rng = StdRng::from_state_u64(d.u64()?);
        self.next_id = d.u64()?;
        let n = d.usize()?;
        d.check_remaining(n, 34)?; // fixed-width exchange fields
        self.exchanges.clear();
        self.by_vm.clear();
        for _ in 0..n {
            let id = d.u64()?;
            let vm = VmId(d.u32()?);
            let kind = match d.u8()? {
                0 => ExchangeKind::NewVm,
                1 => {
                    let source = ServerId(d.u32()?);
                    let kind = match d.u8()? {
                        0 => MigrationKind::Low,
                        1 => MigrationKind::High,
                        t => {
                            return Err(CheckpointError::Corrupt(format!(
                                "unknown migration-kind tag {t}"
                            )))
                        }
                    };
                    let source_utilization = d.f64()?;
                    ExchangeKind::Migration {
                        source,
                        kind,
                        source_utilization,
                    }
                }
                t => {
                    return Err(CheckpointError::Corrupt(format!(
                        "unknown exchange-kind tag {t}"
                    )))
                }
            };
            let epoch = d.u32()?;
            let started_secs = d.f64()?;
            let rounds = d.u32()?;
            let acceptors = d.u32s()?.into_iter().map(ServerId).collect();
            let pending_commit = if d.bool()? {
                Some(ServerId(d.u32()?))
            } else {
                None
            };
            if id >= self.next_id {
                return Err(CheckpointError::Corrupt(format!(
                    "exchange id {id} not below next_id {}",
                    self.next_id
                )));
            }
            if self
                .exchanges
                .insert(
                    id,
                    Exchange {
                        vm,
                        kind,
                        epoch,
                        started_secs,
                        rounds,
                        acceptors,
                        pending_commit,
                    },
                )
                .is_some()
            {
                return Err(CheckpointError::Corrupt(format!(
                    "duplicate exchange id {id}"
                )));
            }
            if self.by_vm.insert(vm, id).is_some() {
                return Err(CheckpointError::Corrupt(format!(
                    "vm {} appears in two exchanges",
                    vm.0
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_profile_never_draws() {
        // Two control planes with different seeds behave identically
        // when the model is ideal: no draw ever touches the stream.
        let mut a = ControlPlane::new(ControlPlaneConfig::ideal(1));
        let mut b = ControlPlane::new(ControlPlaneConfig::ideal(999));
        for _ in 0..10 {
            assert!(!a.lose());
            assert!(!b.lose());
            assert_eq!(a.draw_latency(), 0.0);
            assert_eq!(b.draw_latency(), 0.0);
            assert_eq!(a.rebroadcast_backoff(1), 0.0);
            assert_eq!(b.rebroadcast_backoff(1), 0.0);
        }
    }

    #[test]
    fn latency_draws_stay_in_bounds() {
        let mut cp = ControlPlane::new(ControlPlaneConfig::lan(7));
        for _ in 0..100 {
            let l = cp.draw_latency();
            assert!(l >= cp.cfg.latency_min_secs && l < cp.cfg.latency_max_secs);
        }
    }

    #[test]
    fn backoff_doubles_caps_and_jitters() {
        let mut cp = ControlPlane::new(ControlPlaneConfig::lan(3));
        // Round 1 -> base, round 2 -> 2x base, ... capped at the cap;
        // jitter keeps each within [0.5x, 1.5x) of the pre-jitter value.
        for rounds in 1..6u32 {
            let raw = (cp.cfg.rebroadcast_backoff_secs * 2f64.powi(rounds as i32 - 1))
                .min(cp.cfg.rebroadcast_backoff_cap_secs);
            let b = cp.rebroadcast_backoff(rounds);
            assert!(b >= 0.5 * raw && b < 1.5 * raw, "round {rounds}: {b} vs {raw}");
        }
    }
}
