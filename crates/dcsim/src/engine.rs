//! The simulation engine: event loop, placement mechanics, migration
//! mechanics, power and SLA accounting.
//!
//! [`Simulation`] owns all mutable state and dispatches a strictly
//! `(time, seq)`-ordered event stream from the calendar queue
//! ([`crate::events`]). Drive it with [`Simulation::run`] (to
//! completion), or [`Simulation::step`] + [`Simulation::checkpoint`]
//! for crash-safe long runs ([`crate::checkpoint`]). The two
//! fleet-wide sweep events (`DemandUpdate`, `MetricsSample`) route
//! through the deterministic shard engine ([`crate::shard`]) when
//! [`SimConfig::shard`] asks for more than one shard — with output
//! guaranteed byte-identical to the sequential path.
//!
//! # Worked example: a custom policy through a full run
//!
//! The engine is policy-agnostic — anything implementing
//! [`Policy`] can drive placement. A minimal
//! first-fit, run twice to show the determinism contract:
//!
//! ```
//! use dcsim::cluster::ClusterView;
//! use dcsim::{
//!     Fleet, PlaceOutcome, PlacementRequest, Policy, SimConfig, Simulation, Workload,
//! };
//! use ecocloud_traces::{TraceConfig, TraceSet};
//!
//! struct FirstFit;
//! impl Policy for FirstFit {
//!     fn name(&self) -> &'static str {
//!         "first-fit"
//!     }
//!     fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
//!         // First powered server with CPU headroom wins; otherwise
//!         // wake a sleeper; otherwise reject.
//!         for (sid, s) in view.powered() {
//!             if s.used_mhz() + s.reserved_mhz() + req.demand_mhz <= s.capacity_mhz() {
//!                 return PlaceOutcome::Place(sid);
//!             }
//!         }
//!         match view.hibernated().next() {
//!             Some((sid, _)) => PlaceOutcome::WakeThenPlace(sid),
//!             None => PlaceOutcome::Reject,
//!         }
//!     }
//! }
//!
//! let run = || {
//!     let traces = TraceSet::generate(TraceConfig {
//!         n_vms: 40,
//!         duration_secs: 3600,
//!         ..TraceConfig::small(7)
//!     });
//!     let mut config = SimConfig::paper_48h(7);
//!     config.duration_secs = 3600.0;
//!     Simulation::new(
//!         Fleet::thirds(6),
//!         Workload::all_vms_from_start(traces),
//!         config,
//!         FirstFit,
//!     )
//!     .run()
//! };
//! let (a, b) = (run(), run());
//! assert_eq!(a.summary.dropped_vms, 0);
//! // The determinism contract: same inputs, bit-identical outputs.
//! assert_eq!(a.summary.energy_kwh.to_bits(), b.summary.energy_kwh.to_bits());
//! ```

use crate::checkpoint::{Checkpoint, CheckpointError, Dec, Enc};
use crate::cluster::Cluster;
use crate::config::SimConfig;
use crate::control::{ControlPlane, Exchange, ExchangeKind};
use crate::events::{Event, EventQueue};
use crate::fleet::Fleet;
use crate::ids::{ServerId, VmId};
use crate::idset::SortedIdSet;
use crate::log::{AbortReason, EventLog, SimEvent};
use crate::policy::{MigrationKind, PlaceOutcome, PlacementKind, PlacementRequest, Policy};
use crate::server::ServerState;
use crate::shard::{self, ShardPlan};
use crate::stats::{SimStats, SimSummary};
use crate::vm::{Vm, VmState};
use crate::workload::{InitialPlacement, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a completed run.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct SimResult {
    /// All collected measurements.
    pub stats: SimStats,
    /// Headline numbers (also derivable from `stats`).
    pub summary: SimSummary,
    /// Powered servers at the end of the run.
    pub final_powered: usize,
    /// VMs alive at the end of the run.
    pub final_alive_vms: usize,
    /// Migrations still in flight when the run ended (part of the
    /// `started == completed + aborted + in_flight` conservation law).
    #[serde(default)]
    pub final_inflight_migrations: usize,
    /// Name of the policy that drove the run.
    pub policy_name: String,
    /// Structured event log (empty unless
    /// [`SimConfig::record_events`] was set).
    pub events: EventLog,
}

/// A single simulation run. Create with [`Simulation::new`], execute
/// with [`Simulation::run`].
pub struct Simulation<P: Policy> {
    config: SimConfig,
    cluster: Cluster,
    policy: P,
    queue: EventQueue,
    stats: SimStats,
    workload: Workload,
    now: f64,
    alive_count: usize,
    last_pop_accrual: f64,
    /// Per-server: start time of the ongoing overload episode.
    overload_since: Vec<Option<f64>>,
    /// Per-server: time up to which the ongoing overload has been
    /// accrued into the window accumulators.
    overload_accrued_to: Vec<f64>,
    /// Servers with an open overload episode — the only ones the
    /// periodic accrual sweeps need to visit.
    overload_active: SortedIdSet,
    /// Alive (hosted or migrating) VMs — the set a demand update
    /// iterates, instead of every VM ever spawned.
    alive_vms: SortedIdSet,
    /// Per-server: time of the last monitor tick, the phase anchor a
    /// parked monitor chain resumes from after a wake-up.
    monitor_anchor: Vec<f64>,
    /// Per-server: whether a MonitorTick is currently in the calendar.
    /// Ticks stop while a server hibernates (they were no-ops) and
    /// resume on wake.
    monitor_scheduled: Vec<bool>,
    /// Dedicated fault RNG stream, created only when the fault schedule
    /// is enabled — a disabled schedule draws nothing and schedules
    /// nothing, keeping fault-free runs byte-identical.
    fault_rng: Option<StdRng>,
    /// Per-server wake epoch: bumped whenever an outstanding
    /// `WakeComplete` becomes stale (retry reschedule, crash). Events
    /// carrying an older epoch are dropped.
    wake_seq: Vec<u32>,
    /// Per-server count of consecutive failures of the ongoing wake.
    wake_attempts: Vec<u32>,
    /// Control-plane state (message RNG + in-flight exchanges),
    /// created only when the message model is enabled — a disabled
    /// control plane draws nothing and schedules nothing, keeping
    /// atomic runs byte-identical.
    control: Option<ControlPlane>,
    log: EventLog,
    /// Shard partition of the server index space (see [`crate::shard`]).
    /// Derived from config at construction, never mutated and never
    /// checkpointed: shard scratch state is empty at every event
    /// boundary, so snapshots are identical for every shard count and
    /// a resume may change `K` freely.
    shard_plan: ShardPlan,
    /// Resolved worker-thread count for the shard fan-outs. Affects
    /// wall-clock only, never output bytes.
    shard_threads: usize,
}

/// Checkpoint-decode guard: a restored per-server vector must match
/// the scenario's fleet size.
fn expect_len<T>(v: Vec<T>, n: usize, what: &str) -> Result<Vec<T>, CheckpointError> {
    if v.len() == n {
        Ok(v)
    } else {
        Err(CheckpointError::Corrupt(format!(
            "{what} has {} entries for {n} servers",
            v.len()
        )))
    }
}

impl<P: Policy> Simulation<P> {
    /// Builds a simulation. Servers start hibernated for
    /// [`InitialPlacement::ViaPolicy`] workloads and active for
    /// [`InitialPlacement::Spread`] ones.
    pub fn new(fleet: Fleet, workload: Workload, config: SimConfig, policy: P) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid simulation config: {e}");
        }
        workload.validate_for(config.duration_secs);
        let initial_state = match workload.initial_placement {
            InitialPlacement::ViaPolicy => ServerState::Hibernated,
            InitialPlacement::Spread => ServerState::Active,
        };
        let cluster = Cluster::new(&fleet, initial_state);
        let n_servers = cluster.n_servers();
        let record_events = config.record_events;
        let fault_rng = config
            .faults
            .enabled()
            .then(|| StdRng::seed_from_u64(config.faults.seed));
        let control = config
            .control_plane
            .enabled()
            .then(|| ControlPlane::new(config.control_plane.clone()));
        // Pre-size the calendar for the steady-state event population:
        // one pending departure per spawned VM (spawns are all enqueued
        // up front) plus a monitor chain per server.
        let queue = if config.reference_event_queue {
            EventQueue::reference_heap()
        } else {
            EventQueue::with_capacity(n_servers + workload.spawns.len())
        };
        let shard_plan = ShardPlan::contiguous(n_servers, config.shard.shards);
        let shard_threads = config.shard.effective_threads(shard_plan.k());
        let mut sim = Self {
            config,
            cluster,
            policy,
            queue,
            stats: SimStats::new(),
            workload,
            now: 0.0,
            alive_count: 0,
            last_pop_accrual: 0.0,
            overload_since: vec![None; n_servers],
            overload_accrued_to: vec![0.0; n_servers],
            overload_active: SortedIdSet::new(),
            alive_vms: SortedIdSet::new(),
            monitor_anchor: vec![0.0; n_servers],
            monitor_scheduled: vec![false; n_servers],
            fault_rng,
            wake_seq: vec![0; n_servers],
            wake_attempts: vec![0; n_servers],
            control,
            log: EventLog::new(record_events),
            shard_plan,
            shard_threads,
        };
        sim.schedule_initial_events();
        sim
    }

    fn schedule_initial_events(&mut self) {
        // Spawns first so the t = 0 metrics sample sees the initial
        // population (ties break by insertion order).
        for i in 0..self.workload.spawns.len() {
            let t = self.workload.spawns[i].arrive_secs;
            if t <= self.config.duration_secs {
                self.queue.schedule(t, Event::Spawn(i));
            }
        }
        self.queue.schedule(0.0, Event::MetricsSample);
        let step = self.workload.traces.config.step_secs as f64;
        self.queue.schedule(step, Event::DemandUpdate);
        if self.config.migrations_enabled {
            let n = self.cluster.n_servers().max(1);
            for s in 0..self.cluster.n_servers() {
                // Stagger monitors uniformly across one interval so the
                // data center does not probe in lock-step.
                let offset = self.config.monitor_interval_secs * (s + 1) as f64 / n as f64;
                self.queue
                    .schedule(offset, Event::MonitorTick(ServerId(s as u32)));
                self.monitor_scheduled[s] = true;
            }
        }
        self.schedule_next_crash();
    }

    /// Draws the next exponential inter-crash interval and schedules a
    /// `FaultCrash`. No-op when crashes are disabled.
    fn schedule_next_crash(&mut self) {
        let mtbf = self.config.faults.crash_mtbf_secs;
        if !mtbf.is_finite() {
            return;
        }
        let rng = self
            .fault_rng
            .as_mut()
            .expect("crash schedule without a fault RNG");
        let u: f64 = rng.gen_range(0.0..1.0);
        let t = self.now - mtbf * (1.0 - u).ln();
        if t <= self.config.duration_secs {
            self.queue.schedule(t, Event::FaultCrash);
        }
    }

    /// Read access to collected statistics (e.g. mid-run inspection in
    /// tests).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Read access to the cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Serializes the complete deterministic state of this run into a
    /// [`Checkpoint`]. Everything mutable is captured — cluster, VM
    /// table, event calendar, every RNG stream, in-flight exchanges,
    /// statistics, event log, policy soft state — so that
    /// [`restore_from`](Self::restore_from) followed by running to the
    /// end produces byte-identical results to the uninterrupted run.
    ///
    /// `spec` is the canonical scenario string the resume will be
    /// validated against; `seq` is a caller-chosen monotonic sequence
    /// number (checkpoint N of this run).
    pub fn checkpoint(&self, spec: &str, seq: u64) -> Checkpoint {
        let mut ckpt = Checkpoint::new(spec, seq, self.now);
        let mut e = Enc::new();
        self.encode_engine(&mut e);
        ckpt.push_section("engine", e.into_bytes());
        let mut e = Enc::new();
        self.cluster.encode(&mut e);
        ckpt.push_section("cluster", e.into_bytes());
        let mut e = Enc::new();
        self.queue.encode(&mut e);
        ckpt.push_section("queue", e.into_bytes());
        let mut e = Enc::new();
        self.stats.encode(&mut e);
        ckpt.push_section("stats", e.into_bytes());
        let mut e = Enc::new();
        match &self.control {
            None => e.bool(false),
            Some(cp) => {
                e.bool(true);
                cp.encode(&mut e);
            }
        }
        ckpt.push_section("control", e.into_bytes());
        let mut e = Enc::new();
        self.log.encode(&mut e);
        ckpt.push_section("log", e.into_bytes());
        let mut e = Enc::new();
        e.u64s(&self.policy.checkpoint_state());
        ckpt.push_section("policy", e.into_bytes());
        ckpt
    }

    /// Rebuilds a simulation from a checkpoint taken by
    /// [`checkpoint`](Self::checkpoint).
    ///
    /// `fleet`, `workload`, `config` and `policy` must describe the
    /// same scenario the snapshot was taken from — the checkpoint only
    /// stores mutable state, everything static is re-derived from
    /// these inputs, and `spec` (the caller's canonical scenario
    /// string) is matched against the one embedded in the snapshot to
    /// reject cross-scenario resumes up front.
    ///
    /// In debug builds a round-trip oracle re-snapshots the restored
    /// engine and panics on the first divergent section, so any field
    /// the codecs miss fails loudly instead of silently forking the
    /// trajectory.
    pub fn restore_from(
        fleet: Fleet,
        workload: Workload,
        config: SimConfig,
        policy: P,
        ckpt: &Checkpoint,
        spec: &str,
    ) -> Result<Self, CheckpointError> {
        ckpt.verify_compat(spec)?;
        let mut sim = Self::new(fleet, workload, config, policy);

        let mut d = Dec::new(ckpt.section("engine")?, "engine");
        sim.decode_engine(&mut d)?;
        d.finish()?;

        let mut d = Dec::new(ckpt.section("cluster")?, "cluster");
        sim.cluster.decode_into(&mut d)?;
        d.finish()?;

        let mut d = Dec::new(ckpt.section("queue")?, "queue");
        sim.queue = EventQueue::decode(&mut d)?;
        d.finish()?;

        let mut d = Dec::new(ckpt.section("stats")?, "stats");
        sim.stats = SimStats::decode(&mut d)?;
        d.finish()?;

        let mut d = Dec::new(ckpt.section("control")?, "control");
        let snapshot_has_control = d.bool()?;
        match (sim.control.as_mut(), snapshot_has_control) {
            (Some(cp), true) => cp.decode_into(&mut d)?,
            (None, false) => {}
            (cur, _) => {
                return Err(CheckpointError::Corrupt(format!(
                    "control plane {} in snapshot but {} in scenario",
                    if snapshot_has_control {
                        "present"
                    } else {
                        "absent"
                    },
                    if cur.is_some() { "enabled" } else { "disabled" },
                )))
            }
        }
        d.finish()?;

        let mut d = Dec::new(ckpt.section("log")?, "log");
        sim.log = EventLog::decode(&mut d)?;
        d.finish()?;

        let mut d = Dec::new(ckpt.section("policy")?, "policy");
        let words = d.u64s()?;
        d.finish()?;
        sim.policy
            .restore_state(&words)
            .map_err(CheckpointError::Corrupt)?;

        #[cfg(debug_assertions)]
        {
            let re = sim.checkpoint(spec, ckpt.seq);
            assert_eq!(
                re.sim_time_secs.to_bits(),
                ckpt.sim_time_secs.to_bits(),
                "restored engine re-snapshots at a different sim time"
            );
            if let Some(section) = ckpt.first_divergent_section(&re) {
                panic!("checkpoint round-trip diverged in section {section:?}");
            }
            sim.cluster.check_invariants();
        }
        Ok(sim)
    }

    /// Engine-private mutable state (everything not owned by a
    /// dedicated subsystem codec).
    fn encode_engine(&self, e: &mut Enc) {
        e.f64(self.now);
        e.usize(self.alive_count);
        e.f64(self.last_pop_accrual);
        e.usize(self.overload_since.len());
        for s in &self.overload_since {
            e.opt_f64(*s);
        }
        e.f64s(&self.overload_accrued_to);
        e.u32s(self.overload_active.as_slice());
        e.u32s(self.alive_vms.as_slice());
        e.f64s(&self.monitor_anchor);
        e.usize(self.monitor_scheduled.len());
        for m in &self.monitor_scheduled {
            e.bool(*m);
        }
        match &self.fault_rng {
            None => e.bool(false),
            Some(rng) => {
                e.bool(true);
                e.u64(rng.state_u64());
            }
        }
        e.u32s(&self.wake_seq);
        e.u32s(&self.wake_attempts);
    }

    /// Inverse of [`encode_engine`](Self::encode_engine); validates
    /// every per-server vector against the scenario's fleet size.
    fn decode_engine(&mut self, d: &mut Dec<'_>) -> Result<(), CheckpointError> {
        let n = self.cluster.n_servers();
        self.now = d.f64()?;
        self.alive_count = d.usize()?;
        self.last_pop_accrual = d.f64()?;
        let m = d.usize()?;
        if m != n {
            return Err(CheckpointError::Corrupt(format!(
                "overload_since has {m} entries for {n} servers"
            )));
        }
        d.check_remaining(m, 1)?;
        let mut overload_since = Vec::with_capacity(m);
        for _ in 0..m {
            overload_since.push(d.opt_f64()?);
        }
        self.overload_since = overload_since;
        self.overload_accrued_to = expect_len(d.f64s()?, n, "overload_accrued_to")?;
        self.overload_active = d.u32s()?.into_iter().collect();
        self.alive_vms = d.u32s()?.into_iter().collect();
        self.monitor_anchor = expect_len(d.f64s()?, n, "monitor_anchor")?;
        let m = d.usize()?;
        if m != n {
            return Err(CheckpointError::Corrupt(format!(
                "monitor_scheduled has {m} entries for {n} servers"
            )));
        }
        d.check_remaining(m, 1)?;
        let mut monitor_scheduled = Vec::with_capacity(m);
        for _ in 0..m {
            monitor_scheduled.push(d.bool()?);
        }
        self.monitor_scheduled = monitor_scheduled;
        let snapshot_has_faults = d.bool()?;
        let fault_state = if snapshot_has_faults {
            Some(d.u64()?)
        } else {
            None
        };
        match (self.fault_rng.as_mut(), fault_state) {
            (Some(rng), Some(state)) => *rng = StdRng::from_state_u64(state),
            (None, None) => {}
            (cur, _) => {
                return Err(CheckpointError::Corrupt(format!(
                    "fault RNG {} in snapshot but faults are {} in scenario",
                    if snapshot_has_faults {
                        "present"
                    } else {
                        "absent"
                    },
                    if cur.is_some() { "enabled" } else { "disabled" },
                )))
            }
        }
        self.wake_seq = expect_len(d.u32s()?, n, "wake_seq")?;
        self.wake_attempts = expect_len(d.u32s()?, n, "wake_attempts")?;
        Ok(())
    }

    /// Processes the next event and returns its time, or `None` when
    /// the calendar is drained or the next event lies past the
    /// configured duration. Lets tests and harnesses interleave their
    /// own checks (e.g. [`Cluster::check_invariants`]) with the event
    /// loop; call [`Simulation::finish`] afterwards for the final
    /// accounting.
    pub fn step(&mut self) -> Option<f64> {
        let (t, event) = self.queue.pop()?;
        if t > self.config.duration_secs {
            return None;
        }
        debug_assert!(t >= self.now, "event time went backwards");
        self.now = t;
        self.queue.advance_to(t);
        self.stats.events_processed += 1;
        self.handle(event);
        Some(t)
    }

    /// Runs to completion and returns the results.
    pub fn run(mut self) -> SimResult {
        while self.step().is_some() {}
        self.finish()
    }

    /// Final accounting at the end of the run: closes the books at
    /// `duration_secs` (including overload episodes still open — they
    /// are real violations and must reach the histogram) and packages
    /// the results.
    pub fn finish(mut self) -> SimResult {
        let end = self.config.duration_secs;
        self.now = end;
        self.queue.advance_to(end);
        self.drain_exchanges();
        self.accrue_population();
        self.accrue_active_overloads();
        let open: Vec<u32> = self.overload_active.iter().collect();
        for id in open {
            let sid = ServerId(id);
            if let Some(since) = self.overload_since[sid.index()].take() {
                self.stats.record_violation(end - since);
                self.overload_active.remove(sid.0);
                self.log.push(SimEvent::OverloadEnded {
                    t: end,
                    server: sid,
                    duration: end - since,
                });
            }
        }
        self.refresh_power();
        let final_powered = self.cluster.powered_count();
        let final_alive_vms = self.alive_count;
        let final_inflight_migrations = self
            .alive_vms
            .iter()
            .filter(|&v| self.cluster.vms[v as usize].is_migrating())
            .count();
        debug_assert_eq!(
            self.stats.migrations_started,
            self.stats.migrations_completed
                + self.stats.migrations_aborted
                + final_inflight_migrations as u64,
            "migration conservation violated"
        );
        // Control-plane conservation laws: every invitation is
        // accounted for, and every exchange was resolved (after the
        // drain above nothing may remain open).
        debug_assert_eq!(
            self.stats.invitations_sent,
            self.stats.invite_accepts
                + self.stats.invite_declines
                + self.stats.invite_losses
                + self.stats.invite_timeouts,
            "control-plane message conservation violated"
        );
        debug_assert_eq!(
            self.stats.exchanges_started,
            self.stats.exchanges_committed
                + self.stats.exchanges_abandoned
                + self.stats.exchanges_aborted,
            "exchange conservation violated"
        );
        debug_assert!(
            self.control
                .as_ref()
                .is_none_or(|cp| cp.exchanges.is_empty()),
            "exchanges left open after the end-of-run drain"
        );
        // Commit-leg conservation laws: a committed exchange needs at
        // least one commit send; every NACK answers exactly one arrived
        // commit (epoch-gated, so a sent commit arrives at most once);
        // every recorded loss is a commit leg or a NACK return leg; and
        // re-broadcasts are capped per exchange by the round limit.
        debug_assert!(
            self.stats.commits_sent >= self.stats.exchanges_committed,
            "an exchange committed without a commit message"
        );
        debug_assert!(
            self.stats.commit_nacks <= self.stats.commits_sent,
            "more commit NACKs than commits sent"
        );
        debug_assert!(
            self.stats.commit_losses <= self.stats.commits_sent + self.stats.commit_nacks,
            "more commit-plane losses than commit and NACK legs"
        );
        debug_assert!(
            self.stats.exchange_rebroadcasts
                <= self.stats.exchanges_started
                    * u64::from(self.control.as_ref().map_or(0, |cp| cp.cfg.broadcast_limit)),
            "re-broadcasts exceed the per-exchange round cap"
        );
        // Fault-recovery conservation laws: `replace_vm` resolves every
        // displaced VM as exactly one of re-placed or lost, every
        // migration failure tears down a started migration, and a
        // repair can only complete for a server that crashed.
        debug_assert_eq!(
            self.stats.vms_displaced,
            self.stats.vms_replaced + self.stats.vms_lost,
            "displacement conservation violated"
        );
        debug_assert!(
            self.stats.migration_failures <= self.stats.migrations_aborted,
            "injected migration failures must be a subset of aborted migrations"
        );
        debug_assert!(
            self.stats.server_repairs <= self.stats.server_crashes,
            "a server repair completed without a preceding crash"
        );
        // Open-system conservation law: every VM that ever attached is
        // accounted for as departed, lost to a fault, or still
        // resident. (Dropped VMs never attached and appear nowhere.)
        debug_assert_eq!(
            self.stats.vms_arrived,
            self.stats.vms_departed + self.stats.vms_lost + final_alive_vms as u64,
            "arrival/departure conservation violated"
        );
        debug_assert!(
            self.stats.vms_preempted <= self.stats.vms_departed,
            "spot preemptions must be a subset of departures"
        );
        let policy_name = self.policy.name().to_string();
        let mut stats = self.stats;
        let summary = stats.summary();
        SimResult {
            stats,
            summary,
            final_powered,
            final_alive_vms,
            final_inflight_migrations,
            policy_name,
            events: self.log,
        }
    }

    // ------------------------------------------------------------------
    // Accounting helpers
    // ------------------------------------------------------------------

    /// Accrues alive-VM-seconds up to `now`.
    fn accrue_population(&mut self) {
        let dt = self.now - self.last_pop_accrual;
        if dt > 0.0 {
            self.stats.accrue_population(dt, self.alive_count);
            self.last_pop_accrual = self.now;
        }
    }

    /// Accrues the ongoing overload episode of `sid` up to `now`, using
    /// the server's *current* (pre-mutation) load. Must be called
    /// before any change to the server's load or VM count.
    fn accrue_overload(&mut self, sid: ServerId) {
        if self.overload_since[sid.index()].is_some() {
            let dt = self.now - self.overload_accrued_to[sid.index()];
            if dt > 0.0 {
                let s = &self.cluster.servers[sid.index()];
                // Per-class demands and counts on this server.
                let mut demand_by_class = [0.0f64; 3];
                let mut count_by_class = [0usize; 3];
                for &v in &s.vms {
                    let vm = &self.cluster.vms[v.index()];
                    demand_by_class[vm.priority.index()] += vm.demand_mhz;
                    count_by_class[vm.priority.index()] += 1;
                }
                let granted = crate::sla::granted_fractions(
                    s.capacity_mhz(),
                    demand_by_class,
                    self.config.overload_sharing,
                );
                self.stats
                    .accrue_overload_classes(dt, count_by_class, granted);
            }
            self.overload_accrued_to[sid.index()] = self.now;
        }
    }

    /// Accrues every open overload episode up to `now`. Sweeps only the
    /// `overload_active` index — O(overloaded), not O(fleet) — in
    /// ascending server order, matching the full scan it replaces.
    fn accrue_active_overloads(&mut self) {
        if self.overload_active.is_empty() {
            return;
        }
        let active: Vec<u32> = self.overload_active.iter().collect();
        for id in active {
            self.accrue_overload(ServerId(id));
        }
    }

    /// Refreshes the overload flag of `sid` after a load mutation,
    /// closing or opening an episode as needed.
    fn reconcile_overload(&mut self, sid: ServerId) {
        let is = self.cluster.hot().is_overloaded(sid.index())
            && self.cluster.servers[sid.index()].is_active();
        match (self.overload_since[sid.index()], is) {
            (Some(since), false) => {
                self.stats.record_violation(self.now - since);
                self.overload_since[sid.index()] = None;
                self.overload_active.remove(sid.0);
                self.log.push(SimEvent::OverloadEnded {
                    t: self.now,
                    server: sid,
                    duration: self.now - since,
                });
            }
            (None, true) => {
                self.overload_since[sid.index()] = Some(self.now);
                self.overload_accrued_to[sid.index()] = self.now;
                self.overload_active.insert(sid.0);
                self.log.push(SimEvent::OverloadStarted {
                    t: self.now,
                    server: sid,
                });
            }
            _ => {}
        }
    }

    /// Advances the energy integral to `now` at the cluster's (cached,
    /// O(1)) total power. Called after every power-relevant mutation.
    fn refresh_power(&mut self) {
        let total = self.cluster.total_power_w();
        self.stats.energy.update(self.now, total);
    }

    /// Schedules a hibernate check if the server just became empty.
    /// `reserved_count` guards the zero-demand edge: a 0 MHz VM in
    /// flight reserves no capacity yet must still block hibernation.
    fn maybe_schedule_hibernate(&mut self, sid: ServerId) {
        let s = &self.cluster.servers[sid.index()];
        if s.vms.is_empty()
            && s.reserved_count == 0
            && self.cluster.hot().reserved_mhz(sid.index()) <= 1e-9
            && s.is_powered()
        {
            self.queue.schedule(
                self.now + self.config.idle_timeout_secs,
                Event::HibernateCheck(sid),
            );
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::Spawn(i) => self.on_spawn(i),
            Event::Departure(vm) => self.on_departure(vm),
            Event::DemandUpdate => self.on_demand_update(),
            Event::MonitorTick(sid) => self.on_monitor_tick(sid),
            Event::MigrationComplete(vm, seq) => self.on_migration_complete(vm, seq),
            Event::WakeComplete(sid, seq) => self.on_wake_complete(sid, seq),
            Event::HibernateCheck(sid) => self.on_hibernate_check(sid),
            Event::MetricsSample => self.on_metrics_sample(),
            Event::FaultCrash => self.on_fault_crash(),
            Event::FaultRepair(sid) => self.on_fault_repair(sid),
            Event::ExchangeCollect(id, epoch) => self.on_exchange_collect(id, epoch),
            Event::ExchangeCommitArrive(id, epoch) => self.on_exchange_commit_arrive(id, epoch),
            Event::ExchangeCommitTimeout(id, epoch) => self.on_exchange_wait_expired(id, epoch),
            Event::ExchangeNackArrive(id, epoch) => self.on_exchange_wait_expired(id, epoch),
            Event::ExchangeRebroadcast(id, epoch) => self.on_exchange_rebroadcast(id, epoch),
        }
    }

    /// Trace demand lookup honoring the workload's wrapping mode:
    /// closed-system traces hold their last sample (they cover the
    /// run), open-system traces repeat so late arrivals keep their
    /// diurnal shape.
    fn trace_demand_mhz(&self, trace_idx: usize, t_secs: f64) -> f64 {
        let step = self.workload.traces.config.step_secs;
        let trace = &self.workload.traces.vms[trace_idx];
        if self.workload.wrap_traces {
            trace.demand_mhz_at_wrapped(t_secs, step)
        } else {
            trace.demand_mhz_at(t_secs, step)
        }
    }

    fn on_spawn(&mut self, spawn_idx: usize) {
        let spawn = self.workload.spawns[spawn_idx].clone();
        let vm_id = VmId(self.cluster.vms.len() as u32);
        let demand = self.trace_demand_mhz(spawn.trace_idx, self.now);
        self.cluster.vms.push(Vm {
            id: vm_id,
            trace_idx: spawn.trace_idx,
            demand_mhz: demand,
            ram_mb: spawn.ram_mb,
            state: VmState::Departed, // set on successful placement
            arrived_secs: self.now,
            priority: spawn.priority,
            migration_seq: 0,
            lifetime_secs: spawn.lifetime_secs,
            started: false,
            evictable: spawn.evictable,
        });

        let target = if self.workload.initial_placement == InitialPlacement::Spread
            && spawn.arrive_secs == 0.0
        {
            // Paper §IV: the initial population is spread over the
            // (active) servers to build a non-consolidated scenario.
            Some(ServerId((spawn_idx % self.cluster.n_servers()) as u32))
        } else {
            // With the control plane on (and a phased policy), the
            // placement becomes a message exchange: the VM stays in
            // limbo — spawned but attached nowhere — until a commit
            // succeeds, the exchange exhausts its retries, or the run
            // ends.
            if self.try_start_exchange(vm_id, ExchangeKind::NewVm) {
                return;
            }
            let req = PlacementRequest {
                demand_mhz: demand,
                ram_mb: spawn.ram_mb,
                kind: PlacementKind::NewVm,
                exclude: None,
                now_secs: self.now,
            };
            match self.policy.place(&self.cluster.view(), &req) {
                PlaceOutcome::Place(sid) => {
                    assert!(
                        self.cluster.servers[sid.index()].is_powered(),
                        "policy placed a VM on a hibernated server {sid}"
                    );
                    Some(sid)
                }
                PlaceOutcome::WakeThenPlace(sid) => {
                    self.wake_server(sid);
                    Some(sid)
                }
                PlaceOutcome::Reject => None,
            }
        };

        match target {
            Some(sid) => {
                self.accrue_population();
                self.accrue_overload(sid);
                self.cluster.attach(vm_id, sid, self.now);
                self.alive_count += 1;
                self.stats.vms_arrived += 1;
                self.alive_vms.insert(vm_id.0);
                self.reconcile_overload(sid);
                self.refresh_power();
                self.log.push(SimEvent::VmPlaced {
                    t: self.now,
                    vm: vm_id,
                    server: sid,
                });
                // A VM landing on a still-waking host stays pending: its
                // lifetime starts when the wake completes, not now.
                self.start_vm_if_active(vm_id);
            }
            None => {
                self.cluster.vms[vm_id.index()].state = VmState::Dropped;
                self.stats.dropped_vms += 1;
                self.log.push(SimEvent::VmDropped {
                    t: self.now,
                    vm: vm_id,
                });
            }
        }
    }

    fn on_departure(&mut self, vm_id: VmId) {
        // A departing VM invalidates its pending migration exchange:
        // there is nothing left to move.
        if let Some(id) = self
            .control
            .as_ref()
            .and_then(|cp| cp.by_vm.get(&vm_id).copied())
        {
            self.abort_exchange(id);
        }
        let state = self.cluster.vms[vm_id.index()].state;
        match state {
            VmState::Hosted { host } => {
                self.accrue_population();
                self.accrue_overload(host);
                self.cluster.detach(vm_id, host, self.now);
                self.cluster.vms[vm_id.index()].state = VmState::Departed;
                self.alive_count -= 1;
                self.stats.vms_departed += 1;
                self.alive_vms.remove(vm_id.0);
                self.reconcile_overload(host);
                self.refresh_power();
                self.log.push(SimEvent::VmDeparted {
                    t: self.now,
                    vm: vm_id,
                    server: host,
                });
                self.maybe_schedule_hibernate(host);
            }
            VmState::Migrating { from, to } => {
                // The VM dies mid-flight: free the source load and the
                // target reservation. The epoch bump (plus the state
                // change) makes the queued MigrationComplete stale, and
                // the abort counter keeps the migration conservation
                // law balanced: started == completed + aborted +
                // in-flight.
                self.accrue_population();
                self.accrue_overload(from);
                let demand = self.cluster.vms[vm_id.index()].demand_mhz;
                let ram = self.cluster.vms[vm_id.index()].ram_mb;
                self.cluster.detach(vm_id, from, self.now);
                self.cluster.vms[vm_id.index()].state = VmState::Departed;
                self.cluster.vms[vm_id.index()].migration_seq =
                    self.cluster.vms[vm_id.index()].migration_seq.wrapping_add(1);
                self.cluster.release_reservation(to, demand, ram);
                self.alive_count -= 1;
                self.stats.vms_departed += 1;
                self.alive_vms.remove(vm_id.0);
                self.stats.migrations_aborted += 1;
                self.reconcile_overload(from);
                self.refresh_power();
                self.log.push(SimEvent::MigrationAborted {
                    t: self.now,
                    vm: vm_id,
                    from,
                    to,
                    reason: AbortReason::Departed,
                });
                self.log.push(SimEvent::VmDeparted {
                    t: self.now,
                    vm: vm_id,
                    server: from,
                });
                self.maybe_schedule_hibernate(from);
                self.maybe_schedule_hibernate(to);
            }
            VmState::Departed | VmState::Dropped => {}
        }
    }

    fn on_demand_update(&mut self) {
        // Accrue every ongoing overload episode at the old loads first.
        // Accrual must precede any load mutation so granted-fraction
        // samples see the demands that actually held over the interval.
        self.accrue_active_overloads();
        let step = self.workload.traces.config.step_secs;
        // Only alive VMs are visited, and only servers whose hosted
        // demand actually changed are reconciled: a server's overload
        // status cannot flip unless its load moved, so reconciling the
        // rest would be a pure no-op scan.
        let alive: Vec<u32> = self.alive_vms.iter().collect();
        let mut dirty: Vec<u32> = Vec::new();
        if self.shard_plan.k() > 1 {
            // Sharded barrier: the pure trace lookups fan out across
            // the shard pool; the mailbox drain hands the changed
            // demands back in ascending VM order — the same order the
            // sequential loop below applies them in — and every
            // mutation stays on this (coordinator) thread.
            for (vm_id, new_demand) in self.sharded_demand_updates(&alive) {
                if let Some(host) = self.cluster.update_vm_demand(VmId(vm_id), new_demand) {
                    dirty.push(host.0);
                }
            }
        } else {
            for vm_id in alive {
                let vm_idx = vm_id as usize;
                let trace_idx = self.cluster.vms[vm_idx].trace_idx;
                let new_demand = self.trace_demand_mhz(trace_idx, self.now);
                if new_demand == self.cluster.vms[vm_idx].demand_mhz {
                    continue;
                }
                if let Some(host) = self.cluster.update_vm_demand(VmId(vm_id), new_demand) {
                    dirty.push(host.0);
                }
            }
        }
        // Ascending order matches the full scan's log/event sequence.
        dirty.sort_unstable();
        dirty.dedup();
        for id in dirty {
            self.reconcile_overload(ServerId(id));
        }
        self.refresh_power();
        let next = self.now + step as f64;
        if next <= self.config.duration_secs {
            self.queue.schedule_chain(next, Event::DemandUpdate);
        }
    }

    /// Parallel phase of the demand barrier: routes each alive VM to
    /// the shard owning its executing host, fans the pure trace
    /// lookups out over the shard pool, and drains the per-shard
    /// mailboxes back in canonical `(vm, shard)` order. Returns the
    /// `(vm, new_demand)` pairs whose demand actually changed, in
    /// ascending VM order — bit-identical to what the sequential scan
    /// computes, for any shard or thread count, because the lookup is
    /// a pure function of the frozen pre-barrier state.
    fn sharded_demand_updates(&self, alive: &[u32]) -> Vec<(u32, f64)> {
        let plan = &self.shard_plan;
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); plan.k()];
        for &vm_id in alive {
            let host = self.cluster.vms[vm_id as usize]
                .executing_on()
                .expect("alive VM has an executing host");
            // `alive` ascends, so each shard's lane ascends too — the
            // precondition of the mailbox merge.
            routed[plan.owner_of(host.index())].push(vm_id);
        }
        let cluster = &self.cluster;
        let workload = &self.workload;
        let now = self.now;
        let boxes = shard::run_shards(plan.k(), self.shard_threads, |s| {
            let mut mb = shard::Mailbox::new(s);
            for &vm_id in &routed[s] {
                let vm = &cluster.vms[vm_id as usize];
                let new_demand = shard::demand_of(workload, vm.trace_idx, now);
                if new_demand != vm.demand_mhz {
                    mb.push(u64::from(vm_id), new_demand);
                }
            }
            mb
        });
        let mut updates = Vec::new();
        shard::drain_in_order(boxes, |vm_id, demand| {
            updates.push((vm_id as u32, demand));
        });
        updates
    }

    fn on_monitor_tick(&mut self, sid: ServerId) {
        // Every tick re-anchors the chain phase: `now` is always the
        // result of repeated `+ interval` additions from the initial
        // stagger offset, so a chain resumed from this anchor lands on
        // bit-identical tick times.
        self.monitor_anchor[sid.index()] = self.now;
        if !self.cluster.servers[sid.index()].is_powered() {
            // A hibernated server's ticks were pure no-ops that kept
            // rescheduling themselves — the dominant event volume in a
            // consolidated fleet. Park the chain instead; `wake_server`
            // restarts it in phase.
            self.monitor_scheduled[sid.index()] = false;
            return;
        }
        // Reschedule before running the policy so a panic in the policy
        // cannot silently stop a server's monitor.
        let next = self.now + self.config.monitor_interval_secs;
        if next <= self.config.duration_secs {
            self.queue.schedule_chain(next, Event::MonitorTick(sid));
        } else {
            self.monitor_scheduled[sid.index()] = false;
        }
        if !self.cluster.servers[sid.index()].is_active() {
            return;
        }
        let Some(req) = self.policy.monitor(&self.cluster.view(), sid, self.now) else {
            return;
        };
        // A VM whose previous placement exchange is still in flight
        // cannot start another one; ignore the request until that
        // exchange resolves.
        if let Some(cp) = &self.control {
            if cp.by_vm.contains_key(&req.vm) {
                return;
            }
        }
        let vm_state = self.cluster.vms[req.vm.index()].state;
        assert_eq!(
            vm_state,
            VmState::Hosted { host: sid },
            "policy requested migration of a VM it does not host"
        );
        let source_util = self.cluster.hot().utilization(sid.index());
        if self.try_start_exchange(
            req.vm,
            ExchangeKind::Migration {
                source: sid,
                kind: req.kind,
                source_utilization: source_util,
            },
        ) {
            return;
        }
        let demand = self.cluster.vms[req.vm.index()].demand_mhz;
        let ram = self.cluster.vms[req.vm.index()].ram_mb;
        let place_req = PlacementRequest {
            demand_mhz: demand,
            ram_mb: ram,
            kind: match req.kind {
                MigrationKind::High => PlacementKind::MigrationHigh {
                    source_utilization: source_util,
                },
                MigrationKind::Low => PlacementKind::MigrationLow,
            },
            exclude: Some(sid),
            now_secs: self.now,
        };
        let outcome = self.policy.place(&self.cluster.view(), &place_req);
        let (dst, wake) = match outcome {
            PlaceOutcome::Place(dst) => (dst, false),
            PlaceOutcome::WakeThenPlace(dst) => {
                assert!(
                    req.kind != MigrationKind::Low,
                    "policy woke a server for a low migration (forbidden by §II)"
                );
                (dst, true)
            }
            PlaceOutcome::Reject => {
                self.preempt_spot_for(sid, req.kind);
                return;
            }
        };
        assert_ne!(dst, sid, "policy migrated a VM onto its own source");
        if wake {
            self.wake_server(dst);
        } else {
            assert!(
                self.cluster.servers[dst.index()].is_powered(),
                "policy placed a migration on a hibernated server"
            );
        }
        // Start the live migration.
        self.cluster.vms[req.vm.index()].state = VmState::Migrating { from: sid, to: dst };
        self.cluster.add_reservation(dst, demand, ram);
        self.stats.migrations_started += 1;
        match req.kind {
            MigrationKind::Low => self.stats.low_migrations.record(self.now),
            MigrationKind::High => self.stats.high_migrations.record(self.now),
        }
        self.log.push(SimEvent::MigrationStarted {
            t: self.now,
            vm: req.vm,
            from: sid,
            to: dst,
            kind: req.kind,
        });
        let mut complete_at = self.now + self.config.migration_latency_secs;
        if let ServerState::Waking { until_secs } = self.cluster.servers[dst.index()].state {
            // The VM cannot land on a server that is still waking —
            // whether this migration started the wake or the
            // destination was already mid-transition (e.g. accepted
            // inside its grace window).
            complete_at = complete_at.max(until_secs);
        }
        let seq = self.cluster.vms[req.vm.index()].migration_seq;
        self.queue
            .schedule(complete_at, Event::MigrationComplete(req.vm, seq));
    }

    /// Spot-preemption hook: when a *high* migration off an overloaded
    /// server finds no destination anywhere (capacity pressure), the
    /// largest evictable (spot-class) VM on that server is preempted —
    /// an early departure through the normal departure path, so
    /// capacity accounting, logging and the conservation laws all see
    /// an ordinary departure. The VM's queued lifetime `Departure`
    /// event finds it already `Departed` and no-ops. Closed-system
    /// workloads have no evictable VMs, so this is a no-op there.
    fn preempt_spot_for(&mut self, source: ServerId, kind: MigrationKind) {
        if kind != MigrationKind::High {
            return;
        }
        let victim = self.cluster.servers[source.index()]
            .vms
            .iter()
            .map(|&v| &self.cluster.vms[v.index()])
            .filter(|vm| vm.evictable && !vm.is_migrating())
            .max_by(|a, b| {
                // Largest demand frees the most capacity; ties break to
                // the lowest id for determinism.
                a.demand_mhz.total_cmp(&b.demand_mhz).then(b.id.0.cmp(&a.id.0))
            })
            .map(|vm| vm.id);
        let Some(vm_id) = victim else { return };
        self.stats.vms_preempted += 1;
        self.on_departure(vm_id);
    }

    /// Rolls back an in-flight migration: the source keeps the VM, the
    /// destination's reservation is released at the VM's current
    /// demand, and the epoch bump invalidates the queued completion.
    fn abort_migration(&mut self, vm_id: VmId, reason: AbortReason) {
        let VmState::Migrating { from, to } = self.cluster.vms[vm_id.index()].state else {
            panic!("abort_migration on VM {vm_id} that is not migrating");
        };
        let demand = self.cluster.vms[vm_id.index()].demand_mhz;
        let ram = self.cluster.vms[vm_id.index()].ram_mb;
        self.cluster.vms[vm_id.index()].state = VmState::Hosted { host: from };
        self.cluster.vms[vm_id.index()].migration_seq =
            self.cluster.vms[vm_id.index()].migration_seq.wrapping_add(1);
        self.cluster.release_reservation(to, demand, ram);
        self.stats.migrations_aborted += 1;
        self.log.push(SimEvent::MigrationAborted {
            t: self.now,
            vm: vm_id,
            from,
            to,
            reason,
        });
        self.maybe_schedule_hibernate(to);
    }

    fn on_migration_complete(&mut self, vm_id: VmId, seq: u32) {
        let VmState::Migrating { from, to } = self.cluster.vms[vm_id.index()].state else {
            return; // stale event (VM departed mid-flight)
        };
        if self.cluster.vms[vm_id.index()].migration_seq != seq {
            return; // stale epoch: this flight was already torn down
        }
        match self.cluster.servers[to.index()].state {
            ServerState::Waking { until_secs } => {
                // The destination's wake was pushed back (failed and
                // retried) after this completion was scheduled; the VM
                // cannot land until the server is actually up.
                self.queue.schedule(
                    until_secs.max(self.now),
                    Event::MigrationComplete(vm_id, seq),
                );
                return;
            }
            ServerState::Hibernated | ServerState::Failed { .. } => {
                // Destination went dark before the VM landed (only
                // reachable through fault timing races) — roll back.
                self.abort_migration(vm_id, AbortReason::DestinationFailed);
                return;
            }
            ServerState::Active => {}
        }
        if let Some(rng) = self.fault_rng.as_mut() {
            let p = self.config.faults.migration_failure_prob;
            if p > 0.0 && rng.gen_bool(p) {
                self.stats.migration_failures += 1;
                self.abort_migration(vm_id, AbortReason::Injected);
                return;
            }
        }
        self.accrue_overload(from);
        self.accrue_overload(to);
        let demand = self.cluster.vms[vm_id.index()].demand_mhz;
        let ram = self.cluster.vms[vm_id.index()].ram_mb;
        self.cluster.detach(vm_id, from, self.now);
        self.cluster.release_reservation(to, demand, ram);
        self.cluster.attach(vm_id, to, self.now);
        self.cluster.vms[vm_id.index()].migration_seq =
            self.cluster.vms[vm_id.index()].migration_seq.wrapping_add(1);
        self.stats.migrations_completed += 1;
        self.log.push(SimEvent::MigrationCompleted {
            t: self.now,
            vm: vm_id,
            from,
            to,
        });
        self.start_vm_if_active(vm_id);
        self.reconcile_overload(from);
        self.reconcile_overload(to);
        self.refresh_power();
        self.maybe_schedule_hibernate(from);
    }

    /// Starts a VM's lifetime clock once it is hosted on an `Active`
    /// server: schedules its departure on first start. VMs pending on a
    /// `Waking` host hold capacity but do not execute (and do not burn
    /// lifetime) until the wake completes.
    fn start_vm_if_active(&mut self, vm_id: VmId) {
        let vm = &self.cluster.vms[vm_id.index()];
        if vm.started {
            return;
        }
        let Some(host) = vm.executing_on() else {
            return;
        };
        if !self.cluster.servers[host.index()].is_active() {
            return;
        }
        self.cluster.vms[vm_id.index()].started = true;
        if let Some(life) = self.cluster.vms[vm_id.index()].lifetime_secs {
            self.queue
                .schedule(self.now + life, Event::Departure(vm_id));
        }
    }

    fn wake_server(&mut self, sid: ServerId) {
        assert!(
            matches!(
                self.cluster.servers[sid.index()].state,
                ServerState::Hibernated
            ),
            "cannot wake server {sid} in state {:?}",
            self.cluster.servers[sid.index()].state
        );
        let until = self.now + self.config.wake_latency_secs;
        self.cluster
            .set_server_state(sid, ServerState::Waking { until_secs: until });
        self.cluster.servers[sid.index()].empty_since_secs = Some(self.now);
        self.wake_attempts[sid.index()] = 0;
        self.stats.activations.record(self.now);
        self.log.push(SimEvent::ServerWaking {
            t: self.now,
            server: sid,
        });
        self.queue
            .schedule(until, Event::WakeComplete(sid, self.wake_seq[sid.index()]));
        self.refresh_power();
        self.resume_monitor(sid);
    }

    /// Restarts a parked monitor chain after `sid` powered back on.
    /// The next tick is the first element of the original chain that
    /// lies strictly in the future, computed by the same repeated
    /// `+ interval` float additions the live chain performs — the
    /// resumed chain is therefore bit-identical to one that never
    /// stopped ticking.
    fn resume_monitor(&mut self, sid: ServerId) {
        if !self.config.migrations_enabled || self.monitor_scheduled[sid.index()] {
            return;
        }
        let interval = self.config.monitor_interval_secs;
        let mut next = self.monitor_anchor[sid.index()] + interval;
        while next <= self.now {
            next += interval;
        }
        if next <= self.config.duration_secs {
            self.queue.schedule(next, Event::MonitorTick(sid));
            self.monitor_scheduled[sid.index()] = true;
        }
    }

    fn on_wake_complete(&mut self, sid: ServerId, seq: u32) {
        if seq != self.wake_seq[sid.index()] {
            return; // stale: the wake was retried or cancelled
        }
        if !matches!(
            self.cluster.servers[sid.index()].state,
            ServerState::Waking { .. }
        ) {
            return; // stale (hibernated again before finishing — not
                    // reachable with current rules, but harmless)
        }
        if let Some(rng) = self.fault_rng.as_mut() {
            let p = self.config.faults.wake_failure_prob;
            if p > 0.0 && rng.gen_bool(p) {
                self.on_wake_failed(sid);
                return;
            }
        }
        self.wake_attempts[sid.index()] = 0;
        self.cluster.set_server_state(sid, ServerState::Active);
        self.log.push(SimEvent::ServerActive {
            t: self.now,
            server: sid,
        });
        self.policy.on_server_woken(sid, self.now);
        // Pending VMs start executing — their lifetimes begin here.
        let mut pending = self.cluster.servers[sid.index()].vms.clone();
        pending.sort_unstable_by_key(|v| v.0);
        for vm in pending {
            self.start_vm_if_active(vm);
        }
        self.reconcile_overload(sid);
        self.refresh_power();
        self.maybe_schedule_hibernate(sid);
    }

    /// An injected wake failure: retry with capped exponential backoff
    /// up to the configured limit, then give up — displaced pending VMs
    /// are re-placed and the server returns to hibernation.
    fn on_wake_failed(&mut self, sid: ServerId) {
        self.stats.wake_failures += 1;
        let attempt = self.wake_attempts[sid.index()] + 1;
        self.wake_attempts[sid.index()] = attempt;
        self.log.push(SimEvent::WakeFailed {
            t: self.now,
            server: sid,
            attempt,
        });
        let f = &self.config.faults;
        if attempt <= f.wake_retry_limit {
            let backoff = (f.wake_retry_backoff_secs * 2f64.powi(attempt as i32 - 1))
                .min(f.wake_retry_backoff_cap_secs);
            let until = self.now + backoff;
            self.wake_seq[sid.index()] = self.wake_seq[sid.index()].wrapping_add(1);
            self.cluster
                .set_server_state(sid, ServerState::Waking { until_secs: until });
            self.queue
                .schedule(until, Event::WakeComplete(sid, self.wake_seq[sid.index()]));
        } else {
            self.abandon_wake(sid);
        }
    }

    /// Gives up on a wake that exhausted its retries: rolls back
    /// migrations inbound to the server, re-places its pending VMs
    /// through the normal assignment procedure, and hibernates it.
    fn abandon_wake(&mut self, sid: ServerId) {
        self.accrue_population();
        self.rollback_inbound_migrations(sid);
        let mut displaced = self.cluster.servers[sid.index()].vms.clone();
        displaced.sort_unstable_by_key(|v| v.0);
        for &vm in &displaced {
            // A Waking server never executes VMs, so none can be a
            // migration source.
            debug_assert!(!self.cluster.vms[vm.index()].is_migrating());
            self.cluster.detach(vm, sid, self.now);
        }
        debug_assert_eq!(self.cluster.servers[sid.index()].reserved_count, 0);
        self.wake_seq[sid.index()] = self.wake_seq[sid.index()].wrapping_add(1);
        self.wake_attempts[sid.index()] = 0;
        self.cluster.set_server_state(sid, ServerState::Hibernated);
        self.cluster.servers[sid.index()].empty_since_secs = None;
        self.stats.hibernations.record(self.now);
        self.log.push(SimEvent::ServerHibernated {
            t: self.now,
            server: sid,
        });
        self.policy.on_server_failed(sid, self.now);
        self.refresh_power();
        for &vm in &displaced {
            self.replace_vm(vm);
        }
    }

    /// Rolls back every in-flight migration whose destination is `sid`
    /// (about to fail), releasing its reservations.
    fn rollback_inbound_migrations(&mut self, sid: ServerId) {
        if self.cluster.servers[sid.index()].reserved_count == 0 {
            return;
        }
        let inbound: Vec<u32> = self
            .alive_vms
            .iter()
            .filter(|&v| {
                matches!(
                    self.cluster.vms[v as usize].state,
                    VmState::Migrating { to, .. } if to == sid
                )
            })
            .collect();
        for v in inbound {
            self.abort_migration(VmId(v), AbortReason::DestinationFailed);
        }
        debug_assert_eq!(self.cluster.servers[sid.index()].reserved_count, 0);
    }

    /// Re-places a VM displaced by a fault through the normal
    /// assignment procedure; VMs nobody accepts are lost.
    fn replace_vm(&mut self, vm_id: VmId) {
        self.stats.vms_displaced += 1;
        let demand = self.cluster.vms[vm_id.index()].demand_mhz;
        let ram = self.cluster.vms[vm_id.index()].ram_mb;
        let req = PlacementRequest {
            demand_mhz: demand,
            ram_mb: ram,
            kind: PlacementKind::NewVm,
            exclude: None,
            now_secs: self.now,
        };
        match self.policy.place(&self.cluster.view(), &req) {
            PlaceOutcome::Place(sid) => {
                assert!(
                    self.cluster.servers[sid.index()].is_powered(),
                    "policy re-placed a VM on a dark server {sid}"
                );
                self.accrue_overload(sid);
                self.cluster.attach(vm_id, sid, self.now);
                self.stats.vms_replaced += 1;
                self.log.push(SimEvent::VmReplaced {
                    t: self.now,
                    vm: vm_id,
                    server: sid,
                });
                self.start_vm_if_active(vm_id);
                self.reconcile_overload(sid);
            }
            PlaceOutcome::WakeThenPlace(sid) => {
                self.wake_server(sid);
                self.cluster.attach(vm_id, sid, self.now);
                self.stats.vms_replaced += 1;
                self.log.push(SimEvent::VmReplaced {
                    t: self.now,
                    vm: vm_id,
                    server: sid,
                });
            }
            PlaceOutcome::Reject => {
                self.cluster.vms[vm_id.index()].state = VmState::Dropped;
                self.stats.vms_lost += 1;
                self.alive_count -= 1;
                self.alive_vms.remove(vm_id.0);
                self.log.push(SimEvent::VmLost {
                    t: self.now,
                    vm: vm_id,
                });
            }
        }
        self.refresh_power();
    }

    fn on_fault_crash(&mut self) {
        let n_powered = self.cluster.powered_count();
        if n_powered > 0 {
            let k = {
                let rng = self
                    .fault_rng
                    .as_mut()
                    .expect("crash event without a fault RNG");
                rng.gen_range(0..n_powered)
            };
            let victim = self
                .cluster
                .view()
                .powered()
                .nth(k)
                .map(|(sid, _)| sid)
                .expect("powered index shorter than its count");
            self.crash_server(victim);
        }
        self.schedule_next_crash();
    }

    /// Crashes `sid`: aborts every migration touching it, displaces and
    /// re-places its VMs, and takes it down for the repair duration.
    fn crash_server(&mut self, sid: ServerId) {
        debug_assert!(
            self.cluster.servers[sid.index()].is_powered(),
            "crashing a server that is not powered"
        );
        self.accrue_population();
        self.accrue_overload(sid);
        // Inbound flights lose their destination...
        self.rollback_inbound_migrations(sid);
        let mut displaced = self.cluster.servers[sid.index()].vms.clone();
        displaced.sort_unstable_by_key(|v| v.0);
        // ...outbound flights lose their (executing) source: roll them
        // back first so every displaced VM is plainly hosted here.
        for &vm in &displaced {
            if self.cluster.vms[vm.index()].is_migrating() {
                self.abort_migration(vm, AbortReason::SourceFailed);
            }
        }
        for &vm in &displaced {
            self.cluster.detach(vm, sid, self.now);
        }
        debug_assert!(self.cluster.servers[sid.index()].vms.is_empty());
        debug_assert_eq!(self.cluster.servers[sid.index()].reserved_count, 0);
        let until = self.now + self.config.faults.crash_repair_secs;
        self.wake_seq[sid.index()] = self.wake_seq[sid.index()].wrapping_add(1);
        self.wake_attempts[sid.index()] = 0;
        self.cluster
            .set_server_state(sid, ServerState::Failed { until_secs: until });
        self.cluster.servers[sid.index()].empty_since_secs = None;
        self.stats.server_crashes += 1;
        self.log.push(SimEvent::ServerFailed {
            t: self.now,
            server: sid,
        });
        self.reconcile_overload(sid); // closes any open episode
        self.policy.on_server_failed(sid, self.now);
        // The crash aborts every in-flight exchange sourced here: the
        // VMs it was trying to move are displaced below and re-placed
        // through the atomic recovery path. (Exchanges merely
        // *targeting* this server are left to the commit re-check,
        // which NACKs against a non-powered destination.)
        if self.control.is_some() {
            let doomed: Vec<u64> = self
                .control
                .as_ref()
                .expect("control plane invariant: exchange events are only scheduled while the control plane is enabled")
                .exchanges
                .iter()
                .filter(|(_, ex)| {
                    matches!(ex.kind, ExchangeKind::Migration { source, .. } if source == sid)
                })
                .map(|(&id, _)| id)
                .collect();
            for id in doomed {
                self.abort_exchange(id);
            }
        }
        if until <= self.config.duration_secs {
            self.queue.schedule(until, Event::FaultRepair(sid));
        }
        self.refresh_power();
        for &vm in &displaced {
            self.replace_vm(vm);
        }
        #[cfg(debug_assertions)]
        self.cluster.check_invariants();
    }

    fn on_fault_repair(&mut self, sid: ServerId) {
        if !matches!(
            self.cluster.servers[sid.index()].state,
            ServerState::Failed { .. }
        ) {
            return;
        }
        self.cluster.set_server_state(sid, ServerState::Hibernated);
        self.cluster.servers[sid.index()].empty_since_secs = None;
        self.stats.server_repairs += 1;
        self.log.push(SimEvent::ServerRepaired {
            t: self.now,
            server: sid,
        });
    }

    // ------------------------------------------------------------------
    // Control-plane placement exchanges
    //
    // With the message model enabled, a placement is a little state
    // machine instead of one atomic call:
    //
    //   broadcast ──collect──▶ commit ──recheck ok──▶ placed
    //       ▲          │          │
    //       │          │ no       │ NACK / lost
    //       │          ▼ acceptor ▼
    //       └──backoff── re-broadcast? ──rounds spent──▶ wake-or-reject
    //
    // Every transition bumps the exchange epoch; queued events carrying
    // an older epoch are stale and dropped, exactly like the engine's
    // wake and migration epochs.
    // ------------------------------------------------------------------

    /// Builds the placement request an exchange currently represents,
    /// against the VM's *current* demand.
    fn exchange_request(&self, vm: VmId, kind: ExchangeKind) -> PlacementRequest {
        let v = &self.cluster.vms[vm.index()];
        match kind {
            ExchangeKind::NewVm => PlacementRequest {
                demand_mhz: v.demand_mhz,
                ram_mb: v.ram_mb,
                kind: PlacementKind::NewVm,
                exclude: None,
                now_secs: self.now,
            },
            ExchangeKind::Migration {
                source,
                kind,
                source_utilization,
            } => PlacementRequest {
                demand_mhz: v.demand_mhz,
                ram_mb: v.ram_mb,
                kind: match kind {
                    MigrationKind::High => PlacementKind::MigrationHigh { source_utilization },
                    MigrationKind::Low => PlacementKind::MigrationLow,
                },
                exclude: Some(source),
                now_secs: self.now,
            },
        }
    }

    /// Starts a placement exchange for `vm` when the control plane is
    /// enabled and the policy implements the phased protocol. Returns
    /// false — having touched nothing — when the caller should fall
    /// back to the atomic `place` path.
    fn try_start_exchange(&mut self, vm: VmId, kind: ExchangeKind) -> bool {
        if self.control.is_none() {
            return false;
        }
        let req = self.exchange_request(vm, kind);
        let Some(acceptors) = self.policy.invite(&self.cluster.view(), &req) else {
            return false; // policy opted out: stay atomic
        };
        let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
        let id = cp.next_id;
        cp.next_id += 1;
        cp.exchanges.insert(
            id,
            Exchange {
                vm,
                kind,
                epoch: 0,
                started_secs: self.now,
                rounds: 0,
                acceptors: Vec::new(),
                pending_commit: None,
            },
        );
        cp.by_vm.insert(vm, id);
        self.stats.exchanges_started += 1;
        self.log.push(SimEvent::ExchangeStarted { t: self.now, vm });
        self.broadcast_round(id, acceptors);
        true
    }

    /// Broadcasts one invitation round for exchange `id`.
    /// `would_accept` holds the servers whose acceptance trial (run by
    /// the policy at broadcast time) succeeded, in fleet order. Each
    /// invitation and each response carry independent loss and latency
    /// draws; only responses surviving both legs within the collection
    /// window reach the manager.
    fn broadcast_round(&mut self, id: u64, would_accept: Vec<ServerId>) {
        let exclude = {
            let cp = self.control.as_ref().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
            match cp.exchanges[&id].kind {
                ExchangeKind::Migration { source, .. } => Some(source),
                ExchangeKind::NewVm => None,
            }
        };
        let invited: Vec<ServerId> = self
            .cluster
            .view()
            .powered()
            .map(|(sid, _)| sid)
            .filter(|&sid| Some(sid) != exclude)
            .collect();
        let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
        let timeout = cp.cfg.accept_timeout_secs;
        let mut in_time = Vec::new();
        let mut ai = 0usize;
        self.stats.invitations_sent += invited.len() as u64;
        for sid in invited {
            let accepts = would_accept.get(ai) == Some(&sid);
            if accepts {
                ai += 1;
            }
            // Invitation leg: a lost invitation never reaches the
            // server, so no response exists either.
            if cp.lose() {
                self.stats.invite_losses += 1;
                continue;
            }
            let l1 = cp.draw_latency();
            // Response leg.
            if cp.lose() {
                self.stats.invite_losses += 1;
                continue;
            }
            let l2 = cp.draw_latency();
            if l1 + l2 > timeout {
                self.stats.invite_timeouts += 1;
                continue;
            }
            if accepts {
                self.stats.invite_accepts += 1;
                in_time.push(sid);
            } else {
                self.stats.invite_declines += 1;
            }
        }
        debug_assert_eq!(
            ai,
            would_accept.len(),
            "policy returned an acceptor that was not invited"
        );
        let ex = cp.exchanges.get_mut(&id).expect("exchange invariant: a live (epoch-checked) exchange id must be present in the exchange table");
        ex.rounds += 1;
        ex.acceptors = in_time;
        ex.pending_commit = None;
        ex.epoch = ex.epoch.wrapping_add(1);
        let epoch = ex.epoch;
        self.queue
            .schedule(self.now + timeout, Event::ExchangeCollect(id, epoch));
    }

    /// True when `(id, epoch)` still refers to a live exchange state —
    /// the stale-event filter for every exchange event.
    fn exchange_live(&self, id: u64, epoch: u32) -> bool {
        self.control
            .as_ref()
            .and_then(|cp| cp.exchanges.get(&id))
            .is_some_and(|ex| ex.epoch == epoch)
    }

    /// A migration exchange is valid only while its VM still executes
    /// on the requesting source; a crash, departure or displacement
    /// invalidates it. (Eager aborts in `crash_server`/`on_departure`
    /// normally fire first; this is the lazy backstop.)
    fn exchange_valid(&self, id: u64) -> bool {
        let ex = &self.control.as_ref().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled").exchanges[&id];
        match ex.kind {
            ExchangeKind::NewVm => true,
            ExchangeKind::Migration { source, .. } => {
                self.cluster.vms[ex.vm.index()].state == VmState::Hosted { host: source }
                    && self.cluster.servers[source.index()].is_active()
            }
        }
    }

    /// Epoch/validity gate shared by all exchange event handlers:
    /// drops stale events and aborts invalidated exchanges. Returns
    /// true when the handler should proceed.
    fn exchange_gate(&mut self, id: u64, epoch: u32) -> bool {
        if !self.exchange_live(id, epoch) {
            return false;
        }
        if !self.exchange_valid(id) {
            self.abort_exchange(id);
            return false;
        }
        true
    }

    /// Tears down exchange `id` without resolution: a migrating VM
    /// simply stays on its source.
    fn abort_exchange(&mut self, id: u64) {
        let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
        let ex = cp.exchanges.remove(&id).expect("aborting unknown exchange");
        cp.by_vm.remove(&ex.vm);
        self.stats.exchanges_aborted += 1;
        self.log.push(SimEvent::ExchangeAborted {
            t: self.now,
            vm: ex.vm,
        });
        if matches!(ex.kind, ExchangeKind::NewVm) {
            // Unreachable with the current invalidation rules (nothing
            // invalidates a limbo VM), but dropping keeps the VM
            // conservation law airtight if that ever changes.
            self.cluster.vms[ex.vm.index()].state = VmState::Dropped;
            self.stats.dropped_vms += 1;
            self.log.push(SimEvent::VmDropped {
                t: self.now,
                vm: ex.vm,
            });
        }
    }

    fn on_exchange_collect(&mut self, id: u64, epoch: u32) {
        if self.exchange_gate(id, epoch) {
            self.advance_exchange(id);
        }
    }

    /// `ExchangeCommitTimeout` and `ExchangeNackArrive` share this
    /// handler: the manager now knows (NACK) or assumes (timeout —
    /// the commit or its NACK was lost) that the outstanding commit
    /// went nowhere, and moves on. Whichever of the two fires first
    /// wins; the next transition's epoch bump makes the other stale.
    fn on_exchange_wait_expired(&mut self, id: u64, epoch: u32) {
        if self.exchange_gate(id, epoch) {
            self.advance_exchange(id);
        }
    }

    fn on_exchange_rebroadcast(&mut self, id: u64, epoch: u32) {
        if !self.exchange_gate(id, epoch) {
            return;
        }
        let (vm, kind) = {
            let ex = &self.control.as_ref().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled").exchanges[&id];
            (ex.vm, ex.kind)
        };
        let req = self.exchange_request(vm, kind);
        let acceptors = self
            .policy
            .invite(&self.cluster.view(), &req)
            .expect("policy abandoned the phased protocol mid-run");
        self.broadcast_round(id, acceptors);
    }

    /// Moves an exchange forward after its collection window closed or
    /// an outstanding commit came to nothing: try the next in-time
    /// acceptor, else re-broadcast or fall back.
    fn advance_exchange(&mut self, id: u64) {
        let next = {
            let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
            let ex = cp.exchanges.get_mut(&id).expect("exchange invariant: a live (epoch-checked) exchange id must be present in the exchange table");
            if ex.acceptors.is_empty() {
                None
            } else {
                let idx = self.policy.choose_acceptor(&ex.acceptors);
                Some(ex.acceptors.remove(idx))
            }
        };
        match next {
            Some(target) => self.send_commit(id, target),
            None => self.rebroadcast_or_exhaust(id),
        }
    }

    /// Sends the commit for exchange `id` to `target`. The commit leg
    /// may be lost; the manager always arms a timeout equal to its
    /// collection window as the backstop for lost commits and NACKs.
    fn send_commit(&mut self, id: u64, target: ServerId) {
        self.stats.commits_sent += 1;
        let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
        let timeout = cp.cfg.accept_timeout_secs;
        let lost = cp.lose();
        let latency = if lost { 0.0 } else { cp.draw_latency() };
        let ex = cp.exchanges.get_mut(&id).expect("exchange invariant: a live (epoch-checked) exchange id must be present in the exchange table");
        ex.pending_commit = Some(target);
        ex.epoch = ex.epoch.wrapping_add(1);
        let epoch = ex.epoch;
        if lost {
            self.stats.commit_losses += 1;
        } else {
            self.queue
                .schedule(self.now + latency, Event::ExchangeCommitArrive(id, epoch));
        }
        self.queue
            .schedule(self.now + timeout, Event::ExchangeCommitTimeout(id, epoch));
    }

    fn on_exchange_commit_arrive(&mut self, id: u64, epoch: u32) {
        if !self.exchange_gate(id, epoch) {
            return;
        }
        let (vm, kind, target) = {
            let ex = &self.control.as_ref().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled").exchanges[&id];
            (
                ex.vm,
                ex.kind,
                ex.pending_commit
                    .expect("commit arrival without a pending commit"),
            )
        };
        let req = self.exchange_request(vm, kind);
        // Admission re-check against the server's *current* state: the
        // acceptance was computed at broadcast time and may have gone
        // stale — the server may have crashed, hibernated, or drifted
        // past its acceptance threshold in the meantime.
        let admitted = self.cluster.servers[target.index()].is_powered()
            && self
                .policy
                .admission_recheck(&self.cluster.view(), target, &req);
        if admitted {
            self.commit_exchange(id, target);
            return;
        }
        self.stats.commit_nacks += 1;
        self.log.push(SimEvent::ExchangeNacked {
            t: self.now,
            vm,
            server: target,
        });
        let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
        if cp.lose() {
            // The NACK is lost; the manager's commit timeout (already
            // armed) will discover the failure.
            self.stats.commit_losses += 1;
        } else {
            let l = cp.draw_latency();
            self.queue
                .schedule(self.now + l, Event::ExchangeNackArrive(id, epoch));
        }
    }

    /// No acceptors left in the current round: re-broadcast with
    /// capped, jittered exponential backoff while rounds remain, else
    /// resolve through the policy's wake-or-reject fallback.
    fn rebroadcast_or_exhaust(&mut self, id: u64) {
        let rebroadcast = {
            let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
            let rounds = cp.exchanges[&id].rounds;
            if rounds < cp.cfg.broadcast_limit {
                let backoff = cp.rebroadcast_backoff(rounds);
                let ex = cp.exchanges.get_mut(&id).expect("exchange invariant: a live (epoch-checked) exchange id must be present in the exchange table");
                ex.epoch = ex.epoch.wrapping_add(1);
                Some((self.now + backoff, ex.epoch))
            } else {
                None
            }
        };
        match rebroadcast {
            Some((t, epoch)) => {
                self.stats.exchange_rebroadcasts += 1;
                self.queue.schedule(t, Event::ExchangeRebroadcast(id, epoch));
            }
            None => self.exhaust_exchange(id),
        }
    }

    /// Every invitation round came up empty-handed: resolve the
    /// exchange through the policy's §II fallback — wake a hibernated
    /// server, or give up (drop a new VM; leave a migrating VM where
    /// it is).
    fn exhaust_exchange(&mut self, id: u64) {
        let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
        let ex = cp
            .exchanges
            .remove(&id)
            .expect("exhausting unknown exchange");
        cp.by_vm.remove(&ex.vm);
        self.stats.exchanges_abandoned += 1;
        self.stats.placement_latency.push(self.now - ex.started_secs);
        self.log.push(SimEvent::ExchangeAbandoned {
            t: self.now,
            vm: ex.vm,
        });
        let req = self.exchange_request(ex.vm, ex.kind);
        match self.policy.place_exhausted(&self.cluster.view(), &req) {
            PlaceOutcome::Place(sid) => {
                assert!(
                    self.cluster.servers[sid.index()].is_powered(),
                    "policy placed a VM on a hibernated server {sid}"
                );
                self.finalize_exchange_placement(&ex, sid);
            }
            PlaceOutcome::WakeThenPlace(sid) => {
                assert!(
                    !matches!(
                        ex.kind,
                        ExchangeKind::Migration {
                            kind: MigrationKind::Low,
                            ..
                        }
                    ),
                    "policy woke a server for a low migration (forbidden by §II)"
                );
                self.wake_server(sid);
                self.finalize_exchange_placement(&ex, sid);
            }
            PlaceOutcome::Reject => {
                if matches!(ex.kind, ExchangeKind::NewVm) {
                    self.cluster.vms[ex.vm.index()].state = VmState::Dropped;
                    self.stats.dropped_vms += 1;
                    self.log.push(SimEvent::VmDropped {
                        t: self.now,
                        vm: ex.vm,
                    });
                } else if let ExchangeKind::Migration { source, kind, .. } = ex.kind {
                    self.preempt_spot_for(source, kind);
                }
            }
        }
    }

    /// A commit passed the admission re-check: the exchange resolves
    /// into an actual placement (new-VM attach or migration start).
    fn commit_exchange(&mut self, id: u64, target: ServerId) {
        let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
        let ex = cp
            .exchanges
            .remove(&id)
            .expect("committing unknown exchange");
        cp.by_vm.remove(&ex.vm);
        self.stats.exchanges_committed += 1;
        self.stats.placement_latency.push(self.now - ex.started_secs);
        self.log.push(SimEvent::ExchangeCommitted {
            t: self.now,
            vm: ex.vm,
            server: target,
        });
        self.finalize_exchange_placement(&ex, target);
    }

    /// Performs the mechanical placement an exchange resolved to:
    /// attach a new VM, or start the live migration.
    fn finalize_exchange_placement(&mut self, ex: &Exchange, target: ServerId) {
        match ex.kind {
            ExchangeKind::NewVm => {
                self.accrue_population();
                self.accrue_overload(target);
                self.cluster.attach(ex.vm, target, self.now);
                self.alive_count += 1;
                self.stats.vms_arrived += 1;
                self.alive_vms.insert(ex.vm.0);
                self.reconcile_overload(target);
                self.refresh_power();
                self.log.push(SimEvent::VmPlaced {
                    t: self.now,
                    vm: ex.vm,
                    server: target,
                });
                // A VM landing on a still-waking host stays pending:
                // its lifetime starts when the wake completes.
                self.start_vm_if_active(ex.vm);
            }
            ExchangeKind::Migration { source, kind, .. } => {
                assert_ne!(target, source, "exchange committed a VM onto its own source");
                let demand = self.cluster.vms[ex.vm.index()].demand_mhz;
                let ram = self.cluster.vms[ex.vm.index()].ram_mb;
                self.cluster.vms[ex.vm.index()].state = VmState::Migrating {
                    from: source,
                    to: target,
                };
                self.cluster.add_reservation(target, demand, ram);
                self.stats.migrations_started += 1;
                match kind {
                    MigrationKind::Low => self.stats.low_migrations.record(self.now),
                    MigrationKind::High => self.stats.high_migrations.record(self.now),
                }
                self.log.push(SimEvent::MigrationStarted {
                    t: self.now,
                    vm: ex.vm,
                    from: source,
                    to: target,
                    kind,
                });
                let mut complete_at = self.now + self.config.migration_latency_secs;
                if let ServerState::Waking { until_secs } =
                    self.cluster.servers[target.index()].state
                {
                    complete_at = complete_at.max(until_secs);
                }
                let seq = self.cluster.vms[ex.vm.index()].migration_seq;
                self.queue
                    .schedule(complete_at, Event::MigrationComplete(ex.vm, seq));
            }
        }
    }

    /// End-of-run drain: every exchange still in flight resolves as
    /// abandoned — new VMs whose exchange never committed are dropped,
    /// migrating-exchange VMs stay on their source. Afterwards the
    /// exchange conservation law holds exactly:
    /// `started == committed + abandoned + aborted`.
    fn drain_exchanges(&mut self) {
        if self.control.is_none() {
            return;
        }
        let open: Vec<u64> = self
            .control
            .as_ref()
            .expect("control plane invariant: exchange events are only scheduled while the control plane is enabled")
            .exchanges
            .keys()
            .copied()
            .collect();
        for id in open {
            let cp = self.control.as_mut().expect("control plane invariant: exchange events are only scheduled while the control plane is enabled");
            let ex = cp.exchanges.remove(&id).expect("exchange invariant: a live (epoch-checked) exchange id must be present in the exchange table");
            cp.by_vm.remove(&ex.vm);
            self.stats.exchanges_abandoned += 1;
            self.log.push(SimEvent::ExchangeAbandoned {
                t: self.now,
                vm: ex.vm,
            });
            if matches!(ex.kind, ExchangeKind::NewVm) {
                self.cluster.vms[ex.vm.index()].state = VmState::Dropped;
                self.stats.dropped_vms += 1;
                self.log.push(SimEvent::VmDropped {
                    t: self.now,
                    vm: ex.vm,
                });
            }
        }
    }

    fn on_hibernate_check(&mut self, sid: ServerId) {
        let s = &self.cluster.servers[sid.index()];
        if !s.is_active()
            || !s.vms.is_empty()
            || s.reserved_count > 0
            || self.cluster.hot().reserved_mhz(sid.index()) > 1e-9
        {
            return;
        }
        let Some(empty_since) = s.empty_since_secs else {
            return;
        };
        if self.now - empty_since + 1e-9 >= self.config.idle_timeout_secs {
            self.cluster.set_server_state(sid, ServerState::Hibernated);
            self.cluster.servers[sid.index()].empty_since_secs = None;
            self.stats.hibernations.record(self.now);
            self.log.push(SimEvent::ServerHibernated {
                t: self.now,
                server: sid,
            });
            self.refresh_power();
        } else {
            // Became empty again more recently; re-check later.
            self.queue.schedule(
                empty_since + self.config.idle_timeout_secs,
                Event::HibernateCheck(sid),
            );
        }
    }

    fn on_metrics_sample(&mut self) {
        // Debug builds audit the full cluster state at every sample:
        // cached loads vs per-VM demands, host back-pointers,
        // reservation signs.
        #[cfg(debug_assertions)]
        self.cluster.check_invariants();
        self.accrue_population();
        self.accrue_active_overloads();
        // This path is already O(fleet) (RAM sweep below); re-anchor the
        // incremental float aggregates here so their rounding drift is
        // bounded by one sampling interval.
        self.cluster.rebase_aggregates();
        let load = self.cluster.total_used_mhz() / self.cluster.total_capacity_mhz();
        let active = self.cluster.powered_count();
        let power = self.cluster.total_power_w();
        // The O(fleet) RAM/utilization sweep fans out across the shard
        // pool when sharding is engaged; both paths produce the same
        // (sweep max, per-server vector) because the per-server reads
        // are pure and the per-shard partials are folded in shard
        // (= server-range) order.
        let (sweep_max, utils) = if self.shard_plan.k() > 1 {
            self.sharded_metrics_sweep()
        } else {
            let mut max_ram = f64::NEG_INFINITY;
            for srv in &self.cluster.servers {
                let r = srv.ram_utilization();
                if r > max_ram {
                    max_ram = r;
                }
            }
            let utils = if self.config.record_server_utilization {
                let hot = self.cluster.hot();
                Some(
                    self.cluster
                        .servers
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            if s.is_powered() {
                                hot.utilization(i) as f32
                            } else {
                                0.0
                            }
                        })
                        .collect(),
                )
            } else {
                None
            };
            (max_ram, utils)
        };
        if sweep_max > self.stats.max_ram_utilization {
            self.stats.max_ram_utilization = sweep_max;
        }
        self.stats.sample(self.now, load, active, power, utils);
        let next = self.now + self.config.metrics_interval_secs;
        if next <= self.config.duration_secs {
            self.queue.schedule_chain(next, Event::MetricsSample);
        }
    }

    /// Parallel phase of the metrics barrier: each shard sweeps its
    /// own server range for the RAM-utilization maximum and (when
    /// recording is on) the per-server utilization snapshot. The
    /// coordinator folds the partials in shard order; since shard
    /// ranges are contiguous and ascending, the concatenated vector
    /// and the max fold are bit-identical to the flat sequential scan.
    fn sharded_metrics_sweep(&self) -> (f64, Option<Vec<f32>>) {
        let plan = &self.shard_plan;
        let cluster = &self.cluster;
        let record = self.config.record_server_utilization;
        let parts = shard::run_shards(plan.k(), self.shard_threads, |s| {
            let range = plan.range(s);
            let mut max_ram = f64::NEG_INFINITY;
            for i in range.clone() {
                let r = cluster.servers[i].ram_utilization();
                if r > max_ram {
                    max_ram = r;
                }
            }
            let utils = if record {
                let hot = cluster.hot();
                Some(
                    range
                        .map(|i| {
                            if cluster.servers[i].is_powered() {
                                hot.utilization(i) as f32
                            } else {
                                0.0
                            }
                        })
                        .collect::<Vec<f32>>(),
                )
            } else {
                None
            };
            (max_ram, utils)
        });
        let mut max_ram = f64::NEG_INFINITY;
        let mut utils = if record {
            Some(Vec::with_capacity(cluster.n_servers()))
        } else {
            None
        };
        for (m, u) in parts {
            if m > max_ram {
                max_ram = m;
            }
            if let (Some(all), Some(part)) = (utils.as_mut(), u) {
                all.extend(part);
            }
        }
        (max_ram, utils)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterView;
    use crate::policy::MigrationRequest;
    use ecocloud_traces::{TraceConfig, TraceSet};

    /// First-fit test policy: place on the first powered server that
    /// stays under 90 %; wake the first hibernated server otherwise.
    struct FirstFit;

    impl Policy for FirstFit {
        fn name(&self) -> &'static str {
            "first-fit-test"
        }
        fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
            for (sid, s) in view.powered() {
                if Some(sid) == req.exclude {
                    continue;
                }
                let after = (s.used_mhz() + s.reserved_mhz() + req.demand_mhz) / s.capacity_mhz();
                if after <= 0.9 {
                    return PlaceOutcome::Place(sid);
                }
            }
            if req.kind == PlacementKind::MigrationLow {
                return PlaceOutcome::Reject;
            }
            match view.hibernated().next() {
                Some((sid, _)) => PlaceOutcome::WakeThenPlace(sid),
                None => PlaceOutcome::Reject,
            }
        }
    }

    /// Send-safety audit: the replication engine fans simulations out
    /// over worker threads, so a `Simulation` (for any `Send` policy)
    /// and its `SimResult` must be `Send`. A stray `Rc`, raw pointer
    /// or thread-local handle anywhere in the engine, cluster, stats
    /// or event-log state turns this into a compile error — which is
    /// the point: the audit runs at type-check time, not at run time.
    #[test]
    fn simulation_and_result_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimResult>();
        assert_send::<Simulation<FirstFit>>();
        assert_send::<crate::SimConfig>();
        assert_send::<crate::Fleet>();
        assert_send::<crate::Workload>();
    }

    /// Policy that always rejects — every VM is dropped.
    struct RejectAll;
    impl Policy for RejectAll {
        fn name(&self) -> &'static str {
            "reject-all"
        }
        fn place(&mut self, _: &ClusterView<'_>, _: &PlacementRequest) -> PlaceOutcome {
            PlaceOutcome::Reject
        }
    }

    fn small_traces(n: usize) -> TraceSet {
        TraceSet::generate(TraceConfig {
            n_vms: n,
            duration_secs: 2 * 3600,
            ..TraceConfig::small(21)
        })
    }

    fn quick_config() -> SimConfig {
        SimConfig {
            duration_secs: 2.0 * 3600.0,
            ..SimConfig::paper_48h(5)
        }
    }

    #[test]
    fn spawns_all_vms_and_tracks_population() {
        let traces = small_traces(50);
        let w = Workload::all_vms_from_start(traces);
        let sim = Simulation::new(Fleet::uniform(20, 6), w, quick_config(), FirstFit);
        let res = sim.run();
        assert_eq!(res.final_alive_vms, 50);
        assert_eq!(res.summary.dropped_vms, 0);
        assert!(res.final_powered >= 1);
        assert!(res.final_powered < 20, "no consolidation at all");
    }

    #[test]
    fn reject_all_drops_everything() {
        let traces = small_traces(10);
        let w = Workload::all_vms_from_start(traces);
        let sim = Simulation::new(Fleet::uniform(5, 6), w, quick_config(), RejectAll);
        let res = sim.run();
        assert_eq!(res.summary.dropped_vms, 10);
        assert_eq!(res.final_alive_vms, 0);
        // Nobody woke up: the fleet stays dark and consumes nothing.
        assert_eq!(res.final_powered, 0);
        assert_eq!(res.summary.energy_kwh, 0.0);
    }

    #[test]
    fn energy_grows_with_powered_servers() {
        let traces = small_traces(30);
        let w = Workload::all_vms_from_start(traces);
        let sim = Simulation::new(Fleet::uniform(10, 6), w, quick_config(), FirstFit);
        let res = sim.run();
        assert!(res.summary.energy_kwh > 0.0);
        // Sanity: cannot exceed the whole fleet at peak for 2 h.
        let upper = 10.0 * 200.0 * 2.0 / 1000.0;
        assert!(res.summary.energy_kwh <= upper);
    }

    #[test]
    fn departures_free_capacity_and_hibernate_servers() {
        let traces = small_traces(10);
        let mut w = Workload::all_vms_from_start(traces);
        for s in &mut w.spawns {
            s.lifetime_secs = Some(600.0); // all gone after 10 min
        }
        let sim = Simulation::new(Fleet::uniform(5, 6), w, quick_config(), FirstFit);
        let res = sim.run();
        assert_eq!(res.final_alive_vms, 0);
        assert_eq!(res.final_powered, 0, "idle servers failed to hibernate");
        assert!(res.summary.total_hibernations >= 1);
    }

    #[test]
    fn metrics_are_sampled_on_cadence() {
        let traces = small_traces(5);
        let w = Workload::all_vms_from_start(traces);
        let sim = Simulation::new(Fleet::uniform(5, 6), w, quick_config(), FirstFit);
        let res = sim.run();
        // 2 h / 30 min = 4 intervals → samples at 0, .5, 1, 1.5, 2 h.
        assert_eq!(res.stats.overall_load.len(), 5);
        assert_eq!(res.stats.power_w.len(), 5);
        assert_eq!(res.stats.server_utilization.len(), 5);
    }

    #[test]
    fn spread_placement_uses_round_robin() {
        let traces = small_traces(10);
        let mut w = Workload::all_vms_from_start(traces);
        w.initial_placement = InitialPlacement::Spread;
        let mut cfg = quick_config();
        cfg.duration_secs = 60.0;
        cfg.idle_timeout_secs = 1e9; // keep everyone awake
        let sim = Simulation::new(Fleet::uniform(10, 6), w, cfg, FirstFit);
        let res = sim.run();
        // Every server got exactly one VM → all stayed powered.
        assert_eq!(res.final_powered, 10);
    }

    #[test]
    fn deterministic_runs() {
        let build = || {
            let traces = small_traces(40);
            let w = Workload::all_vms_from_start(traces);
            Simulation::new(Fleet::uniform(15, 6), w, quick_config(), FirstFit)
        };
        let a = build().run();
        let b = build().run();
        assert_eq!(a.summary.energy_kwh, b.summary.energy_kwh);
        assert_eq!(a.final_powered, b.final_powered);
        assert_eq!(a.stats.power_w.values(), b.stats.power_w.values());
    }

    #[test]
    fn event_log_agrees_with_counters() {
        let traces = small_traces(40);
        let mut w = Workload::all_vms_from_start(traces);
        for s in &mut w.spawns {
            s.lifetime_secs = Some(3600.0);
        }
        let mut cfg = quick_config();
        cfg.record_events = true;
        let sim = Simulation::new(Fleet::uniform(10, 6), w, cfg, FirstFit);
        let res = sim.run();
        use crate::log::SimEvent as E;
        let count = |pred: fn(&E) -> bool| res.events.count_matching(pred) as u64;
        assert_eq!(
            count(|e| matches!(e, E::VmPlaced { .. })),
            40 - res.summary.dropped_vms
        );
        assert_eq!(
            count(|e| matches!(e, E::VmDropped { .. })),
            res.summary.dropped_vms
        );
        assert_eq!(
            count(|e| matches!(e, E::ServerWaking { .. })),
            res.summary.total_activations
        );
        assert_eq!(
            count(|e| matches!(e, E::ServerHibernated { .. })),
            res.summary.total_hibernations
        );
        assert_eq!(
            count(|e| matches!(e, E::MigrationStarted { .. })),
            res.summary.migrations_started
        );
        assert_eq!(
            count(|e| matches!(e, E::MigrationCompleted { .. })),
            res.summary.migrations_completed
        );
        assert_eq!(
            count(|e| matches!(e, E::OverloadEnded { .. })),
            res.summary.n_violations
        );
        assert_eq!(
            count(|e| matches!(e, E::MigrationAborted { .. })),
            res.summary.migrations_aborted
        );
        // Migration conservation: every start is accounted for.
        assert_eq!(
            res.summary.migrations_started,
            res.summary.migrations_completed
                + res.summary.migrations_aborted
                + res.final_inflight_migrations as u64
        );
        // Chronological order.
        let mut last = 0.0;
        for e in res.events.events() {
            assert!(e.time() >= last, "log out of order");
            last = e.time();
        }
    }

    #[test]
    fn priority_first_protects_high_class() {
        use crate::sla::{OverloadSharing, VmPriority};
        // A tiny fleet driven into overload: one server, VMs of every
        // class; priority-first must short-change only the low class
        // when high+normal fit.
        let traces = TraceSet::generate(ecocloud_traces::TraceConfig {
            n_vms: 3,
            duration_secs: 3600,
            ..ecocloud_traces::TraceConfig::small(99)
        });
        let mut w = Workload::all_vms_from_start(traces);
        w.initial_placement = crate::workload::InitialPlacement::Spread;
        w.spawns[0].priority = VmPriority::High;
        w.spawns[1].priority = VmPriority::Normal;
        w.spawns[2].priority = VmPriority::Low;
        let mut cfg = quick_config();
        cfg.duration_secs = 3600.0;
        cfg.migrations_enabled = false;
        cfg.overload_sharing = OverloadSharing::PriorityFirst;
        let mut sim = Simulation::new(Fleet::uniform(1, 4), w, cfg, FirstFit);
        // Force overload: set demands so high+normal fit but low does
        // not (capacity 8,000 MHz).
        while let Some((t, event)) = sim.queue.pop() {
            if t > 0.0 {
                break;
            }
            sim.now = t;
            sim.handle(event);
        }
        for (i, demand) in [3_000.0, 3_000.0, 4_000.0].iter().enumerate() {
            sim.cluster.update_vm_demand(VmId(i as u32), *demand);
        }
        sim.reconcile_overload(ServerId(0));
        sim.now = 1000.0;
        sim.accrue_overload(ServerId(0));
        let s = &sim.stats;
        // High and Normal classes fully granted — no samples for them.
        assert_eq!(s.granted_by_priority[VmPriority::High.index()].count(), 0);
        assert_eq!(s.granted_by_priority[VmPriority::Normal.index()].count(), 0);
        let low = &s.granted_by_priority[VmPriority::Low.index()];
        assert_eq!(low.count(), 1);
        // Low class gets (8000 − 6000) / 4000 = 0.5 of its demand.
        assert!(
            (low.mean() - 0.5).abs() < 1e-9,
            "low granted {}",
            low.mean()
        );
    }

    #[test]
    fn proportional_sharing_short_changes_everyone() {
        use crate::sla::VmPriority;
        let traces = TraceSet::generate(ecocloud_traces::TraceConfig {
            n_vms: 2,
            duration_secs: 3600,
            ..ecocloud_traces::TraceConfig::small(98)
        });
        let mut w = Workload::all_vms_from_start(traces);
        w.initial_placement = crate::workload::InitialPlacement::Spread;
        w.spawns[0].priority = VmPriority::High;
        w.spawns[1].priority = VmPriority::Low;
        let mut cfg = quick_config();
        cfg.duration_secs = 3600.0;
        cfg.migrations_enabled = false;
        let mut sim = Simulation::new(Fleet::uniform(1, 4), w, cfg, FirstFit);
        while let Some((t, event)) = sim.queue.pop() {
            if t > 0.0 {
                break;
            }
            sim.now = t;
            sim.handle(event);
        }
        sim.cluster.update_vm_demand(VmId(0), 8_000.0);
        sim.cluster.update_vm_demand(VmId(1), 8_000.0);
        sim.reconcile_overload(ServerId(0));
        sim.now = 500.0;
        sim.accrue_overload(ServerId(0));
        // Proportional: both classes granted 0.5.
        for class in [VmPriority::High, VmPriority::Low] {
            let st = &sim.stats.granted_by_priority[class.index()];
            assert_eq!(st.count(), 1, "{class:?}");
            assert!((st.mean() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn event_log_disabled_by_default() {
        let traces = small_traces(10);
        let w = Workload::all_vms_from_start(traces);
        let sim = Simulation::new(Fleet::uniform(5, 6), w, quick_config(), FirstFit);
        let res = sim.run();
        assert!(res.events.is_empty());
    }

    #[test]
    fn cluster_invariants_hold_after_run() {
        let traces = small_traces(60);
        let w = Workload::all_vms_from_start(traces);
        let mut cfg = quick_config();
        cfg.duration_secs = 3600.0;
        let sim = Simulation::new(Fleet::uniform(25, 4), w, cfg, FirstFit);
        // Run manually so we can inspect the cluster afterwards.
        let mut sim = sim;
        while let Some((t, event)) = sim.queue.pop() {
            if t > sim.config.duration_secs {
                break;
            }
            sim.now = t;
            sim.handle(event);
        }
        sim.cluster.check_invariants();
    }

    /// A VM placed on a still-waking server must not burn lifetime
    /// until the wake completes: its departure fires at
    /// `wake_latency + lifetime`, not `lifetime`.
    #[test]
    fn pending_vm_lifetime_starts_at_wake_complete() {
        let traces = small_traces(1);
        let mut w = Workload::all_vms_from_start(traces);
        w.spawns[0].lifetime_secs = Some(600.0);
        let mut cfg = quick_config();
        cfg.wake_latency_secs = 120.0;
        cfg.record_events = true;
        let sim = Simulation::new(Fleet::uniform(2, 6), w, cfg, FirstFit);
        let res = sim.run();
        assert_eq!(res.final_alive_vms, 0);
        let departed_at = res
            .events
            .events()
            .iter()
            .find_map(|e| match e {
                SimEvent::VmDeparted { t, .. } => Some(*t),
                _ => None,
            })
            .expect("VM never departed");
        assert_eq!(
            departed_at, 720.0,
            "lifetime clock started before the host was active"
        );
    }

    /// Scripted policy for the clamp test: everything lands on S0;
    /// migrations target S1 (waking it if needed); two high
    /// migrations of VM 2 then VM 1 are requested once S0 is up.
    struct TwoStepMigrator {
        migrated: u32,
    }

    impl Policy for TwoStepMigrator {
        fn name(&self) -> &'static str {
            "two-step-migrator"
        }
        fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome {
            match req.kind {
                PlacementKind::NewVm => match view.powered().next() {
                    Some((sid, _)) => PlaceOutcome::Place(sid),
                    None => PlaceOutcome::WakeThenPlace(ServerId(0)),
                },
                _ => {
                    if view.powered().any(|(sid, _)| sid == ServerId(1)) {
                        PlaceOutcome::Place(ServerId(1))
                    } else {
                        PlaceOutcome::WakeThenPlace(ServerId(1))
                    }
                }
            }
        }
        fn monitor(
            &mut self,
            _view: &ClusterView<'_>,
            server: ServerId,
            now_secs: f64,
        ) -> Option<MigrationRequest> {
            if server != ServerId(0) || now_secs < 200.0 || self.migrated >= 2 {
                return None;
            }
            self.migrated += 1;
            Some(MigrationRequest {
                vm: VmId(3 - self.migrated),
                kind: MigrationKind::High,
            })
        }
    }

    /// A migration whose destination is still waking — whether this
    /// migration triggered the wake or joined one already in progress
    /// (grace-window acceptance) — completes no earlier than the wake.
    #[test]
    fn migration_completion_clamped_to_destination_wake() {
        let traces = small_traces(3);
        let w = Workload::all_vms_from_start(traces);
        let mut cfg = quick_config();
        cfg.duration_secs = 3600.0;
        cfg.monitor_interval_secs = 30.0;
        cfg.migration_latency_secs = 60.0;
        cfg.wake_latency_secs = 120.0;
        cfg.idle_timeout_secs = 1e9;
        cfg.record_events = true;
        let sim = Simulation::new(
            Fleet::uniform(2, 6),
            w,
            cfg,
            TwoStepMigrator { migrated: 0 },
        );
        let res = sim.run();
        assert_eq!(res.summary.migrations_started, 2);
        assert_eq!(res.summary.migrations_completed, 2);
        // S0 ticks at 15 + 30k: the first migration starts at t = 225
        // and wakes S1 (active at 345); the second starts at t = 255
        // while S1 is still waking. Unclamped it would land at 315 —
        // on a server that is not up yet.
        let s1_active = res
            .events
            .events()
            .iter()
            .find_map(|e| match e {
                SimEvent::ServerActive { t, server } if *server == ServerId(1) => Some(*t),
                _ => None,
            })
            .expect("S1 never became active");
        assert_eq!(s1_active, 345.0);
        let completions: Vec<f64> = res
            .events
            .events()
            .iter()
            .filter_map(|e| match e {
                SimEvent::MigrationCompleted { t, to, .. } => {
                    assert_eq!(*to, ServerId(1));
                    Some(*t)
                }
                _ => None,
            })
            .collect();
        assert_eq!(completions, vec![345.0, 345.0]);
        for t in completions {
            assert!(
                t >= s1_active,
                "migration completed at {t} before destination was active at {s1_active}"
            );
        }
    }

    /// Scripted policy for the mid-flight-departure test: one high
    /// migration of VM 0 from S0 to S1, requested at the first tick.
    struct OneShotMigrator {
        done: bool,
    }

    impl Policy for OneShotMigrator {
        fn name(&self) -> &'static str {
            "one-shot-migrator"
        }
        fn place(&mut self, _view: &ClusterView<'_>, _req: &PlacementRequest) -> PlaceOutcome {
            PlaceOutcome::Place(ServerId(1))
        }
        fn monitor(
            &mut self,
            _view: &ClusterView<'_>,
            server: ServerId,
            _now_secs: f64,
        ) -> Option<MigrationRequest> {
            if server != ServerId(0) || self.done {
                return None;
            }
            self.done = true;
            Some(MigrationRequest {
                vm: VmId(0),
                kind: MigrationKind::High,
            })
        }
    }

    /// A VM that departs mid-flight tears the migration down as an
    /// abort — the conservation law `started == completed + aborted +
    /// in-flight` stays balanced and the log records the abort.
    #[test]
    fn midflight_departure_aborts_migration() {
        let traces = small_traces(1);
        let mut w = Workload::all_vms_from_start(traces);
        w.initial_placement = InitialPlacement::Spread;
        w.spawns[0].lifetime_secs = Some(10.0);
        let mut cfg = quick_config();
        cfg.duration_secs = 3600.0;
        cfg.monitor_interval_secs = 2.0;
        cfg.migration_latency_secs = 15.0;
        cfg.idle_timeout_secs = 1e9;
        cfg.record_events = true;
        let sim = Simulation::new(
            Fleet::uniform(2, 6),
            w,
            cfg,
            OneShotMigrator { done: false },
        );
        let res = sim.run();
        // Migration starts at t = 1 (S0's first tick), would complete
        // at 16; the VM departs at 10.
        assert_eq!(res.summary.migrations_started, 1);
        assert_eq!(res.summary.migrations_completed, 0);
        assert_eq!(res.summary.migrations_aborted, 1);
        assert_eq!(res.final_inflight_migrations, 0);
        assert_eq!(res.final_alive_vms, 0);
        let abort = res
            .events
            .events()
            .iter()
            .find_map(|e| match e {
                SimEvent::MigrationAborted { t, reason, .. } => Some((*t, *reason)),
                _ => None,
            })
            .expect("no abort logged");
        assert_eq!(abort, (10.0, AbortReason::Departed));
    }

    /// Scripted replay of the departure-races-migration interleaving:
    /// the queue is pumped by hand to the instant the VM is mid-flight,
    /// the departure fires while the completion is still queued, and
    /// the stale completion must then drain as a no-op. Capacity is
    /// checked *between* the two deliveries — source load and
    /// destination reservation are both released exactly once by the
    /// departure, and the old-epoch `MigrationComplete` releases
    /// nothing a second time.
    #[test]
    fn departure_mid_migration_releases_capacity_exactly_once() {
        let traces = small_traces(1);
        let mut w = Workload::all_vms_from_start(traces);
        w.initial_placement = InitialPlacement::Spread;
        w.spawns[0].lifetime_secs = Some(10.0);
        let mut cfg = quick_config();
        cfg.duration_secs = 3600.0;
        cfg.monitor_interval_secs = 2.0;
        cfg.migration_latency_secs = 15.0;
        cfg.idle_timeout_secs = 1e9;
        let mut sim = Simulation::new(
            Fleet::uniform(2, 6),
            w,
            cfg,
            OneShotMigrator { done: false },
        );
        // Pump until the monitor tick puts VM 0 in flight (the VM
        // itself only exists once the t = 0 spawn has been delivered).
        loop {
            let (t, ev) = sim.queue.pop().expect("queue drained before flight");
            sim.now = t;
            sim.handle(ev);
            if matches!(
                sim.cluster.vms.first().map(|vm| vm.state),
                Some(VmState::Migrating { .. })
            ) {
                break;
            }
        }
        let VmState::Migrating { from, to } = sim.cluster.vms[0].state else {
            unreachable!()
        };
        let inflight_seq = sim.cluster.vms[0].migration_seq;
        assert!(sim.cluster.hot().used_mhz(from.index()) > 0.0);
        assert!(sim.cluster.hot().reserved_mhz(to.index()) > 0.0);
        // Deliver events up to and including the departure at t = 10,
        // which lands before the completion at t ≈ 16.
        loop {
            let (t, ev) = sim.queue.pop().expect("departure never queued");
            assert!(
                !matches!(ev, Event::MigrationComplete(..)),
                "completion delivered before the departure"
            );
            sim.now = t;
            let done = matches!(ev, Event::Departure(_));
            sim.handle(ev);
            if done {
                break;
            }
        }
        // Exactly-once release: both legs are back to zero, the epoch
        // moved past the in-flight one, and the books show one abort.
        assert_eq!(sim.cluster.hot().used_mhz(from.index()), 0.0);
        assert_eq!(sim.cluster.hot().reserved_mhz(to.index()), 0.0);
        assert_ne!(sim.cluster.vms[0].migration_seq, inflight_seq);
        assert!(matches!(sim.cluster.vms[0].state, VmState::Departed));
        assert_eq!(sim.stats.migrations_aborted, 1);
        assert_eq!(sim.stats.vms_departed, 1);
        // Drain forward until the stale completion is delivered.
        let mut delivered = false;
        while let Some((t, ev)) = sim.queue.pop() {
            let stale = matches!(ev, Event::MigrationComplete(v, s)
                if v == VmId(0) && s == inflight_seq);
            sim.now = t;
            sim.handle(ev);
            if stale {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "stale completion never drained");
        // The stale leg was dropped: nothing completed, nothing
        // released twice, the VM stays departed.
        assert_eq!(sim.stats.migrations_completed, 0);
        assert_eq!(sim.stats.migrations_aborted, 1);
        assert_eq!(sim.cluster.hot().used_mhz(from.index()), 0.0);
        assert_eq!(sim.cluster.hot().reserved_mhz(to.index()), 0.0);
        assert!(matches!(sim.cluster.vms[0].state, VmState::Departed));
    }

    /// Crashing a server displaces its VMs onto the survivors, closes
    /// its books, and leaves the cluster invariants intact.
    #[test]
    fn crash_displaces_and_replaces_vms() {
        let traces = small_traces(2);
        let mut w = Workload::all_vms_from_start(traces);
        w.initial_placement = InitialPlacement::Spread;
        let mut cfg = quick_config();
        cfg.migrations_enabled = false;
        cfg.record_events = true;
        let mut sim = Simulation::new(Fleet::uniform(2, 6), w, cfg, FirstFit);
        // Process the t = 0 events, then crash S0 shortly after.
        while let Some((t, event)) = sim.queue.pop() {
            if t > 0.0 {
                break;
            }
            sim.now = t;
            sim.handle(event);
        }
        sim.now = 0.5;
        sim.crash_server(ServerId(0));
        assert!(matches!(
            sim.cluster.servers[0].state,
            ServerState::Failed { .. }
        ));
        // VM 0 (spread onto S0) was re-placed on the surviving S1.
        assert_eq!(
            sim.cluster.vms[0].state,
            VmState::Hosted {
                host: ServerId(1)
            }
        );
        assert_eq!(sim.stats.server_crashes, 1);
        assert_eq!(sim.stats.vms_displaced, 1);
        assert_eq!(sim.stats.vms_replaced, 1);
        assert_eq!(sim.stats.vms_lost, 0);
        sim.cluster.check_invariants();
        // Run out the calendar: the repair at t = 1800.5 returns S0 to
        // the hibernated pool.
        while sim.step().is_some() {}
        let repaired = sim.stats.server_repairs;
        let state = sim.cluster.servers[0].state;
        let res = sim.finish();
        assert_eq!(repaired, 1);
        assert_eq!(state, ServerState::Hibernated);
        assert_eq!(res.final_alive_vms, 2);
        assert_eq!(
            res.events
                .count_matching(|e| matches!(e, SimEvent::ServerRepaired { .. })),
            1
        );
    }

    /// With every wake failing, the engine retries with backoff, then
    /// abandons the wake, re-places the pending VMs, and never lets a
    /// VM execute on a non-active server.
    #[test]
    fn wake_failures_retry_and_abandon() {
        let traces = small_traces(5);
        let w = Workload::all_vms_from_start(traces);
        let mut cfg = quick_config();
        cfg.record_events = true;
        cfg.faults = crate::config::FaultConfig {
            wake_failure_prob: 1.0,
            wake_retry_limit: 2,
            ..crate::config::FaultConfig::none()
        };
        let mut sim = Simulation::new(Fleet::uniform(3, 6), w, cfg, FirstFit);
        while sim.step().is_some() {}
        sim.cluster.check_invariants();
        let res = sim.finish();
        // At least one full retry-then-abandon cycle happened…
        assert!(res.stats.wake_failures >= 3, "{}", res.stats.wake_failures);
        assert!(res.summary.vms_displaced >= 5);
        // …no server ever reached Active, so nothing executed and
        // nothing departed, but no VM was lost either (the policy
        // always found a hibernated server to try next).
        assert_eq!(
            res.events
                .count_matching(|e| matches!(e, SimEvent::ServerActive { .. })),
            0
        );
        assert_eq!(res.summary.vms_lost, 0);
        assert_eq!(res.final_alive_vms, 5);
        assert!(res.summary.energy_kwh > 0.0, "waking servers draw power");
    }

    /// An overload episode still open when the run ends is flushed
    /// into the violation statistics by the final accounting.
    #[test]
    fn finish_flushes_open_overload_episodes() {
        let traces = small_traces(2);
        let mut w = Workload::all_vms_from_start(traces);
        w.initial_placement = InitialPlacement::Spread;
        let mut cfg = quick_config();
        cfg.duration_secs = 3600.0;
        cfg.migrations_enabled = false;
        cfg.record_events = true;
        let mut sim = Simulation::new(Fleet::uniform(1, 4), w, cfg, FirstFit);
        while let Some((t, event)) = sim.queue.pop() {
            if t > 0.0 {
                break;
            }
            sim.now = t;
            sim.handle(event);
        }
        // Push the single 8,000 MHz server into overload and leave the
        // episode open until the end of the run.
        sim.cluster.update_vm_demand(VmId(0), 8_000.0);
        sim.cluster.update_vm_demand(VmId(1), 8_000.0);
        sim.reconcile_overload(ServerId(0));
        let res = sim.finish();
        assert_eq!(res.summary.n_violations, 1);
        let flushed = res
            .events
            .events()
            .iter()
            .find_map(|e| match e {
                SimEvent::OverloadEnded { t, duration, .. } => Some((*t, *duration)),
                _ => None,
            })
            .expect("open episode was not flushed");
        assert_eq!(flushed, (3600.0, 3600.0));
    }
}
