//! Fleet descriptions — the sets of physical servers the paper's two
//! experiments use.

use crate::server::ServerSpec;
use serde::{Deserialize, Serialize};

/// An ordered collection of server specs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fleet {
    /// One spec per server.
    pub specs: Vec<ServerSpec>,
}

impl Fleet {
    /// The paper's §III fleet: 400 servers with 2 GHz cores, one third
    /// with 4 cores, one third with 6 and one third with 8.
    pub fn paper_400() -> Self {
        Self::thirds(400)
    }

    /// `n` servers split into equal thirds of 4-, 6- and 8-core
    /// machines (remainders go to the 8-core group, matching "the
    /// remaining third" of §III).
    pub fn thirds(n: usize) -> Self {
        let third = n / 3;
        let mut specs = Vec::with_capacity(n);
        for i in 0..n {
            let cores = if i < third {
                4
            } else if i < 2 * third {
                6
            } else {
                8
            };
            specs.push(ServerSpec::paper(cores));
        }
        Self { specs }
    }

    /// The paper's §IV fleet: `n` identical servers with `cores` 2 GHz
    /// cores (Fig. 12 uses 100 × 6 cores).
    pub fn uniform(n: usize, cores: u32) -> Self {
        Self {
            specs: vec![ServerSpec::paper(cores); n],
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the fleet has no servers.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Aggregate capacity of the whole fleet, MHz.
    pub fn total_capacity_mhz(&self) -> f64 {
        self.specs.iter().map(|s| s.capacity_mhz()).sum()
    }

    /// Aggregate peak power of the whole fleet, watts.
    pub fn total_peak_power_w(&self) -> f64 {
        self.specs.iter().map(|s| s.power.max_w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_composition() {
        let f = Fleet::paper_400();
        assert_eq!(f.len(), 400);
        let count = |c: u32| f.specs.iter().filter(|s| s.cores == c).count();
        assert_eq!(count(4), 133);
        assert_eq!(count(6), 133);
        assert_eq!(count(8), 134);
        // 133×8 + 133×12 + 134×16 GHz = 4.804 THz
        assert!((f.total_capacity_mhz() - 4_804_000.0).abs() < 1.0);
    }

    #[test]
    fn uniform_fleet() {
        let f = Fleet::uniform(100, 6);
        assert_eq!(f.len(), 100);
        assert!(f.specs.iter().all(|s| s.cores == 6));
        assert_eq!(f.total_capacity_mhz(), 1_200_000.0);
    }

    #[test]
    fn thirds_handles_remainders() {
        let f = Fleet::thirds(10);
        let count = |c: u32| f.specs.iter().filter(|s| s.cores == c).count();
        assert_eq!(count(4) + count(6) + count(8), 10);
        assert_eq!(count(4), 3);
        assert_eq!(count(6), 3);
        assert_eq!(count(8), 4);
    }

    #[test]
    fn peak_power_matches_specs() {
        let f = Fleet::uniform(10, 6);
        assert_eq!(f.total_peak_power_w(), 2000.0);
    }
}
