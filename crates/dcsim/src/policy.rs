//! The placement-policy interface.
//!
//! The simulator kernel is policy-agnostic: every decision the paper's
//! data-center manager or an individual server makes is routed through
//! this trait. The ecoCloud algorithm (decentralized Bernoulli trials)
//! and the centralized baselines (BFD, FFD, threshold controllers) are
//! both implementations.

use crate::cluster::ClusterView;
use crate::ids::{ServerId, VmId};

/// Why a placement is being requested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementKind {
    /// A brand-new VM submitted by a client.
    NewVm,
    /// Relocation of a VM away from an overloaded server. Carries the
    /// source's utilization: ecoCloud lowers the acceptance threshold
    /// to `0.9 ×` this value so the VM lands on a strictly less loaded
    /// server (the anti-ping-pong rule of §II).
    MigrationHigh {
        /// CPU utilization of the requesting (overloaded) server.
        source_utilization: f64,
    },
    /// Relocation of a VM away from an under-utilized server. §II: "it
    /// would not be acceptable to switch on a new server in order to
    /// accommodate the VM", so policies must never return
    /// [`PlaceOutcome::WakeThenPlace`] for this kind.
    MigrationLow,
}

/// A placement request from the manager.
#[derive(Debug, Clone)]
pub struct PlacementRequest {
    /// CPU demand of the VM to place, MHz.
    pub demand_mhz: f64,
    /// Committed memory of the VM, MB (0 when RAM is not modelled).
    pub ram_mb: f64,
    /// Why the VM needs a host.
    pub kind: PlacementKind,
    /// Server that must not be chosen (the migration source).
    pub exclude: Option<ServerId>,
    /// Current simulated time, seconds.
    pub now_secs: f64,
}

/// A policy's answer to a placement request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlaceOutcome {
    /// Put the VM on this powered server.
    Place(ServerId),
    /// No powered server accepted; wake this hibernated server and put
    /// the VM there (the manager's §II fallback).
    WakeThenPlace(ServerId),
    /// Nobody can host the VM (for low migrations: keep it where it
    /// is; for new VMs: the data center is saturated and the VM is
    /// dropped, which the paper calls the signal to buy more servers).
    Reject,
}

/// The flavour of a server-initiated migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MigrationKind {
    /// Triggered below `T_l` — empty the server so it can sleep.
    Low,
    /// Triggered above `T_h` — relieve an overload.
    High,
}

/// A server's request to migrate one of its VMs away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationRequest {
    /// The VM chosen for migration.
    pub vm: VmId,
    /// Low or high migration.
    pub kind: MigrationKind,
}

/// A placement policy: the brains of the data center.
///
/// Implementations receive an immutable [`ClusterView`] and their own
/// seeded RNG state; the kernel performs the mechanical part (moving
/// VMs, waking servers, accounting).
pub trait Policy {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses a host for a VM (new or migrating).
    fn place(&mut self, view: &ClusterView<'_>, req: &PlacementRequest) -> PlaceOutcome;

    /// Called on each server's monitor tick at simulated time
    /// `now_secs`; may request a migration. The default (used by purely
    /// reactive baselines) never migrates.
    fn monitor(
        &mut self,
        _view: &ClusterView<'_>,
        _server: ServerId,
        _now_secs: f64,
    ) -> Option<MigrationRequest> {
        None
    }

    /// Notification that a server finished waking at `now_secs`
    /// (ecoCloud starts its 30-minute newcomer grace period here).
    fn on_server_woken(&mut self, _server: ServerId, _now_secs: f64) {}

    /// Notification that a server failed at `now_secs` — crashed, or a
    /// wake that exhausted its retries. Policies holding per-server
    /// soft state keyed on liveness (ecoCloud's newcomer grace window
    /// and low-migration backoff) should clear it here so a repaired
    /// server returns with a clean slate.
    fn on_server_failed(&mut self, _server: ServerId, _now_secs: f64) {}

    // --- Phased placement (message-level control plane) ------------
    //
    // When the control plane is enabled the engine replays one round
    // of the paper's distributed assignment as an explicit message
    // exchange: `invite` runs the per-server acceptance trials at
    // broadcast time, `choose_acceptor` picks among the acceptances
    // that survived loss and the collection window, and
    // `admission_recheck` re-evaluates the chosen server against its
    // *current* state when the (possibly delayed) commit arrives.
    // The defaults below are the compatibility shim: a policy that
    // returns `None` from `invite` keeps its single atomic
    // [`place`](Self::place) call even when the control plane is on.

    /// Runs one invitation round: every powered server (minus
    /// `req.exclude`) receives an invitation and runs its acceptance
    /// trial; the returned list holds the servers that would answer
    /// "accept", in fleet order. `None` (the default) opts the policy
    /// out of the phased protocol entirely — the engine then resolves
    /// the placement through the atomic [`place`](Self::place) path.
    fn invite(&mut self, _view: &ClusterView<'_>, _req: &PlacementRequest) -> Option<Vec<ServerId>> {
        None
    }

    /// Picks one acceptor (by index into `acceptors`) among the
    /// acceptances the manager received within its collection window.
    /// `acceptors` is never empty. The default takes the first.
    fn choose_acceptor(&mut self, acceptors: &[ServerId]) -> usize {
        debug_assert!(!acceptors.is_empty());
        0
    }

    /// Admission re-check on commit arrival: the chosen server
    /// re-evaluates the request against its *current* state (its
    /// utilization may have drifted past the acceptance threshold
    /// since the trial). `false` means NACK. The engine has already
    /// verified the server is still powered. The default accepts.
    fn admission_recheck(
        &mut self,
        _view: &ClusterView<'_>,
        _server: ServerId,
        _req: &PlacementRequest,
    ) -> bool {
        true
    }

    /// Called when an exchange has exhausted every invitation round
    /// without a committed acceptance: the policy decides the §II
    /// fallback — wake a hibernated server, or reject. Must never
    /// return [`PlaceOutcome::WakeThenPlace`] for
    /// [`PlacementKind::MigrationLow`]. The default rejects.
    fn place_exhausted(
        &mut self,
        _view: &ClusterView<'_>,
        _req: &PlacementRequest,
    ) -> PlaceOutcome {
        PlaceOutcome::Reject
    }

    // --- Checkpointing ---------------------------------------------

    /// Serializes the policy's mutable state (RNG position, grace
    /// windows, backoff clocks) for a checkpoint, as raw words. The
    /// encoding is policy-private; the engine stores it opaquely and
    /// hands it back to [`restore_state`](Self::restore_state) on
    /// resume. Stateless policies (the default) return an empty vec.
    ///
    /// Policies with internal randomness or time-keyed soft state MUST
    /// override this pair, or a resumed run will diverge from the
    /// uninterrupted one.
    fn checkpoint_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by
    /// [`checkpoint_state`](Self::checkpoint_state) onto a freshly
    /// constructed policy of the same type and configuration. `Err`
    /// with a human-readable reason when the words don't match the
    /// policy's expected shape.
    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "policy {:?} is stateless but the checkpoint carries {} state words",
                self.name(),
                state.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_equality() {
        assert_eq!(
            PlaceOutcome::Place(ServerId(1)),
            PlaceOutcome::Place(ServerId(1))
        );
        assert_ne!(
            PlaceOutcome::Place(ServerId(1)),
            PlaceOutcome::WakeThenPlace(ServerId(1))
        );
        assert_ne!(PlaceOutcome::Reject, PlaceOutcome::Place(ServerId(0)));
    }

    #[test]
    fn kind_carries_source_utilization() {
        let k = PlacementKind::MigrationHigh {
            source_utilization: 0.97,
        };
        match k {
            PlacementKind::MigrationHigh { source_utilization } => {
                assert!((source_utilization - 0.97).abs() < 1e-12)
            }
            _ => panic!("wrong kind"),
        }
    }
}
