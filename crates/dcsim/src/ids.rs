//! Entity identifiers.
//!
//! Servers and VMs are stored in dense arrays and addressed by index
//! newtypes — no hashing on the hot path, and the type system keeps the
//! two index spaces from being mixed up.

use serde::{Deserialize, Serialize};

/// Index of a physical server within a [`crate::Fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The dense-array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Index of a VM within a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl VmId {
    /// The dense-array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_and_index() {
        assert_eq!(ServerId(3).to_string(), "s3");
        assert_eq!(VmId(7).to_string(), "vm7");
        assert_eq!(ServerId(3).index(), 3);
        assert_eq!(VmId(7).index(), 7);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ServerId(1) < ServerId(2));
        assert!(VmId(0) < VmId(9));
    }
}
