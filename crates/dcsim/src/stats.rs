//! Run statistics — everything the paper's Figs. 6–11 and §III claims
//! are computed from.

use crate::checkpoint::{CheckpointError, Dec, Enc};
use ecocloud_metrics::{EmpiricalCdf, EnergyIntegrator, HourlyCounter, StreamingStats, TimeSeries};
use serde::{Deserialize, Serialize};

/// All measurements collected during one simulation run.
#[derive(Debug, Serialize, Deserialize)]
pub struct SimStats {
    /// Overall load: total VM demand / total fleet capacity (Fig. 6's
    /// black dots), sampled every metrics interval.
    pub overall_load: TimeSeries,
    /// Number of powered servers (Fig. 7).
    pub active_servers: TimeSeries,
    /// Total power draw in watts (Fig. 8).
    pub power_w: TimeSeries,
    /// Percentage of VM-time under CPU over-demand per window (Fig. 11).
    pub overdemand_pct: TimeSeries,
    /// Per-server utilization snapshots (Figs. 6 and 12): one vector of
    /// utilizations per metrics sample. Empty when disabled.
    pub server_utilization: Vec<(f64, Vec<f32>)>,
    /// Low migrations per hour (Fig. 9).
    pub low_migrations: HourlyCounter,
    /// High migrations per hour (Fig. 9).
    pub high_migrations: HourlyCounter,
    /// Server activations per hour (Fig. 10).
    pub activations: HourlyCounter,
    /// Server hibernations per hour (Fig. 10).
    pub hibernations: HourlyCounter,
    /// Durations of individual server-overload episodes, seconds
    /// (the "98 % of violations shorter than 30 s" claim).
    pub violation_durations: EmpiricalCdf,
    /// Granted CPU fraction observed during overload episodes
    /// (the "no less than 98 % of the demanded CPU" claim).
    pub granted_during_violation: StreamingStats,
    /// Granted CPU fraction during overload, split by SLA class
    /// (indexed by [`crate::sla::VmPriority::index`]); only classes
    /// that were actually short-changed contribute samples.
    pub granted_by_priority: [StreamingStats; 3],
    /// Worst per-server RAM commitment fraction seen at any metrics
    /// sample (0 when the workload carries no RAM demands).
    pub max_ram_utilization: f64,
    /// Energy consumed by the whole fleet.
    pub energy: EnergyIntegrator,
    /// VMs that could not be placed anywhere and were dropped.
    pub dropped_vms: u64, // detlint: unchecked-counter — no partner by design: a dropped VM never attaches, so the arrival law (arrived == departed + lost + resident) holds exactly without it; the counter itself is monotone
    /// Total migrations started.
    pub migrations_started: u64,
    /// Total migrations completed.
    pub migrations_completed: u64,
    /// Migrations torn down in flight (departures mid-flight, fault
    /// rollbacks). Together with completions and still-in-flight
    /// migrations this accounts for every start.
    #[serde(default)]
    pub migrations_aborted: u64,
    /// Injected server crashes.
    #[serde(default)]
    pub server_crashes: u64,
    /// Crashed servers whose repair completed.
    #[serde(default)]
    pub server_repairs: u64,
    /// Injected wake failures (each retry that fails counts once).
    #[serde(default)]
    pub wake_failures: u64, // detlint: unchecked-counter — no run-level law: wakes have no started/completed pair to conserve against; what does hold is per wake cycle — at most wake_retry_limit + 1 failures before abandon_wake() (enforced by the per-server attempt counter)
    /// Injected migration failures (subset of `migrations_aborted`).
    #[serde(default)]
    pub migration_failures: u64,
    /// VMs displaced from a crashed (or wake-abandoned) server.
    #[serde(default)]
    pub vms_displaced: u64,
    /// Displaced VMs successfully re-placed on another server.
    #[serde(default)]
    pub vms_replaced: u64,
    /// Displaced VMs nobody could host — lost.
    #[serde(default)]
    pub vms_lost: u64,
    /// VMs that successfully attached to a server (initial population
    /// and open-system arrivals alike; dropped VMs never attach).
    /// Conserved in `finish()`: arrived == departed + lost + resident.
    #[serde(default)]
    pub vms_arrived: u64,
    /// VMs that departed (lifetime expiry or spot preemption).
    #[serde(default)]
    pub vms_departed: u64,
    /// Spot-class VMs evicted by the consolidation policy under
    /// capacity pressure (subset of `vms_departed`).
    #[serde(default)]
    pub vms_preempted: u64,
    /// Events popped from the calendar over the whole run — the raw
    /// work count behind wall-clock comparisons (absent in results
    /// serialized before this field existed).
    #[serde(default)]
    pub events_processed: u64, // detlint: unchecked-counter — what holds: incremented exactly once per calendar pop, so it equals the dispatch-loop iteration count by construction; a law would restate the loop
    /// Control plane: invitations broadcast to individual servers.
    #[serde(default)]
    pub invitations_sent: u64,
    /// Control plane: acceptances received within the collection
    /// window.
    #[serde(default)]
    pub invite_accepts: u64,
    /// Control plane: declines received within the collection window.
    #[serde(default)]
    pub invite_declines: u64,
    /// Control plane: invitations whose invitation or response leg was
    /// lost in flight.
    #[serde(default)]
    pub invite_losses: u64,
    /// Control plane: responses that arrived after the collection
    /// window closed.
    #[serde(default)]
    pub invite_timeouts: u64,
    /// Control plane: commit messages sent to chosen acceptors.
    #[serde(default)]
    /// Conserved in `finish()`: `commits_sent >= exchanges_committed`.
    pub commits_sent: u64,
    /// Control plane: commits NACKed by the admission re-check (offer
    /// went stale: utilization drifted, server crashed or hibernated).
    #[serde(default)]
    /// Conserved in `finish()`: `commit_nacks <= commits_sent` (a NACK
    /// answers exactly one arrived, epoch-gated commit).
    pub commit_nacks: u64,
    /// Control plane: commit or NACK legs lost in flight (discovered
    /// by the manager's commit timeout).
    #[serde(default)]
    /// Conserved in `finish()`: `commit_losses <= commits_sent +
    /// commit_nacks` (every loss is a commit leg or a NACK return leg).
    pub commit_losses: u64,
    /// Control plane: placement exchanges started.
    #[serde(default)]
    pub exchanges_started: u64,
    /// Control plane: exchanges that ended in a committed placement.
    #[serde(default)]
    pub exchanges_committed: u64,
    /// Control plane: exchanges that exhausted their retry budget (or
    /// were still open at end of run) and fell back to wake-or-reject.
    #[serde(default)]
    pub exchanges_abandoned: u64,
    /// Control plane: exchanges invalidated mid-flight (source server
    /// crashed, VM departed or was displaced).
    #[serde(default)]
    pub exchanges_aborted: u64,
    /// Control plane: backed-off invitation re-broadcasts.
    #[serde(default)]
    /// Conserved in `finish()`: `exchange_rebroadcasts <=
    /// exchanges_started * broadcast_limit` (per-exchange round cap).
    pub exchange_rebroadcasts: u64,
    /// Control plane: wall-clock (simulated) duration of each resolved
    /// placement exchange, from first broadcast to commit or
    /// abandonment, seconds.
    #[serde(default)]
    pub placement_latency: EmpiricalCdf,

    // Window accumulators for the over-demand percentage (reset at each
    // metrics sample).
    window_overload_vmsecs: f64,
    window_alive_vmsecs: f64,
}

impl Default for SimStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SimStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self {
            overall_load: TimeSeries::new("overall_load"),
            active_servers: TimeSeries::new("active_servers"),
            power_w: TimeSeries::new("power_w"),
            overdemand_pct: TimeSeries::new("overdemand_pct"),
            server_utilization: Vec::new(),
            low_migrations: HourlyCounter::new("low_migrations"),
            high_migrations: HourlyCounter::new("high_migrations"),
            activations: HourlyCounter::new("activations"),
            hibernations: HourlyCounter::new("hibernations"),
            violation_durations: EmpiricalCdf::new(),
            granted_during_violation: StreamingStats::new(),
            granted_by_priority: [
                StreamingStats::new(),
                StreamingStats::new(),
                StreamingStats::new(),
            ],
            max_ram_utilization: 0.0,
            energy: EnergyIntegrator::new(),
            dropped_vms: 0,
            migrations_started: 0,
            migrations_completed: 0,
            migrations_aborted: 0,
            server_crashes: 0,
            server_repairs: 0,
            wake_failures: 0,
            migration_failures: 0,
            vms_displaced: 0,
            vms_replaced: 0,
            vms_lost: 0,
            vms_arrived: 0,
            vms_departed: 0,
            vms_preempted: 0,
            events_processed: 0,
            invitations_sent: 0,
            invite_accepts: 0,
            invite_declines: 0,
            invite_losses: 0,
            invite_timeouts: 0,
            commits_sent: 0,
            commit_nacks: 0,
            commit_losses: 0,
            exchanges_started: 0,
            exchanges_committed: 0,
            exchanges_abandoned: 0,
            exchanges_aborted: 0,
            exchange_rebroadcasts: 0,
            placement_latency: EmpiricalCdf::new(),
            window_overload_vmsecs: 0.0,
            window_alive_vmsecs: 0.0,
        }
    }

    /// Accrues `dt` seconds during which `n_vms` VMs on one server were
    /// short-changed, receiving `granted_frac` of their demand.
    pub fn accrue_overload(&mut self, dt_secs: f64, n_vms: usize, granted_frac: f64) {
        debug_assert!(dt_secs >= 0.0);
        if dt_secs > 0.0 && n_vms > 0 {
            self.window_overload_vmsecs += dt_secs * n_vms as f64;
            self.granted_during_violation.push(granted_frac);
        }
    }

    /// Class-aware variant of [`Self::accrue_overload`]: only classes
    /// whose granted fraction fell below 1 count as over-demanded
    /// VM-time, and each contributes to its own granted statistic.
    pub fn accrue_overload_classes(
        &mut self,
        dt_secs: f64,
        count_by_class: [usize; 3],
        granted_by_class: [f64; 3],
    ) {
        debug_assert!(dt_secs >= 0.0);
        if dt_secs <= 0.0 {
            return;
        }
        for class in 0..3 {
            let n = count_by_class[class];
            let g = granted_by_class[class];
            if n > 0 && g < 1.0 - 1e-12 {
                self.window_overload_vmsecs += dt_secs * n as f64;
                self.granted_during_violation.push(g);
                self.granted_by_priority[class].push(g);
            }
        }
    }

    /// Accrues `dt` seconds of `population` alive VMs (the denominator
    /// of the over-demand percentage).
    pub fn accrue_population(&mut self, dt_secs: f64, population: usize) {
        debug_assert!(dt_secs >= 0.0);
        self.window_alive_vmsecs += dt_secs * population as f64;
    }

    /// Records one finished overload episode of the given duration.
    pub fn record_violation(&mut self, duration_secs: f64) {
        self.violation_durations.push(duration_secs);
    }

    /// Takes a metrics sample at time `t_secs` and resets the window
    /// accumulators.
    #[allow(clippy::too_many_arguments)]
    pub fn sample(
        &mut self,
        t_secs: f64,
        overall_load: f64,
        active_servers: usize,
        power_w: f64,
        server_utils: Option<Vec<f32>>,
    ) {
        self.overall_load.push(t_secs, overall_load);
        self.active_servers.push(t_secs, active_servers as f64);
        self.power_w.push(t_secs, power_w);
        let pct = if self.window_alive_vmsecs > 0.0 {
            100.0 * self.window_overload_vmsecs / self.window_alive_vmsecs
        } else {
            0.0
        };
        self.overdemand_pct.push(t_secs, pct);
        self.window_overload_vmsecs = 0.0;
        self.window_alive_vmsecs = 0.0;
        if let Some(u) = server_utils {
            self.server_utilization.push((t_secs, u));
        }
    }

    /// Fraction of violations shorter than `secs` (NaN-free; 1.0 when
    /// no violation ever occurred — vacuously satisfied).
    pub fn violations_shorter_than(&mut self, secs: f64) -> f64 {
        if self.violation_durations.is_empty() {
            1.0
        } else {
            self.violation_durations.fraction_at_most(secs)
        }
    }

    /// Compact serializable summary of the run.
    pub fn summary(&mut self) -> SimSummary {
        SimSummary {
            energy_kwh: self.energy.energy_kwh(),
            mean_active_servers: self.active_servers.time_weighted_mean(),
            max_power_w: self.power_w.max(),
            total_low_migrations: self.low_migrations.total(),
            total_high_migrations: self.high_migrations.total(),
            total_activations: self.activations.total(),
            total_hibernations: self.hibernations.total(),
            dropped_vms: self.dropped_vms,
            migrations_started: self.migrations_started,
            migrations_completed: self.migrations_completed,
            migrations_aborted: self.migrations_aborted,
            server_crashes: self.server_crashes,
            server_repairs: self.server_repairs,
            wake_failures: self.wake_failures,
            migration_failures: self.migration_failures,
            vms_displaced: self.vms_displaced,
            vms_replaced: self.vms_replaced,
            vms_lost: self.vms_lost,
            vms_arrived: self.vms_arrived,
            vms_departed: self.vms_departed,
            vms_preempted: self.vms_preempted,
            events_processed: self.events_processed,
            invitations_sent: self.invitations_sent,
            invite_accepts: self.invite_accepts,
            invite_declines: self.invite_declines,
            invite_losses: self.invite_losses,
            invite_timeouts: self.invite_timeouts,
            commits_sent: self.commits_sent,
            commit_nacks: self.commit_nacks,
            commit_losses: self.commit_losses,
            exchanges_started: self.exchanges_started,
            exchanges_committed: self.exchanges_committed,
            exchanges_abandoned: self.exchanges_abandoned,
            exchanges_aborted: self.exchanges_aborted,
            exchange_rebroadcasts: self.exchange_rebroadcasts,
            placement_p99_secs: if self.placement_latency.is_empty() {
                0.0
            } else {
                self.placement_latency.quantile(0.99)
            },
            n_violations: self.violation_durations.len() as u64,
            violations_under_30s: self.violations_shorter_than(30.0),
            mean_granted_during_violation: if self.granted_during_violation.count() == 0 {
                1.0
            } else {
                self.granted_during_violation.mean()
            },
            max_overdemand_pct: if self.overdemand_pct.is_empty() {
                0.0
            } else {
                self.overdemand_pct.max()
            },
            max_ram_utilization: self.max_ram_utilization,
        }
    }

    /// Checkpoint encoding. Every collector is captured through its
    /// raw-parts view (including the in-progress window accumulators
    /// and the CDFs' sortedness flags) so a restored run re-snapshots
    /// to the exact same bytes.
    pub(crate) fn encode(&self, e: &mut Enc) {
        encode_series(&self.overall_load, e);
        encode_series(&self.active_servers, e);
        encode_series(&self.power_w, e);
        encode_series(&self.overdemand_pct, e);
        e.usize(self.server_utilization.len());
        for (t, utils) in &self.server_utilization {
            e.f64(*t);
            e.usize(utils.len());
            for u in utils {
                e.f32(*u);
            }
        }
        encode_hourly(&self.low_migrations, e);
        encode_hourly(&self.high_migrations, e);
        encode_hourly(&self.activations, e);
        encode_hourly(&self.hibernations, e);
        encode_cdf(&self.violation_durations, e);
        encode_streaming(&self.granted_during_violation, e);
        for s in &self.granted_by_priority {
            encode_streaming(s, e);
        }
        e.f64(self.max_ram_utilization);
        e.f64(self.energy.last_time_secs());
        e.f64(self.energy.current_power_w());
        e.f64(self.energy.energy_joules());
        e.u64s(&[
            self.dropped_vms,
            self.migrations_started,
            self.migrations_completed,
            self.migrations_aborted,
            self.server_crashes,
            self.server_repairs,
            self.wake_failures,
            self.migration_failures,
            self.vms_displaced,
            self.vms_replaced,
            self.vms_lost,
            self.vms_arrived,
            self.vms_departed,
            self.vms_preempted,
            self.events_processed,
            self.invitations_sent,
            self.invite_accepts,
            self.invite_declines,
            self.invite_losses,
            self.invite_timeouts,
            self.commits_sent,
            self.commit_nacks,
            self.commit_losses,
            self.exchanges_started,
            self.exchanges_committed,
            self.exchanges_abandoned,
            self.exchanges_aborted,
            self.exchange_rebroadcasts,
        ]);
        encode_cdf(&self.placement_latency, e);
        e.f64(self.window_overload_vmsecs);
        e.f64(self.window_alive_vmsecs);
    }

    /// Inverse of [`encode`](Self::encode).
    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<Self, CheckpointError> {
        let overall_load = decode_series(d)?;
        let active_servers = decode_series(d)?;
        let power_w = decode_series(d)?;
        let overdemand_pct = decode_series(d)?;
        let n_snaps = d.usize()?;
        d.check_remaining(n_snaps, 16)?;
        let mut server_utilization = Vec::with_capacity(n_snaps);
        for _ in 0..n_snaps {
            let t = d.f64()?;
            let m = d.usize()?;
            d.check_remaining(m, 4)?;
            let mut utils = Vec::with_capacity(m);
            for _ in 0..m {
                utils.push(d.f32()?);
            }
            server_utilization.push((t, utils));
        }
        let low_migrations = decode_hourly(d)?;
        let high_migrations = decode_hourly(d)?;
        let activations = decode_hourly(d)?;
        let hibernations = decode_hourly(d)?;
        let violation_durations = decode_cdf(d)?;
        let granted_during_violation = decode_streaming(d)?;
        let granted_by_priority = [
            decode_streaming(d)?,
            decode_streaming(d)?,
            decode_streaming(d)?,
        ];
        let max_ram_utilization = d.f64()?;
        let energy = EnergyIntegrator::from_parts(d.f64()?, d.f64()?, d.f64()?);
        let counters = d.u64s()?;
        if counters.len() != 28 {
            return Err(CheckpointError::Corrupt(format!(
                "stats counter block has {} entries, expected 28",
                counters.len()
            )));
        }
        let placement_latency = decode_cdf(d)?;
        let window_overload_vmsecs = d.f64()?;
        let window_alive_vmsecs = d.f64()?;
        Ok(Self {
            overall_load,
            active_servers,
            power_w,
            overdemand_pct,
            server_utilization,
            low_migrations,
            high_migrations,
            activations,
            hibernations,
            violation_durations,
            granted_during_violation,
            granted_by_priority,
            max_ram_utilization,
            energy,
            dropped_vms: counters[0],
            migrations_started: counters[1],
            migrations_completed: counters[2],
            migrations_aborted: counters[3],
            server_crashes: counters[4],
            server_repairs: counters[5],
            wake_failures: counters[6],
            migration_failures: counters[7],
            vms_displaced: counters[8],
            vms_replaced: counters[9],
            vms_lost: counters[10],
            vms_arrived: counters[11],
            vms_departed: counters[12],
            vms_preempted: counters[13],
            events_processed: counters[14],
            invitations_sent: counters[15],
            invite_accepts: counters[16],
            invite_declines: counters[17],
            invite_losses: counters[18],
            invite_timeouts: counters[19],
            commits_sent: counters[20],
            commit_nacks: counters[21],
            commit_losses: counters[22],
            exchanges_started: counters[23],
            exchanges_committed: counters[24],
            exchanges_abandoned: counters[25],
            exchanges_aborted: counters[26],
            exchange_rebroadcasts: counters[27],
            placement_latency,
            window_overload_vmsecs,
            window_alive_vmsecs,
        })
    }
}

fn encode_series(s: &TimeSeries, e: &mut Enc) {
    e.str(s.name());
    e.f64s(s.times_secs());
    e.f64s(s.values());
}

fn decode_series(d: &mut Dec<'_>) -> Result<TimeSeries, CheckpointError> {
    let name = d.str()?;
    let t = d.f64s()?;
    let v = d.f64s()?;
    if t.len() != v.len() {
        return Err(CheckpointError::Corrupt(format!(
            "time series {name:?} has {} timestamps but {} values",
            t.len(),
            v.len()
        )));
    }
    Ok(TimeSeries::from_parts(name, t, v))
}

fn encode_hourly(c: &HourlyCounter, e: &mut Enc) {
    e.str(c.name());
    e.u64s(c.counts());
}

fn decode_hourly(d: &mut Dec<'_>) -> Result<HourlyCounter, CheckpointError> {
    let name = d.str()?;
    Ok(HourlyCounter::from_parts(name, d.u64s()?))
}

fn encode_cdf(c: &EmpiricalCdf, e: &mut Enc) {
    let (samples, sorted) = c.raw_parts();
    e.f64s(samples);
    e.bool(sorted);
}

fn decode_cdf(d: &mut Dec<'_>) -> Result<EmpiricalCdf, CheckpointError> {
    let samples = d.f64s()?;
    let sorted = d.bool()?;
    Ok(EmpiricalCdf::from_raw_parts(samples, sorted))
}

fn encode_streaming(s: &StreamingStats, e: &mut Enc) {
    let (count, mean, m2, min, max) = s.raw_parts();
    e.u64(count);
    e.f64(mean);
    e.f64(m2);
    e.f64(min);
    e.f64(max);
}

fn decode_streaming(d: &mut Dec<'_>) -> Result<StreamingStats, CheckpointError> {
    Ok(StreamingStats::from_raw_parts(
        d.u64()?,
        d.f64()?,
        d.f64()?,
        d.f64()?,
        d.f64()?,
    ))
}

/// Headline numbers of a run, ready for tables and JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSummary {
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Time-weighted mean of powered servers.
    pub mean_active_servers: f64,
    /// Peak sampled power, watts.
    pub max_power_w: f64,
    /// Low migrations over the whole run.
    pub total_low_migrations: u64,
    /// High migrations over the whole run.
    pub total_high_migrations: u64,
    /// Server activations over the whole run.
    pub total_activations: u64,
    /// Server hibernations over the whole run.
    pub total_hibernations: u64,
    /// VMs dropped for lack of capacity.
    pub dropped_vms: u64,
    /// Migrations started.
    pub migrations_started: u64,
    /// Migrations completed.
    pub migrations_completed: u64,
    /// Migrations torn down in flight.
    #[serde(default)]
    pub migrations_aborted: u64,
    /// Injected server crashes.
    #[serde(default)]
    pub server_crashes: u64,
    /// Crashed servers repaired.
    #[serde(default)]
    pub server_repairs: u64,
    /// Injected wake failures.
    #[serde(default)]
    pub wake_failures: u64,
    /// Injected migration failures.
    #[serde(default)]
    pub migration_failures: u64,
    /// VMs displaced by crashes / abandoned wakes.
    #[serde(default)]
    pub vms_displaced: u64,
    /// Displaced VMs successfully re-placed.
    #[serde(default)]
    pub vms_replaced: u64,
    /// Displaced VMs nobody could host.
    #[serde(default)]
    pub vms_lost: u64,
    /// VMs that successfully attached to a server.
    #[serde(default)]
    pub vms_arrived: u64,
    /// VMs that departed (lifetime expiry or preemption).
    #[serde(default)]
    pub vms_departed: u64,
    /// Spot VMs evicted under capacity pressure.
    #[serde(default)]
    pub vms_preempted: u64,
    /// Events popped from the calendar over the whole run.
    #[serde(default)]
    pub events_processed: u64,
    /// Control plane: invitations broadcast to individual servers.
    #[serde(default)]
    pub invitations_sent: u64,
    /// Control plane: acceptances received in time.
    #[serde(default)]
    pub invite_accepts: u64,
    /// Control plane: declines received in time.
    #[serde(default)]
    pub invite_declines: u64,
    /// Control plane: invitations lost on either leg.
    #[serde(default)]
    pub invite_losses: u64,
    /// Control plane: responses arriving after the window.
    #[serde(default)]
    pub invite_timeouts: u64,
    /// Control plane: commit messages sent.
    #[serde(default)]
    pub commits_sent: u64,
    /// Control plane: commits NACKed by the admission re-check.
    #[serde(default)]
    pub commit_nacks: u64,
    /// Control plane: commit/NACK legs lost in flight.
    #[serde(default)]
    pub commit_losses: u64,
    /// Control plane: placement exchanges started.
    #[serde(default)]
    pub exchanges_started: u64,
    /// Control plane: exchanges ending in a committed placement.
    #[serde(default)]
    pub exchanges_committed: u64,
    /// Control plane: exchanges that fell back to wake-or-reject.
    #[serde(default)]
    pub exchanges_abandoned: u64,
    /// Control plane: exchanges invalidated mid-flight.
    #[serde(default)]
    pub exchanges_aborted: u64,
    /// Control plane: invitation re-broadcasts.
    #[serde(default)]
    pub exchange_rebroadcasts: u64,
    /// Control plane: 99th-percentile placement-exchange duration,
    /// seconds (0 when no exchange ran).
    #[serde(default)]
    pub placement_p99_secs: f64,
    /// Number of overload episodes.
    pub n_violations: u64,
    /// Fraction of overload episodes shorter than 30 s.
    pub violations_under_30s: f64,
    /// Mean granted CPU fraction during overloads.
    pub mean_granted_during_violation: f64,
    /// Worst 30-minute over-demand percentage.
    pub max_overdemand_pct: f64,
    /// Worst per-server RAM commitment fraction observed.
    pub max_ram_utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overdemand_percentage_per_window() {
        let mut s = SimStats::new();
        s.accrue_population(100.0, 10); // 1000 vm-seconds
        s.accrue_overload(5.0, 2, 0.9); // 10 vm-seconds short-changed
        s.sample(1800.0, 0.5, 3, 1000.0, None);
        assert!((s.overdemand_pct.values()[0] - 1.0).abs() < 1e-9);
        // Window resets.
        s.accrue_population(100.0, 10);
        s.sample(3600.0, 0.5, 3, 1000.0, None);
        assert_eq!(s.overdemand_pct.values()[1], 0.0);
    }

    #[test]
    fn violations_vacuously_short_when_none() {
        let mut s = SimStats::new();
        assert_eq!(s.violations_shorter_than(30.0), 1.0);
        s.record_violation(10.0);
        s.record_violation(50.0);
        assert_eq!(s.violations_shorter_than(30.0), 0.5);
    }

    #[test]
    fn summary_reflects_counters() {
        let mut s = SimStats::new();
        s.low_migrations.record(100.0);
        s.high_migrations.record(200.0);
        s.high_migrations.record(300.0);
        s.activations.record(10.0);
        s.dropped_vms = 3;
        s.sample(0.0, 0.1, 5, 500.0, None);
        s.sample(1800.0, 0.2, 6, 600.0, None);
        let sum = s.summary();
        assert_eq!(sum.total_low_migrations, 1);
        assert_eq!(sum.total_high_migrations, 2);
        assert_eq!(sum.total_activations, 1);
        assert_eq!(sum.dropped_vms, 3);
        assert_eq!(sum.max_power_w, 600.0);
        assert_eq!(sum.mean_granted_during_violation, 1.0);
    }

    #[test]
    fn server_snapshots_optional() {
        let mut s = SimStats::new();
        s.sample(0.0, 0.0, 0, 0.0, Some(vec![0.5, 0.7]));
        s.sample(1800.0, 0.0, 0, 0.0, None);
        assert_eq!(s.server_utilization.len(), 1);
        assert_eq!(s.server_utilization[0].1, vec![0.5, 0.7]);
    }

    #[test]
    fn control_plane_counters_roll_up() {
        let mut s = SimStats::new();
        s.invitations_sent = 10;
        s.invite_accepts = 4;
        s.invite_declines = 3;
        s.invite_losses = 2;
        s.invite_timeouts = 1;
        s.placement_latency.push(0.5);
        s.placement_latency.push(1.5);
        let sum = s.summary();
        assert_eq!(
            sum.invitations_sent,
            sum.invite_accepts + sum.invite_declines + sum.invite_losses + sum.invite_timeouts
        );
        assert_eq!(sum.placement_p99_secs, 1.5);
        // No exchanges at all: the p99 reports a clean zero.
        assert_eq!(SimStats::new().summary().placement_p99_secs, 0.0);
    }

    #[test]
    fn granted_fraction_tracked_only_under_overload() {
        let mut s = SimStats::new();
        s.accrue_overload(0.0, 5, 0.5); // zero-length: ignored
        assert_eq!(s.granted_during_violation.count(), 0);
        s.accrue_overload(1.0, 5, 0.95);
        assert_eq!(s.granted_during_violation.count(), 1);
        assert!((s.granted_during_violation.mean() - 0.95).abs() < 1e-12);
    }
}
