//! Deterministic sharded execution of the fleet-wide fan-out phases.
//!
//! The fleet is partitioned into `K` contiguous shards of the server
//! index space ([`ShardPlan`]). At every epoch barrier — the 5-minute
//! `DemandUpdate` trace tick and the 30-minute `MetricsSample` — each
//! shard computes the **pure** per-element values its servers and VMs
//! need (trace demand lookups, per-server RAM/utilization reads) into
//! a per-shard [`Mailbox`], in parallel. The coordinator then drains
//! all mailboxes in canonical `(key, shard)` order
//! ([`drain_in_order`]) and performs every state mutation, float fold
//! and RNG draw itself, sequentially, exactly as the unsharded engine
//! would.
//!
//! # The determinism contract
//!
//! Results are **byte-identical for any shard count and any thread
//! count** because the parallel phase is restricted to values that are
//! pure functions of the pre-barrier state:
//!
//! * a shard never mutates anything — it only reads the frozen
//!   pre-barrier [`Cluster`](crate::cluster::Cluster) and
//!   [`Workload`] and writes its own
//!   mailbox;
//! * every cross-shard effect (a demand change on a VM migrating into
//!   another shard, a utilization sample feeding a global statistic)
//!   travels as a mailbox message and is applied by the coordinator in
//!   canonical order, so float rounding and log order are independent
//!   of which shard finished first;
//! * `K = 1` short-circuits to the exact sequential code path, so the
//!   sharded engine reproduces the historical goldens bit for bit.
//!
//! The policy RNG, the fault stream and the control-plane message
//! stream are **never** touched from a shard: all Bernoulli trials run
//! on the coordinator in event order. detlint's DL010 rule enforces
//! the complement statically: no shared-mutable-state primitive
//! (`Mutex`, `RwLock`, atomics, channels) may appear in a simulation
//! crate outside this module, so the mailbox API is the *only* way
//! data can cross a shard boundary.
//!
//! # Worked example
//!
//! ```
//! use dcsim::shard::{drain_in_order, run_shards, Mailbox, ShardPlan};
//!
//! // 10 servers across 3 shards: [0..4), [4..7), [7..10).
//! let plan = ShardPlan::contiguous(10, 3);
//! assert_eq!(plan.k(), 3);
//! assert_eq!(plan.owner_of(5), 1);
//!
//! // Each shard squares its server indices into its mailbox ...
//! let boxes = run_shards(plan.k(), 2, |s| {
//!     let mut mb = Mailbox::new(s);
//!     for i in plan.range(s) {
//!         mb.push(i as u64, (i * i) as u64);
//!     }
//!     mb
//! });
//! // ... and the coordinator drains them in ascending key order,
//! // independent of which worker thread ran which shard.
//! let mut merged = Vec::new();
//! drain_in_order(boxes, |key, sq| merged.push((key, sq)));
//! assert_eq!(merged[5], (5, 25));
//! assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
//! ```

use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Shard-engine knobs ([`SimConfig::shard`](crate::SimConfig)).
///
/// The defaults (`shards = 1`, `threads = 0`) reproduce the unsharded
/// engine exactly; any other value is guaranteed to produce
/// byte-identical output, so these are pure performance knobs and do
/// **not** appear in the canonical run spec a checkpoint pins — a
/// snapshot taken at one shard count resumes at any other.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of fleet shards `K` (contiguous server ranges). 1 runs
    /// the exact sequential code path.
    pub shards: usize,
    /// Worker threads for the parallel phase; 0 means one thread per
    /// shard (capped at the machine's parallelism). The value never
    /// affects output bytes.
    pub threads: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            threads: 0,
        }
    }
}

impl ShardConfig {
    /// `K` shards with the default thread policy.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// True when the fan-out phases run through the mailbox path.
    pub fn engaged(&self) -> bool {
        self.shards > 1
    }

    /// Resolves the effective worker-thread count for `k` shards.
    pub fn effective_threads(&self, k: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        match self.threads {
            0 => k.min(hw()),
            t => t.min(k),
        }
    }
}

/// A contiguous partition of the server index space into `K` shards.
///
/// Shard sizes differ by at most one and preserve index order, so the
/// concatenation of all shard ranges is `0..n` exactly — the property
/// that makes a per-shard sweep followed by an in-order drain
/// bit-identical to the flat sequential sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `k + 1` ascending fence posts; shard `s` owns
    /// `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Partitions `n` servers into `k` balanced contiguous shards.
    /// `k` is clamped to `max(1, min(k, n))` so every shard is
    /// non-empty (a plan over an empty fleet has one empty shard).
    pub fn contiguous(n: usize, k: usize) -> Self {
        let k = k.max(1).min(n.max(1));
        let base = n / k;
        let extra = n % k;
        let mut bounds = Vec::with_capacity(k + 1);
        let mut at = 0;
        bounds.push(0);
        for s in 0..k {
            at += base + usize::from(s < extra);
            bounds.push(at);
        }
        debug_assert_eq!(at, n, "shard fence posts must cover the fleet");
        Self { bounds }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Server-index range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The shard owning server index `idx`.
    pub fn owner_of(&self, idx: usize) -> usize {
        debug_assert!(
            idx < *self.bounds.last().expect("plan has fence posts"),
            "server index outside the shard plan"
        );
        // partition_point returns the count of posts <= idx; posts are
        // strictly ascending past bounds[0], so subtracting one yields
        // the owning shard.
        self.bounds.partition_point(|&b| b <= idx) - 1
    }
}

/// One shard's outbound message buffer for a barrier epoch.
///
/// Messages are `(key, payload)` pairs pushed in strictly ascending
/// key order (the shard visits its elements in index order, so this is
/// free). The coordinator merges all mailboxes with
/// [`drain_in_order`]; the key plays the role of the `(time, seq)`
/// component of the canonical `(time, seq, shard)` total order — for
/// the barrier fan-outs all messages share the barrier timestamp, so
/// the element id is the tiebreaker and the shard index breaks the
/// (never occurring) remaining ties.
#[derive(Debug)]
pub struct Mailbox<T> {
    shard: usize,
    msgs: Vec<(u64, T)>,
}

impl<T> Mailbox<T> {
    /// An empty mailbox owned by shard `shard`.
    pub fn new(shard: usize) -> Self {
        Self {
            shard,
            msgs: Vec::new(),
        }
    }

    /// Appends a message. Keys must arrive in strictly ascending
    /// order — the drain relies on each mailbox being sorted.
    pub fn push(&mut self, key: u64, payload: T) {
        debug_assert!(
            self.msgs.last().is_none_or(|(k, _)| *k < key),
            "mailbox keys must be strictly ascending"
        );
        self.msgs.push((key, payload));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Owning shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// Drains a set of per-shard mailboxes in canonical `(key, shard)`
/// order, invoking `apply` once per message. This is the barrier
/// merge: because the order is a pure function of the message keys —
/// never of thread completion order — the coordinator replays the
/// exact sequence a sequential engine would have produced.
pub fn drain_in_order<T>(boxes: Vec<Mailbox<T>>, mut apply: impl FnMut(u64, T)) {
    let mut lanes: Vec<(usize, std::vec::IntoIter<(u64, T)>)> = boxes
        .into_iter()
        .map(|mb| (mb.shard, mb.msgs.into_iter()))
        .collect();
    // Mailboxes arrive in shard order; a stable min-scan over the lane
    // heads gives (key, shard) order without needing a heap for the
    // small K this engine runs at.
    let mut heads: Vec<Option<(u64, T)>> = lanes.iter_mut().map(|(_, it)| it.next()).collect();
    loop {
        let mut best: Option<usize> = None;
        for (lane, head) in heads.iter().enumerate() {
            if let Some((key, _)) = head {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let best_key = heads[b].as_ref().expect("best lane has a head").0;
                        *key < best_key
                    }
                };
                if better {
                    best = Some(lane);
                }
            }
        }
        let Some(lane) = best else {
            return;
        };
        let (key, payload) = heads[lane].take().expect("chosen lane has a head");
        heads[lane] = lanes[lane].1.next();
        apply(key, payload);
    }
}

/// Runs `f(shard)` for every shard and returns the results in shard
/// order, fanning out over at most `threads` OS threads.
///
/// `threads <= 1` (or `k == 1`) executes sequentially on the caller's
/// thread — the same code path, minus the spawn. Each worker owns a
/// disjoint contiguous block of result slots, so no lock, channel or
/// atomic is involved and the result vector is a pure function of `f`
/// — never of scheduling. This is the property the K-invariance
/// proptest pins and [`run_shards_order`] audits.
pub fn run_shards<R, F>(k: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || k <= 1 {
        return (0..k).map(f).collect();
    }
    let workers = threads.min(k);
    let per = k.div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (w, chunk) in out.chunks_mut(per).enumerate() {
            let f = &f;
            let base = w * per;
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + i));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every shard slot was filled by its worker"))
        .collect()
}

/// Audit seam for the scheduler-interleaving harness: executes the
/// shards sequentially in the (adversarial) completion order `order`
/// while still returning results indexed canonically by shard. A
/// correct fan-out satisfies
/// `run_shards_order(k, perm, f) == run_shards(k, t, f)` for every
/// permutation `perm` and thread count `t` — the shard-barrier
/// analogue of the replica pool's `Gate` seam.
pub fn run_shards_order<R, F>(k: usize, order: &[usize], f: F) -> Vec<R>
where
    F: Fn(usize) -> R,
{
    assert_eq!(order.len(), k, "order must cover every shard exactly once");
    let mut out: Vec<Option<R>> = (0..k).map(|_| None).collect();
    for &s in order {
        assert!(out[s].is_none(), "order visits shard {s} twice");
        out[s] = Some(f(s));
    }
    out.into_iter()
        .map(|r| r.expect("order covered every shard"))
        .collect()
}

/// Pure trace-demand lookup for the parallel phase — the free-function
/// twin of the engine's `trace_demand_mhz`, callable from a shard
/// because it only reads the frozen workload.
pub(crate) fn demand_of(workload: &Workload, trace_idx: usize, t_secs: f64) -> f64 {
    let step = workload.traces.config.step_secs;
    let trace = &workload.traces.vms[trace_idx];
    if workload.wrap_traces {
        trace.demand_mhz_at_wrapped(t_secs, step)
    } else {
        trace.demand_mhz_at(t_secs, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_fleet_contiguously() {
        for n in [0usize, 1, 5, 7, 100] {
            for k in [1usize, 2, 3, 7, 8] {
                let plan = ShardPlan::contiguous(n, k);
                let mut covered = Vec::new();
                for s in 0..plan.k() {
                    covered.extend(plan.range(s));
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} k={k}");
                for idx in 0..n {
                    let owner = plan.owner_of(idx);
                    assert!(plan.range(owner).contains(&idx), "n={n} k={k} idx={idx}");
                }
            }
        }
    }

    #[test]
    fn plan_clamps_to_fleet_size() {
        let plan = ShardPlan::contiguous(3, 8);
        assert_eq!(plan.k(), 3);
        let plan = ShardPlan::contiguous(0, 4);
        assert_eq!(plan.k(), 1);
        assert_eq!(plan.range(0), 0..0);
    }

    #[test]
    fn plan_balances_within_one() {
        let plan = ShardPlan::contiguous(10, 3);
        let sizes: Vec<usize> = (0..3).map(|s| plan.range(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn drain_merges_by_key_then_shard() {
        let mut a = Mailbox::new(0);
        a.push(1, "a1");
        a.push(5, "a5");
        let mut b = Mailbox::new(1);
        b.push(2, "b2");
        b.push(4, "b4");
        let mut seen = Vec::new();
        drain_in_order(vec![a, b], |k, v| seen.push((k, v)));
        assert_eq!(seen, vec![(1, "a1"), (2, "b2"), (4, "b4"), (5, "a5")]);
    }

    #[test]
    fn run_shards_is_thread_count_invariant() {
        let work = |s: usize| -> Vec<usize> { (0..s + 1).map(|i| i * s).collect() };
        let base = run_shards(7, 1, work);
        for threads in [2, 3, 7, 16] {
            assert_eq!(run_shards(7, threads, work), base, "threads={threads}");
        }
    }

    #[test]
    fn run_shards_order_matches_canonical() {
        let work = |s: usize| s * 10;
        let canonical = run_shards(4, 1, work);
        for order in [[0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]] {
            assert_eq!(run_shards_order(4, &order, work), canonical, "{order:?}");
        }
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn run_shards_order_rejects_duplicates() {
        run_shards_order(3, &[0, 0, 1], |s| s);
    }

    #[test]
    fn effective_threads_resolution() {
        let auto = ShardConfig::with_shards(4);
        assert!(auto.effective_threads(4) >= 1);
        let fixed = ShardConfig {
            shards: 8,
            threads: 3,
        };
        assert_eq!(fixed.effective_threads(8), 3);
        assert_eq!(fixed.effective_threads(2), 2, "threads capped at K");
        assert!(!ShardConfig::default().engaged());
        assert!(ShardConfig::with_shards(2).engaged());
    }
}
